"""Setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 builds (which require ``bdist_wheel``) are unavailable.  This shim
enables the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517

The ``[test]`` extra declares what ``scripts/ci_check.sh`` needs to run
every gate (the coverage gate *fails loudly* when ``pytest-cov`` is
absent)::

    pip install -e ".[test]" --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro-split-execution",
    version="1.0.0",  # keep in lockstep with repro.__version__ (cache keys hash it)
    description=(
        "Performance models for split-execution computing systems "
        "(Humble et al., 2016): closed forms, ASPEN listings, DES runtime"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.aspen": ["models/**/*.aspen"]},
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "scipy",
        "networkx",
    ],
    extras_require={
        # Everything the full CI gate (scripts/ci_check.sh) exercises:
        # pytest-cov arms the coverage floor, hypothesis drives the
        # property-test layer.
        "test": [
            "pytest>=7",
            "pytest-cov>=4",
            "hypothesis>=6",
        ],
    },
)
