"""Setup shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 builds (which require ``bdist_wheel``) are unavailable.  This shim
enables the legacy editable install path::

    pip install -e . --no-build-isolation --no-use-pep517

All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
