#!/usr/bin/env bash
# The repo's one-command verification gate.
#
#   ./scripts/ci_check.sh          # tier-1 + examples + perf smoke + cache smoke
#                                  #   + service smoke + coverage
#   ./scripts/ci_check.sh --fast   # everything except the coverage gate
#
# Coverage: the floor below is enforced whenever the gate runs.  A missing
# pytest-cov plugin is first *bootstrapped* (`pip install -e ".[test]"`,
# the extra declared in setup.py); only if that fails too is it a FAILURE.
# `--fast` is the only way to skip the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Recorded coverage floor (line coverage of src/repro under the tier-1
# suite).  Raise it as coverage grows; never lower it to make a PR pass.
COVERAGE_FLOOR=85

echo "== bytecode compile gate =="
# Every module under src/ must at least compile: import-time syntax errors
# in rarely-exercised corners fail here, before any test tier runs.
python -m compileall -q src

echo
echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== examples smoke tier =="
# Every script under examples/ runs in-process (tests/test_examples_smoke.py);
# the tier is deselected from the default run, so invoke its marker explicitly.
python -m pytest -q -m examples

echo
echo "== perf-harness smoke (--check) =="
python -m benchmarks.perf_harness --check

echo
echo "== study-cache correctness smoke =="
# The same tiny three-backend study twice against one cache: the second
# run must be served entirely from cache and produce byte-identical bytes.
CACHE_SCRATCH="$(mktemp -d)"
trap 'rm -rf "$CACHE_SCRATCH"' EXIT
run_cached_study() {
    python -m repro.cli study \
        --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
        --name ci-cache-smoke --no-summary \
        --cache "$CACHE_SCRATCH/cache" --out "$1"
}
COLD_OUT="$(run_cached_study "$CACHE_SCRATCH/cold.json")"
echo "$COLD_OUT"
grep -q "cache: served 0/1 shards from cache" <<<"$COLD_OUT" || {
    echo "ERROR: cold study run unexpectedly hit the cache" >&2; exit 1; }
WARM_OUT="$(run_cached_study "$CACHE_SCRATCH/warm.json")"
echo "$WARM_OUT"
grep -q "cache: served 1/1 shards from cache" <<<"$WARM_OUT" || {
    echo "ERROR: warm study run was not served from the cache" >&2; exit 1; }
cmp "$CACHE_SCRATCH/cold.json" "$CACHE_SCRATCH/warm.json" || {
    echo "ERROR: cache-served artifact differs from the cold run" >&2; exit 1; }
echo "cache smoke: warm run byte-identical to cold run"

echo
echo "== study service smoke =="
# Start the job server on an ephemeral port, submit the small three-backend
# study through it, and hold the served artifact to the same standard as the
# cache smoke: byte-identical to a direct `cli study` of the same spec, with
# the second submission answered from the job table without re-execution.
SERVICE_LOG="$CACHE_SCRATCH/serve.log"
python -m repro.cli serve --port 0 --quiet \
    --cache "$CACHE_SCRATCH/service-cache" > "$SERVICE_LOG" 2>&1 &
SERVICE_PID=$!
trap 'kill "$SERVICE_PID" 2>/dev/null || true; rm -rf "$CACHE_SCRATCH"' EXIT
SERVICE_URL=""
for _ in $(seq 1 100); do
    SERVICE_URL="$(grep -oE 'http://[0-9.]+:[0-9]+' "$SERVICE_LOG" | head -1 || true)"
    [[ -n "$SERVICE_URL" ]] && break
    kill -0 "$SERVICE_PID" 2>/dev/null || {
        echo "ERROR: study service exited during startup:" >&2
        cat "$SERVICE_LOG" >&2; exit 1; }
    sleep 0.1
done
[[ -n "$SERVICE_URL" ]] || {
    echo "ERROR: study service never reported its URL:" >&2
    cat "$SERVICE_LOG" >&2; exit 1; }
submit_smoke_study() {
    python -m repro.cli submit --url "$SERVICE_URL" \
        --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
        --name ci-service-smoke --out "$1"
}
FIRST_SUBMIT="$(submit_smoke_study "$CACHE_SCRATCH/served.json")"
echo "$FIRST_SUBMIT"
python -m repro.cli study \
    --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
    --name ci-service-smoke --no-summary --out "$CACHE_SCRATCH/direct.json" > /dev/null
cmp "$CACHE_SCRATCH/served.json" "$CACHE_SCRATCH/direct.json" || {
    echo "ERROR: HTTP-served artifact differs from the direct run_study artifact" >&2
    exit 1; }
SECOND_SUBMIT="$(submit_smoke_study "$CACHE_SCRATCH/served2.json")"
echo "$SECOND_SUBMIT"
grep -q "deduplicated" <<<"$SECOND_SUBMIT" || {
    echo "ERROR: repeated submission was not deduplicated onto the cached job" >&2
    exit 1; }
cmp "$CACHE_SCRATCH/served.json" "$CACHE_SCRATCH/served2.json" || {
    echo "ERROR: cache-served artifact differs from the first submission" >&2
    exit 1; }
kill "$SERVICE_PID" 2>/dev/null || true
echo "service smoke: served artifact byte-identical to direct run, repeat cache-served"

echo
echo "== executor chaos smoke (REPRO_FAULTS) =="
# Chaos determinism gate: a run that suffers an injected transient shard
# failure AND an injected cache read error must still produce bytes
# identical to the fault-free run.  The cache is warmed first so the
# cache-read fault actually bites (forcing a recompute), and the recompute
# then trips the shard-eval fault (forcing a retry).
run_chaos_study() {
    python -m repro.cli study \
        --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
        --name ci-chaos-smoke --no-summary \
        --cache "$CACHE_SCRATCH/chaos-cache" --out "$1"
}
run_chaos_study "$CACHE_SCRATCH/chaos-clean.json" > /dev/null
REPRO_FAULTS='{"seed":0,"rules":[{"site":"shard-eval","keys":[0],"times":1},{"site":"cache-read","times":1}]}' \
    run_chaos_study "$CACHE_SCRATCH/chaos-faulted.json" > /dev/null
cmp "$CACHE_SCRATCH/chaos-clean.json" "$CACHE_SCRATCH/chaos-faulted.json" || {
    echo "ERROR: fault-injected study artifact differs from the fault-free run" >&2
    exit 1; }
echo "executor chaos: fault-injected artifact byte-identical to the clean run"

echo
echo "== service chaos smoke (journal + kill -9 + connection reset) =="
# Durability gate: a server with a journal is killed with SIGKILL after
# finishing a job; a restarted server over the same journal + cache must
# recover the job and re-serve its artifact byte-identically without
# re-executing anything.  The first server also injects one connection
# reset, which the client's default retry budget must absorb silently.
JOURNAL="$CACHE_SCRATCH/journal.jsonl"
CHAOS_LOG="$CACHE_SCRATCH/serve-chaos.log"
REPRO_FAULTS='{"rules":[{"site":"http-connection","times":1}]}' \
    python -m repro.cli serve --port 0 --quiet \
    --cache "$CACHE_SCRATCH/chaos-service-cache" --journal "$JOURNAL" \
    > "$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
trap 'kill "$SERVICE_PID" "$CHAOS_PID" 2>/dev/null || true; rm -rf "$CACHE_SCRATCH"' EXIT
CHAOS_URL=""
for _ in $(seq 1 100); do
    CHAOS_URL="$(grep -oE 'http://[0-9.]+:[0-9]+' "$CHAOS_LOG" | head -1 || true)"
    [[ -n "$CHAOS_URL" ]] && break
    kill -0 "$CHAOS_PID" 2>/dev/null || {
        echo "ERROR: chaos study service exited during startup:" >&2
        cat "$CHAOS_LOG" >&2; exit 1; }
    sleep 0.1
done
[[ -n "$CHAOS_URL" ]] || {
    echo "ERROR: chaos study service never reported its URL:" >&2
    cat "$CHAOS_LOG" >&2; exit 1; }
submit_chaos_study() {
    python -m repro.cli submit --url "$1" \
        --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
        --name ci-chaos-service --out "$2"
}
# The very first request eats the injected reset; default --retries rides it out.
submit_chaos_study "$CHAOS_URL" "$CACHE_SCRATCH/chaos-served.json" > /dev/null
kill -9 "$CHAOS_PID" 2>/dev/null || true
wait "$CHAOS_PID" 2>/dev/null || true
python -m repro.cli serve --port 0 --quiet \
    --cache "$CACHE_SCRATCH/chaos-service-cache" --journal "$JOURNAL" \
    > "$CHAOS_LOG" 2>&1 &
CHAOS_PID=$!
CHAOS_URL=""
for _ in $(seq 1 100); do
    CHAOS_URL="$(grep -oE 'http://[0-9.]+:[0-9]+' "$CHAOS_LOG" | head -1 || true)"
    [[ -n "$CHAOS_URL" ]] && break
    kill -0 "$CHAOS_PID" 2>/dev/null || {
        echo "ERROR: restarted study service exited during startup:" >&2
        cat "$CHAOS_LOG" >&2; exit 1; }
    sleep 0.1
done
grep -q "1 job(s) recovered" "$CHAOS_LOG" || {
    echo "ERROR: restarted server did not recover the journaled job:" >&2
    cat "$CHAOS_LOG" >&2; exit 1; }
submit_chaos_study "$CHAOS_URL" "$CACHE_SCRATCH/chaos-recovered.json" > /dev/null
cmp "$CACHE_SCRATCH/chaos-served.json" "$CACHE_SCRATCH/chaos-recovered.json" || {
    echo "ERROR: artifact served after kill -9 + journal recovery differs" >&2
    exit 1; }
kill "$CHAOS_PID" 2>/dev/null || true
echo "service chaos: kill -9 + restart re-served the journaled job byte-identically"

echo
echo "== distributed smoke (coordinator + 2 workers + kill -9) =="
# Topology gate: a coordinator with two worker processes — one of which is
# SIGKILLed mid-study so its lease has to expire and requeue — must serve
# an artifact byte-identical to a single-process `cli study` of the same
# spec.  The short --lease-ttl keeps the requeue path fast.
DIST_LOG="$CACHE_SCRATCH/coordinate.log"
python -m repro.cli coordinate --port 0 --quiet \
    --cache "$CACHE_SCRATCH/dist-cache" \
    --shard-size 3 --lease-ttl 2 --scheduler work-stealing \
    > "$DIST_LOG" 2>&1 &
DIST_PID=$!
trap 'kill "$SERVICE_PID" "$CHAOS_PID" "$DIST_PID" 2>/dev/null || true; rm -rf "$CACHE_SCRATCH"' EXIT
DIST_URL=""
for _ in $(seq 1 100); do
    DIST_URL="$(grep -oE 'http://[0-9.]+:[0-9]+' "$DIST_LOG" | head -1 || true)"
    [[ -n "$DIST_URL" ]] && break
    kill -0 "$DIST_PID" 2>/dev/null || {
        echo "ERROR: shard coordinator exited during startup:" >&2
        cat "$DIST_LOG" >&2; exit 1; }
    sleep 0.1
done
[[ -n "$DIST_URL" ]] || {
    echo "ERROR: shard coordinator never reported its URL:" >&2
    cat "$DIST_LOG" >&2; exit 1; }
python -m repro.cli worker --coordinator "$DIST_URL" --id ci-w0 --poll 0.05 \
    > "$CACHE_SCRATCH/worker0.log" 2>&1 &
WORKER0_PID=$!
python -m repro.cli worker --coordinator "$DIST_URL" --id ci-w1 --poll 0.05 \
    > "$CACHE_SCRATCH/worker1.log" 2>&1 &
WORKER1_PID=$!
( sleep 0.4; kill -9 "$WORKER0_PID" 2>/dev/null || true ) &
KILLER_PID=$!
python -m repro.cli submit --url "$DIST_URL" \
    --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
    --name ci-dist-smoke --out "$CACHE_SCRATCH/dist-served.json" > /dev/null
wait "$KILLER_PID" 2>/dev/null || true
wait "$WORKER0_PID" 2>/dev/null || true
kill "$WORKER1_PID" "$DIST_PID" 2>/dev/null || true
python -m repro.cli study \
    --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
    --name ci-dist-smoke --no-summary --shard-size 3 \
    --out "$CACHE_SCRATCH/dist-direct.json" > /dev/null
cmp "$CACHE_SCRATCH/dist-served.json" "$CACHE_SCRATCH/dist-direct.json" || {
    echo "ERROR: worker-executed artifact differs from the single-process run" >&2
    exit 1; }
echo "distributed smoke: artifact byte-identical after kill -9 of one worker"

echo
echo "== contention analytic smoke (simulated vs M/M/1) =="
# Queueing-theory gate: an open-arrival exponential-service workload
# through the contention simulator must land inside the M/M/1 envelope the
# analytic module declares (WAIT_RTOL / UTILIZATION_RTOL), at a moderate
# load the differential suite also pins.
python - <<'PYEOF'
from repro._rng import spawn_stream
from repro.contention import ContentionWorkload, get_analytic_model, simulate_contention
from repro.contention.simulate import CONTENTION_DOMAIN
from repro.runtime import RequestProfile

service_s, rho = 0.02, 0.6
model = get_analytic_model("mm1")
workload = ContentionWorkload(
    sessions=0, arrival_rate=rho / service_s,
    open_requests=4000, service="exponential",
)
metrics = simulate_contention(
    (RequestProfile(0.0, 0.0, 0.0, service_s, 0.0),),
    workload, spawn_stream(7, CONTENTION_DOMAIN, 0),
)
prediction = model.predict(workload.arrival_rate, service_s)
assert model.utilization_within_envelope(metrics.utilization, prediction), (
    f"simulated utilization {metrics.utilization:.4f} outside the declared "
    f"envelope of analytic {prediction.utilization:.4f}")
assert model.wait_within_envelope(metrics.mean_queue_wait_s, prediction), (
    f"simulated mean wait {metrics.mean_queue_wait_s:.5f}s outside the "
    f"declared envelope of analytic {prediction.mean_wait_s:.5f}s")
print(f"contention smoke: rho={rho} utilization "
      f"{metrics.utilization:.4f} vs M/M/1 {prediction.utilization:.4f}, "
      f"wait {metrics.mean_queue_wait_s*1e3:.2f}ms vs "
      f"{prediction.mean_wait_s*1e3:.2f}ms — inside the declared envelope")
PYEOF

echo
echo "== calibration smoke (measure -> calibrate -> finite fit) =="
# Non-finite-hygiene gate: a live measure_cmr_timings run on tiny sizes,
# replayed through calibrate_embed_rate, must produce a finite positive
# embed_rate_scale and model/measured ratios inside a generous sanity
# envelope — the NaN-poisoned-fit class of bug cannot regress silently.
python - <<'PYEOF'
import math
from repro.core import Stage1Model, calibrate_embed_rate, measure_cmr_timings, model_measured_ratios
from repro.embedding.cmr import CmrParams
from repro.hardware import ChimeraTopology

topo = ChimeraTopology(4, 4, 4)
measured = measure_cmr_timings(
    [4, 6, 8], topology=topo, params=CmrParams(max_tries=8), rng=0)
model = Stage1Model(m=4, n=4, l=4)
fitted = calibrate_embed_rate(measured, model, min_size=4)
assert math.isfinite(fitted.embed_rate_scale) and fitted.embed_rate_scale > 0, (
    f"calibration produced a bad embed_rate_scale: {fitted.embed_rate_scale!r}")
ratios = model_measured_ratios(measured, fitted)
assert ratios, "no model/measured ratios computed"
for n, r in ratios.items():
    assert math.isfinite(r) and 1 / 25 < r < 25, (
        f"fitted model/measured ratio at n={n} outside sanity envelope: {r!r}")
print(f"calibration smoke: embed_rate_scale={fitted.embed_rate_scale:.3g}, "
      f"{len(ratios)} size ratios finite and inside the envelope")
PYEOF

if [[ "${1:-}" == "--fast" ]]; then
    echo
    echo "ci_check: fast mode — coverage gate skipped by request"
    exit 0
fi

echo
echo "== coverage gate (floor: ${COVERAGE_FLOOR}%) =="
if ! python -c "import pytest_cov" 2>/dev/null; then
    # Bootstrap the [test] extra instead of failing outright, so the full
    # coverage + hypothesis gate runs in the reference container (ROADMAP
    # "coverage gate, image side").  Offline containers without a wheel
    # source still fail loudly below.
    echo "pytest-cov missing; bootstrapping the [test] extra ..."
    python -m pip install -e ".[test]" --no-build-isolation --no-use-pep517 || true
fi
if ! python -c "import pytest_cov" 2>/dev/null; then
    echo "ERROR: pytest-cov is not installed and could not be bootstrapped;" >&2
    echo "       the coverage gate cannot run.  Install the test extra" >&2
    echo "       (pip install -e '.[test]') or pass --fast to skip coverage" >&2
    echo "       explicitly." >&2
    exit 1
fi
python -m pytest -q --cov=repro --cov-report=term --cov-fail-under="${COVERAGE_FLOOR}"

echo
echo "ci_check: all gates passed"
