#!/usr/bin/env bash
# The repo's one-command verification gate.
#
#   ./scripts/ci_check.sh          # tier-1 tests + perf-harness smoke + coverage
#   ./scripts/ci_check.sh --fast   # tier-1 tests + perf-harness smoke only
#
# Coverage: the floor below is enforced whenever pytest-cov is installed.
# The reference container does not ship it, so the gate degrades to a loud
# skip there rather than a silent pass — install pytest-cov to arm it.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Recorded coverage floor (line coverage of src/repro under the tier-1
# suite).  Raise it as coverage grows; never lower it to make a PR pass.
COVERAGE_FLOOR=85

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== perf-harness smoke (--check) =="
python -m benchmarks.perf_harness --check

if [[ "${1:-}" == "--fast" ]]; then
    echo
    echo "ci_check: fast mode — coverage gate skipped by request"
    exit 0
fi

echo
echo "== coverage gate (floor: ${COVERAGE_FLOOR}%) =="
if python -c "import pytest_cov" 2>/dev/null; then
    python -m pytest -q --cov=repro --cov-report=term --cov-fail-under="${COVERAGE_FLOOR}"
else
    echo "WARNING: pytest-cov is not installed; coverage gate SKIPPED" >&2
    echo "         (install pytest-cov to enforce the ${COVERAGE_FLOOR}% floor)" >&2
fi

echo
echo "ci_check: all gates passed"
