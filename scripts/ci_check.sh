#!/usr/bin/env bash
# The repo's one-command verification gate.
#
#   ./scripts/ci_check.sh          # tier-1 + perf smoke + cache smoke + coverage
#   ./scripts/ci_check.sh --fast   # tier-1 + perf smoke + cache smoke only
#
# Coverage: the floor below is enforced whenever the gate runs; a missing
# pytest-cov plugin is a FAILURE (install the `[test]` extra declared in
# setup.py), not a warning.  `--fast` is the only way to skip the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Recorded coverage floor (line coverage of src/repro under the tier-1
# suite).  Raise it as coverage grows; never lower it to make a PR pass.
COVERAGE_FLOOR=85

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== perf-harness smoke (--check) =="
python -m benchmarks.perf_harness --check

echo
echo "== study-cache correctness smoke =="
# The same tiny three-backend study twice against one cache: the second
# run must be served entirely from cache and produce byte-identical bytes.
CACHE_SCRATCH="$(mktemp -d)"
trap 'rm -rf "$CACHE_SCRATCH"' EXIT
run_cached_study() {
    python -m repro.cli study \
        --lps 1:11 --accuracy 0.9,0.99 --backend closed_form,aspen,des \
        --name ci-cache-smoke --no-summary \
        --cache "$CACHE_SCRATCH/cache" --out "$1"
}
COLD_OUT="$(run_cached_study "$CACHE_SCRATCH/cold.json")"
echo "$COLD_OUT"
grep -q "cache: served 0/1 shards from cache" <<<"$COLD_OUT" || {
    echo "ERROR: cold study run unexpectedly hit the cache" >&2; exit 1; }
WARM_OUT="$(run_cached_study "$CACHE_SCRATCH/warm.json")"
echo "$WARM_OUT"
grep -q "cache: served 1/1 shards from cache" <<<"$WARM_OUT" || {
    echo "ERROR: warm study run was not served from the cache" >&2; exit 1; }
cmp "$CACHE_SCRATCH/cold.json" "$CACHE_SCRATCH/warm.json" || {
    echo "ERROR: cache-served artifact differs from the cold run" >&2; exit 1; }
echo "cache smoke: warm run byte-identical to cold run"

if [[ "${1:-}" == "--fast" ]]; then
    echo
    echo "ci_check: fast mode — coverage gate skipped by request"
    exit 0
fi

echo
echo "== coverage gate (floor: ${COVERAGE_FLOOR}%) =="
if ! python -c "import pytest_cov" 2>/dev/null; then
    echo "ERROR: pytest-cov is not installed; the coverage gate cannot run." >&2
    echo "       Install the test extra (pip install -e '.[test]') or pass" >&2
    echo "       --fast to skip coverage explicitly." >&2
    exit 1
fi
python -m pytest -q --cov=repro --cov-report=term --cov-fail-under="${COVERAGE_FLOOR}"

echo
echo "ci_check: all gates passed"
