"""Fig. 7 — the Stage-2 application model (QPU statistical sampling).

Evaluates the bundled listing across target accuracies, showing the Eq.-6
repetition counts converting to QuOps time plus the fixed readout and
thermalization constants.  The benchmarked kernel is one ASPEN evaluation.
"""

from __future__ import annotations

import pytest

from repro.core import AspenStageModels, Stage2Model, format_table


def test_fig7_stage2_model(benchmark, emit):
    aspen = AspenStageModels()
    closed = Stage2Model()
    ps = 0.7
    rows = []
    for acc_pct in (50.0, 90.0, 99.0, 99.9, 99.99):
        b = closed.breakdown(acc_pct / 100.0, ps)
        rows.append(
            [
                f"{acc_pct}%",
                b.repetitions,
                f"{b.anneal * 1e6:.0f}",
                f"{b.readout * 1e6:.0f}",
                f"{b.thermalization * 1e6:.0f}",
                f"{b.total * 1e6:.0f}",
                f"{aspen.stage2_seconds(acc_pct, ps) * 1e6:.0f}",
            ]
        )
    emit(
        "fig7_stage2_model",
        format_table(
            ["accuracy", "QPU calls s", "anneal [us]", "readout [us]",
             "therm [us]", "total closed [us]", "total ASPEN [us]"],
            rows,
            title=f"Fig. 7 reproduction: Stage-2 model at ps = {ps}",
        ),
    )

    for acc_pct in (50.0, 99.0, 99.99):
        assert closed.seconds(acc_pct / 100.0, ps) == pytest.approx(
            aspen.stage2_seconds(acc_pct, ps), rel=1e-12
        )

    benchmark(lambda: aspen.stage2_seconds(99.0, 0.7))
