"""Offline-embedding ablation — the paper's proposed fix (Sec. 3.3).

"It may be beneficial to use some variant of off-line embedding, in which
specific input graphs are pre-embedded and stored in a graph lookup table."
This ablation compares online vs offline embedding modes of the pipeline
model across problem sizes, quantifying the speedup and identifying the new
bottleneck (the constant processor programming cost).
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, format_table


def test_offline_embedding_ablation(benchmark, emit):
    online = SplitExecutionModel(embedding_mode="online")
    offline = SplitExecutionModel(embedding_mode="offline")

    rows = []
    for lps in (10, 20, 30, 50, 75, 100):
        t_on = online.time_to_solution(lps)
        t_off = offline.time_to_solution(lps)
        rows.append(
            [
                lps,
                f"{t_on.total_seconds:.4g}",
                f"{t_off.total_seconds:.4g}",
                f"{t_on.total_seconds / t_off.total_seconds:.3g}",
                t_off.stage1.processor_initialize > t_off.stage1.embedding_flops,
            ]
        )
    emit(
        "ablation_offline_embedding",
        format_table(
            ["LPS", "online total [s]", "offline total [s]", "speedup",
             "init-dominated offline"],
            rows,
            title="Offline-embedding ablation (lookup table replaces inline CMR)",
        ),
    )

    # The speedup grows with problem size and exceeds 100x well before n=100.
    t_on = online.time_to_solution(100).total_seconds
    t_off = offline.time_to_solution(100).total_seconds
    assert t_on / t_off > 100
    # Offline pipelines are dominated by the constant programming cost.
    b = offline.time_to_solution(100).stage1
    assert b.processor_initialize > b.embedding_flops

    benchmark(lambda: offline.time_to_solution(50))
