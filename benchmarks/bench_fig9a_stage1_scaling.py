"""Fig. 9(a) — Stage-1 timing vs input problem size.

Solid line: the ASPEN/closed-form Stage-1 model over ``n = 1..100``.
Dashed line: *measured* wall-clock timings of this library's CMR
implementation embedding complete graphs into C(12, 12, 4) — the same
workload the paper measured for the Cai-Macready-Roy code.

The paper's claim is a *shape* statement: the model (built from worst-case
operation counts) overestimates for ``n < 10`` and tracks the measurement
within a small factor above it.  After a one-constant calibration of the
effective flop rate (the model's only free parameter), this bench asserts
exactly that: the model/measured ratio stays within a factor band for
``n >= 10`` and the small-n region is overestimated.

Set ``REPRO_FIG9A_MAX_N`` (default 16) up to 30 to extend the measured
series; larger sizes take minutes per point.
"""

from __future__ import annotations

import os

import networkx as nx
import pytest

from repro.core import (
    AspenStageModels,
    Stage1Model,
    calibrate_embed_rate,
    format_table,
    loglog_slope,
    measure_cmr_timings,
    model_measured_ratios,
)
from repro.embedding import find_embedding_cmr
from repro.embedding.cmr import CmrParams
from repro.hardware import DW2X

_MAX_N = int(os.environ.get("REPRO_FIG9A_MAX_N", "16"))
# Dense cliques near the top of the measured range have a low per-try
# success probability (authentic CMR behavior); give the bench a generous
# retry budget so every size lands.
_CMR_PARAMS = CmrParams(max_tries=200)


def test_fig9a_stage1_scaling(benchmark, emit):
    aspen = AspenStageModels()
    model = Stage1Model()

    # --- the model series (solid line), n = 1..100 ---
    model_sizes = [1, 2, 3, 5, 7, 10, 14, 20, 30, 40, 50, 70, 100]
    model_series = {n: aspen.stage1_seconds(n) for n in model_sizes}

    # --- the measured series (dashed line) ---
    measured_sizes = [n for n in (2, 4, 6, 8, 10, 12, 14, 16, 20, 24, 30) if n <= _MAX_N]
    measured = measure_cmr_timings(
        measured_sizes, topology=DW2X, params=_CMR_PARAMS, rng=0
    )

    # --- calibrate the one free constant and compare ---
    fitted = calibrate_embed_rate(measured, model, min_size=10)
    ratios = model_measured_ratios(measured, fitted)

    rows = []
    for n in model_sizes:
        rows.append(
            [
                n,
                f"{model_series[n]:.4g}",
                f"{measured[n]:.4g}" if n in measured else "-",
                f"{ratios[n]:.2f}" if n in ratios else "-",
            ]
        )
    for n in measured_sizes:
        if n not in model_sizes:
            rows.append([n, "-", f"{measured[n]:.4g}", f"{ratios[n]:.2f}"])
    rows.sort(key=lambda r: r[0])
    emit(
        "fig9a_stage1_scaling",
        format_table(
            ["n = LPS", "model total [s]", "measured CMR [s]", "calibrated model/measured"],
            rows,
            title=(
                "Fig. 9(a) reproduction: Stage-1 model (solid) vs measured CMR "
                f"embedding into C(12,12,4) (dashed), calibrated rate scale = "
                f"{fitted.embed_rate_scale:.3g}"
            ),
        ),
    )

    # Shape assertions (the paper's claims).
    totals = [model_series[n] for n in model_sizes]
    assert totals == sorted(totals), "model series must increase with n"
    large = [n for n in model_sizes if n >= 30]
    slope = loglog_slope(large, [model_series[n] for n in large])
    assert 2.5 < slope < 3.5, "steep polynomial growth of the embedding term"

    band = [r for n, r in ratios.items() if n >= 10]
    if band:
        for r in band:
            assert 1 / 10 < r < 10, "calibrated model within a factor band for n >= 10"
    small = [r for n, r in ratios.items() if n < 10]
    if small and band:
        assert max(small) >= max(band) * 0.5, (
            "worst-case model overestimates relatively more at small n"
        )

    # Benchmark: one measured CMR embedding at n = 12 (a Fig. 9(a) point).
    source = nx.complete_graph(12)
    hardware = DW2X.graph()

    def embed_once():
        return find_embedding_cmr(source, hardware, params=_CMR_PARAMS, rng=1)

    result = benchmark.pedantic(embed_once, rounds=1, iterations=1)
    assert result.num_logical == 12


def test_fig9a_model_vs_closed_form(benchmark):
    """The solid line is identical whether drawn from ASPEN or closed form."""
    aspen = AspenStageModels()
    model = Stage1Model()
    for n in (1, 10, 50, 100):
        assert model.seconds(n) == pytest.approx(aspen.stage1_seconds(n), rel=1e-12)
    benchmark(lambda: model.seconds(50))
