"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper: it prints the
series (visible with ``pytest -s``) and also writes it to
``benchmarks/out/<name>.txt`` so results persist across runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).resolve().parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Print a named report block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        banner = f"\n===== {name} =====\n"
        print(banner + text)
        (OUT_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
