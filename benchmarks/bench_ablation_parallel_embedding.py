"""Parallel pre-processing ablation (Sec. 4's closing direction).

"There may be additional parallel strategies that can accelerate the
pre-processing stage."  CMR restarts are embarrassingly parallel; this
ablation races independent searches across worker processes and compares
time-to-first-success against the serial search on a *restart-bound*
instance (a dense clique whose per-try success probability is well below
one — the regime where parallel restarts pay; on instances the serial
search solves in one try, process-pool overhead dominates instead).
"""

from __future__ import annotations

import time

import networkx as nx

from repro.core import format_table
from repro.embedding import (
    find_embedding_cmr,
    find_embedding_parallel,
    verify_embedding,
)
from repro.hardware import DW2X

_N = 24
_SEED = 1  # serial search needs several tries at this seed


def test_parallel_embedding_ablation(benchmark, emit):
    source = nx.complete_graph(_N)
    hardware = DW2X.graph()

    t0 = time.perf_counter()
    serial_emb, serial_diag = find_embedding_cmr(
        source, hardware, rng=_SEED, return_diagnostics=True
    )
    t_serial = time.perf_counter() - t0
    verify_embedding(serial_emb, source, hardware)

    rows = [["serial", serial_diag.tries, f"{t_serial:.2f}", "1.00"]]
    for workers in (4, 8):
        t0 = time.perf_counter()
        emb, diag = find_embedding_parallel(
            source, hardware, num_workers=workers, rng=_SEED, return_diagnostics=True
        )
        dt = time.perf_counter() - t0
        verify_embedding(emb, source, hardware)
        rows.append(
            [f"parallel x{workers}", diag.tries_launched, f"{dt:.2f}",
             f"{t_serial / dt:.2f}"]
        )
    emit(
        "ablation_parallel_embedding",
        format_table(
            ["configuration", "tries used/launched", "time [s]", "speedup vs serial"],
            rows,
            title=f"Parallel pre-processing ablation: K{_N} into C(12,12,4)",
        ),
    )

    def parallel_once():
        return find_embedding_parallel(source, hardware, num_workers=8, rng=7)

    emb = benchmark.pedantic(parallel_once, rounds=1, iterations=1)
    assert emb.num_logical == _N
