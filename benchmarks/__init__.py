"""Benchmark suite: paper-figure reproductions (``bench_*.py``, run through
pytest) and the persistent kernel-timing harness (:mod:`benchmarks.perf_harness`).
"""
