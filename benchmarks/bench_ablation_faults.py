"""Hard-fault ablation (Sec. 2.2, citing Klymko-Sullivan-Humble).

"The loss of a node within the Chimera layout can destroy its underlying
symmetry and, consequently, make the embedding problem more difficult."
This ablation sweeps the qubit fault rate and measures its effect on CMR
embedding cost (wall time, search effort) and quality (qubits, chains).
"""

from __future__ import annotations

import time

import networkx as nx

from repro.core import format_table
from repro.embedding import find_embedding_cmr, verify_embedding
from repro.embedding.cmr import CmrParams
from repro.hardware import ChimeraTopology, random_faults

_TOPO = ChimeraTopology(8, 8, 4)
_PARAMS = CmrParams(max_tries=40)


def test_fault_ablation(benchmark, emit):
    source = nx.complete_graph(12)
    rows = []
    quality = {}
    for rate in (0.0, 0.02, 0.05, 0.10):
        faults = random_faults(_TOPO, qubit_fault_rate=rate, rng=9)
        working = _TOPO.working_graph(faults)
        t0 = time.perf_counter()
        emb, diag = find_embedding_cmr(
            source, working, params=_PARAMS, rng=1, return_diagnostics=True
        )
        dt = time.perf_counter() - t0
        verify_embedding(emb, source, working)
        quality[rate] = emb.num_physical
        rows.append(
            [
                f"{rate:.0%}",
                faults.num_dead_qubits,
                working.number_of_nodes(),
                f"{dt:.2f}",
                diag.tries,
                emb.num_physical,
                emb.max_chain_length,
            ]
        )
    emit(
        "ablation_faults",
        format_table(
            ["fault rate", "dead qubits", "working qubits", "time [s]",
             "tries", "qubits used", "max chain"],
            rows,
            title="Hard-fault ablation: K12 into faulty C(8,8,4)",
        ),
    )

    # Every faulty configuration still embeds (the working-graph workflow),
    # and the dead qubits are never used.
    assert len(rows) == 4

    faults = random_faults(_TOPO, qubit_fault_rate=0.05, rng=9)
    working = _TOPO.working_graph(faults)

    def embed_once():
        return find_embedding_cmr(source, working, params=_PARAMS, rng=2)

    emb = benchmark.pedantic(embed_once, rounds=1, iterations=1)
    assert not (emb.used_qubits() & set(faults.dead_qubits))
