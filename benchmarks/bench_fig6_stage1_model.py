"""Fig. 6 — the Stage-1 application model (Ising generation + embedding + init).

Evaluates the bundled listing on the Fig.-5 machine across problem sizes and
emits the per-resource breakdown, showing the embedding flops term taking
over from the constant 0.32 s electronic initialization.  The benchmarked
kernel is one full ASPEN evaluation of the Stage-1 model.
"""

from __future__ import annotations

import pytest

from repro.core import AspenStageModels, Stage1Model, format_table


@pytest.fixture(scope="module")
def aspen() -> AspenStageModels:
    return AspenStageModels()


def test_fig6_stage1_model(benchmark, emit, aspen):
    closed = Stage1Model()
    rows = []
    for lps in (1, 5, 10, 20, 30, 50, 75, 100):
        b = closed.breakdown(lps)
        total_aspen = aspen.stage1_seconds(lps)
        rows.append(
            [
                lps,
                f"{b.ising_generation:.3g}",
                f"{b.parameter_setting:.3g}",
                f"{b.embedding_flops:.4g}",
                f"{b.processor_initialize:.3g}",
                f"{b.total:.4g}",
                f"{total_aspen:.4g}",
            ]
        )
    emit(
        "fig6_stage1_model",
        format_table(
            ["LPS", "ising [s]", "param-set [s]", "embedding [s]", "init [s]",
             "total closed [s]", "total ASPEN [s]"],
            rows,
            title="Fig. 6 reproduction: Stage-1 model (closed form vs ASPEN evaluation)",
        ),
    )

    # Cross-validation and shape checks.
    for lps in (1, 30, 100):
        assert closed.seconds(lps) == pytest.approx(aspen.stage1_seconds(lps), rel=1e-12)
    assert closed.dominant_term(1) == "processor_initialize"
    assert closed.dominant_term(100) == "embedding_flops"

    benchmark(lambda: aspen.stage1_seconds(50))
