"""Fig. 9(b) — Stage-2 timing vs desired accuracy.

Plots the quantum-execution time against the target accuracy ``p_a`` at
``p_s = 0.7`` (the paper's plotted value) and across other success
probabilities, asserting the paper's two observations: the curve is nearly
flat, and it is "approximately the same for all values of p_s > 0.6".
"""

from __future__ import annotations

from repro.core import AspenStageModels, Stage2Model, format_table


def test_fig9b_stage2_accuracy(benchmark, emit):
    aspen = AspenStageModels()
    closed = Stage2Model()

    accuracies = (50.0, 75.0, 90.0, 99.0, 99.9, 99.99)
    ps_values = (0.61, 0.7, 0.8, 0.9)

    rows = []
    for acc in accuracies:
        row = [f"{acc}%"]
        for ps in ps_values:
            t = aspen.stage2_seconds(acc, ps)
            s = closed.repetitions(acc / 100.0, ps)
            row.append(f"{t * 1e6:.0f} ({s})")
        rows.append(row)
    emit(
        "fig9b_stage2_accuracy",
        format_table(
            ["accuracy pa"] + [f"ps={ps} [us] (reps)" for ps in ps_values],
            rows,
            title="Fig. 9(b) reproduction: Stage-2 time vs accuracy (total us, repetition count)",
        ),
    )

    # Flatness in pa at ps = 0.7.
    series_07 = [aspen.stage2_seconds(acc, 0.7) for acc in accuracies]
    assert max(series_07) / min(series_07) < 2.0

    # Insensitivity across ps > 0.6 at high accuracy.
    at_99 = [aspen.stage2_seconds(99.0, ps) for ps in ps_values]
    assert max(at_99) / min(at_99) < 1.5

    # Stage 2 stays far below the Stage-1 scale (sub-millisecond).
    assert max(series_07) < 1e-3

    benchmark(lambda: closed.seconds(0.99, 0.7))
