"""Sensitivity ablation — which knob actually moves the time-to-solution?

Quantifies the abstract's claim that "the primary time cost is independent
of quantum processor behavior" as elasticities (d log T / d log x) of the
total time with respect to every machine and program constant, online and
offline.
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, format_table, model_elasticities


def test_sensitivity_ablation(benchmark, emit):
    online = model_elasticities(lps=50)
    offline = model_elasticities(SplitExecutionModel(embedding_mode="offline"), lps=50)

    rows = [
        [name, f"{online[name]:+.4f}", f"{offline[name]:+.4f}"]
        for name in online
    ]
    emit(
        "ablation_sensitivity",
        format_table(
            ["parameter", "elasticity (online)", "elasticity (offline)"],
            rows,
            title="Sensitivity of total time-to-solution (LPS=50, pa=0.99, ps=0.7)",
        ),
    )

    # The paper's claim, as numbers: QPU-side knobs are irrelevant online.
    assert abs(online["anneal_duration_us"]) < 1e-3
    assert abs(online["success_probability"]) < 1e-3
    assert online["cpu_clock_hz"] < -0.9
    # Offline, the CPU clock stops mattering too (constant-cost dominated).
    assert abs(offline["cpu_clock_hz"]) < 0.1

    benchmark(lambda: model_elasticities(lps=50))
