"""Fig. 2 — the CPU/SW/MW/QHW sequence diagram as a DES trace.

Runs one split-execution request through the discrete-event runtime with
stage durations produced by the performance models, and emits the resulting
timeline (the machine-readable Fig. 2).
"""

from __future__ import annotations

import pytest

from repro.core import SplitExecutionModel
from repro.runtime import run_single_session


def test_fig2_sequence_trace(benchmark, emit):
    model = SplitExecutionModel()
    profile = model.request_profile(30, network_latency=200e-6)

    latency, trace = run_single_session(profile)
    emit(
        "fig2_sequence_trace",
        "Fig. 2 reproduction: one split-execution request (LPS=30, LAN-attached QPU)\n"
        + trace.to_table("ms")
        + f"\n\nend-to-end latency: {latency:.4f} s",
    )

    # The sequence order of Fig. 2.
    ops = [s.operation for s in sorted(trace.spans, key=lambda s: s.start)]
    assert ops == [
        "push_problem",
        "generate_ising",
        "minor_embedding",
        "program_processor",
        "anneal_and_readout",
        "postprocess_sort",
        "return_solution",
    ]
    assert latency == pytest.approx(profile.total_service_time)

    # Networking "is not expected to be the dominant cost" (Sec. 3.1).
    per_layer = trace.total_by_layer()
    assert per_layer["network"] < 0.01 * per_layer["mw"]

    benchmark(lambda: run_single_session(profile)[0])
