"""Eq. (6) — the repetition count s >= log(1-pa)/log(1-ps).

Emits the (pa, ps) grid of repetition counts the Stage-2/3 models consume,
and validates the formula against the behavioral QPU surrogate: batches of
``s`` simulated-annealing reads contain the true ground state at least
``pa`` of the time (Monte Carlo, within statistical tolerance).
"""

from __future__ import annotations

import numpy as np

from repro.annealer import ExactSolver, SimulatedAnnealingSampler, geometric_schedule
from repro.core import achieved_accuracy, format_table, required_repetitions
from repro.qubo import random_ising


def test_eq6_repetition_table(benchmark, emit):
    pa_values = (0.5, 0.9, 0.99, 0.999, 0.9999)
    ps_values = (0.1, 0.3, 0.5, 0.61, 0.7, 0.8, 0.9, 0.99)
    rows = []
    for ps in ps_values:
        rows.append([ps] + [required_repetitions(pa, ps) for pa in pa_values])
    emit(
        "eq6_repetitions",
        format_table(
            ["ps \\ pa"] + [str(p) for p in pa_values],
            rows,
            title="Eq. (6) reproduction: required repetitions s(pa, ps)",
        ),
    )

    # Spot values and tightness.
    assert required_repetitions(0.99, 0.7) == 4
    for ps in ps_values:
        for pa in pa_values:
            s = required_repetitions(pa, ps)
            assert achieved_accuracy(s, ps) >= pa - 1e-12

    benchmark(lambda: required_repetitions(0.9999, 0.61))


def test_eq6_monte_carlo_validation(benchmark, emit):
    """Empirical check against the simulated annealer.

    The benchmarked kernel is one planned batch of ``s`` annealing reads —
    the Stage-2 unit of work Eq. (6) sizes.
    """
    # A deliberately weak anneal (few sweeps) so ps lands mid-range and
    # Eq. (6) prescribes several repetitions.
    m = random_ising(14, density=0.6, rng=42)
    ground = ExactSolver().ground_energy(m)
    sa = SimulatedAnnealingSampler(geometric_schedule(12))

    ps = sa.sample(m, num_reads=400, rng=0).ground_state_probability(ground)
    pa = 0.9
    s = required_repetitions(pa, ps)

    benchmark.pedantic(lambda: sa.sample(m, num_reads=s, rng=0), rounds=3, iterations=1)

    batches, hits = 150, 0
    rng = np.random.default_rng(1)
    for _ in range(batches):
        hits += sa.sample(m, num_reads=s, rng=rng).lowest_energy <= ground + 1e-9
    observed = hits / batches

    emit(
        "eq6_monte_carlo",
        format_table(
            ["quantity", "value"],
            [
                ["empirical single-run ps", f"{ps:.3f}"],
                ["target accuracy pa", f"{pa}"],
                ["Eq. (6) repetitions s", s],
                ["observed batch success", f"{observed:.3f}"],
                ["predicted batch success", f"{achieved_accuracy(s, ps):.3f}"],
            ],
            title="Eq. (6) Monte-Carlo validation against the SA surrogate",
        ),
    )
    assert observed >= pa - 0.08
