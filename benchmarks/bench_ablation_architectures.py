"""Fig. 1 ablation — the three QPU-integration architectures under load.

The paper's single-request models cannot see queueing; this ablation runs a
closed multi-client workload through the DES on each architecture of Fig. 1
and emits makespan / latency / queue-wait / throughput, quantifying what
tighter integration buys.
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, format_table
from repro.runtime import Architecture, simulate_architecture


def test_fig1_architectures(benchmark, emit):
    model = SplitExecutionModel()
    profile = model.request_profile(30)

    rows = []
    results = {}
    for arch in Architecture:
        r = simulate_architecture(
            arch, profile, num_clients=6, requests_per_client=3, rng=0
        )
        results[arch] = r
        rows.append(
            [
                arch.value,
                f"{r.makespan:.3f}",
                f"{r.mean_latency:.3f}",
                f"{r.max_latency:.3f}",
                f"{r.mean_qpu_wait:.3f}",
                f"{r.throughput:.2f}",
            ]
        )
    emit(
        "ablation_architectures",
        format_table(
            ["architecture", "makespan [s]", "mean latency [s]", "max latency [s]",
             "mean QPU wait [s]", "throughput [req/s]"],
            rows,
            title="Fig. 1 ablation: 6 clients x 3 requests (LPS=30)",
        ),
    )

    asym = results[Architecture.ASYMMETRIC]
    shared = results[Architecture.SHARED]
    dedicated = results[Architecture.DEDICATED]
    # Contention ordering: dedicated eliminates QPU waits entirely.
    assert dedicated.mean_qpu_wait == 0.0
    assert shared.mean_qpu_wait > 0.0
    assert dedicated.makespan < shared.makespan
    # The LAN of the asymmetric model adds latency over shared integration.
    assert asym.mean_latency >= shared.mean_latency

    benchmark(
        lambda: simulate_architecture(
            Architecture.SHARED, profile, num_clients=6, requests_per_client=3, rng=0
        ).makespan
    )
