"""Fig. 8 — the Stage-3 application model (readout parsing and heapsort).

Evaluates the bundled listing across problem sizes with the listing's
defaults (Success = 0.75, Accuracy = 0.99 -> Results = 4 readouts), showing
the nanosecond-scale, near-linear cost of the final sort.  The benchmarked
kernel is one ASPEN evaluation.
"""

from __future__ import annotations

import pytest

from repro.core import AspenStageModels, Stage3Model, format_table


def test_fig8_stage3_model(benchmark, emit):
    aspen = AspenStageModels()
    closed = Stage3Model()
    rows = []
    for lps in (1, 10, 25, 50, 75, 100):
        b = closed.breakdown(lps)
        rows.append(
            [
                lps,
                b.results,
                f"{b.sort_flops * 1e9:.3g}",
                f"{b.loads * 1e9:.3g}",
                f"{b.stores * 1e9:.3g}",
                f"{b.total * 1e9:.4g}",
                f"{aspen.stage3_seconds(lps) * 1e9:.4g}",
            ]
        )
    emit(
        "fig8_stage3_model",
        format_table(
            ["LPS", "Results", "sort [ns]", "loads [ns]", "stores [ns]",
             "total closed [ns]", "total ASPEN [ns]"],
            rows,
            title="Fig. 8 reproduction: Stage-3 model (Success=0.75, Accuracy=0.99)",
        ),
    )

    for lps in (1, 50, 100):
        assert closed.seconds(lps) == pytest.approx(aspen.stage3_seconds(lps), rel=1e-12)
    assert closed.results() == 4

    benchmark(lambda: aspen.stage3_seconds(50))
