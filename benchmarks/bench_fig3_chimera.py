"""Fig. 3 — the Chimera hardware connectivity graph.

Regenerates the structural facts the figure shows: the 512-qubit 8x8
Vesuvius lattice and the 1152-qubit 12x12 DW2X lattice, with the degree
bounds the paper states (6 interior / 5 edge neighbors).  The benchmarked
kernel is full hardware-graph construction.
"""

from __future__ import annotations

import networkx as nx

from repro.core import format_table
from repro.hardware import DW2_VESUVIUS, DW2X, ChimeraTopology


def test_fig3_chimera_structure(benchmark, emit):
    rows = []
    for label, topo in (("DW2 Vesuvius (Fig. 3)", DW2_VESUVIUS), ("DW2X", DW2X)):
        g = topo.graph()
        degrees = [d for _, d in g.degree()]
        rows.append(
            [
                label,
                f"{topo.m}x{topo.n}",
                topo.num_qubits,
                topo.num_couplers,
                max(degrees),
                min(degrees),
                "yes" if nx.is_bipartite(g) else "no",
            ]
        )
    emit(
        "fig3_chimera",
        format_table(
            ["processor", "lattice", "qubits NG", "couplers EG", "max deg", "min deg", "bipartite"],
            rows,
            title="Fig. 3 reproduction: Chimera hardware graphs",
        ),
    )

    # Paper values.
    assert DW2_VESUVIUS.num_qubits == 512
    assert DW2X.num_qubits == 1152
    assert DW2X.num_couplers == 3360
    assert rows[0][4] == 6 and rows[0][5] == 5

    result = benchmark(lambda: ChimeraTopology(12, 12, 4).graph())
    assert result.number_of_nodes() == 1152
