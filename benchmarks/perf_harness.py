"""Persistent performance-regression harness for the hot kernels.

Times a fixed set of named reference workloads — the kernels the paper's
headline result (Fig. 9) makes hot: SA sampling, batched energy evaluation,
brute-force enumeration, CMR minor embedding, the Fig.-9 pipeline sweep,
ASPEN paper-model loading, the compiled ASPEN backend sweep, the sharded
scenario-study executor, and the coordinator/worker distributed study
path — and emits a machine-readable
``BENCH_PERF.json`` at the repository root so every PR's perf delta is
visible in review.

Usage::

    python -m benchmarks.perf_harness            # full run, writes BENCH_PERF.json
    python -m benchmarks.perf_harness --check    # smoke mode: tiny workloads,
                                                 # schema validation, no write
    python -m benchmarks.perf_harness --output /tmp/perf.json --repeats 9

Each kernel records a ``seed_seconds`` baseline: the same workload measured
on the pre-optimization (seed) implementation, captured once on the
reference container when the kernels were rewritten.  ``speedup_vs_seed``
therefore tracks cumulative speedup over the project's starting point, while
comparing ``seconds`` between two commits' ``BENCH_PERF.json`` tracks
per-PR regressions.  See DESIGN.md ("Performance architecture") for how to
read the file.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_PERF.json"
SCHEMA_VERSION = 1

if str(REPO_ROOT / "src") not in sys.path:  # allow running without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

#: Wall-clock seconds of each reference workload under the seed (pre-PR-1)
#: implementations, measured best-of-5 on the reference container.  These
#: are deliberately constants, not re-measured: they pin the project's
#: starting point so ``speedup_vs_seed`` is meaningful across machines of
#: the same class.  ``embed`` has no entry because the CMR router is
#: unchanged since the seed.
SEED_BASELINE_SECONDS: dict[str, float | None] = {
    "sa_sample": 0.09325,
    "energies": 0.78107,
    "brute_force": 0.31469,
    "embed": None,
    "sweep": 0.24968,
    # The study baseline is the scalar reference loop (vectorize=False) over
    # the same 10k-point grid, measured best-of-3 on the reference container
    # when the study engine landed — the pre-engine way of producing these
    # numbers was exactly such a per-point Python loop.
    "study": 0.50354,
    # The aspen_models baseline is the same workload (20 AspenStageModels
    # constructions + a Stage-1 evaluation each) measured best-of-5 before
    # load_paper_models() was memoized — every construction re-lexed and
    # re-parsed the five bundled listing files.
    "aspen_models": 0.11626,
    # The study_contended baseline is this exact workload measured best-of-5
    # when the contention subsystem landed: 75 contended rows, each running
    # a 256-request DES simulation (4 closed sessions + 128 open arrivals)
    # through the queue-discipline Resource.  speedup_vs_seed therefore
    # tracks future optimizations of the DES engine and the contention path
    # directly; it starts at ~1.0 and must stay >= 0.7 (the perf-marked
    # floor in tests/test_perf_harness.py).
    "study_contended": 0.52890,
    # The study_faulted baseline is the *fault-free* run of the identical
    # workload (same grid, same shard_size=250), measured best-of-5 when the
    # fault-injection layer landed.  speedup_vs_seed therefore reads as the
    # retry machinery's overhead directly: it must stay >= 0.95 (i.e. the
    # fault path costs < 5% — one recomputed 250-point shard plus the
    # plan/retry bookkeeping on the other 39).
    "study_faulted": 0.03964,
    # The study_distributed baseline is the identical workload (same grid,
    # same shard_size=250) through plain run_study(workers=1), measured
    # best-of-5 when the coordinator/worker subsystem landed.
    # speedup_vs_seed therefore prices the distributed machinery directly —
    # lease bookkeeping, sha256 verification on every push, the scheduler
    # simulation — relative to in-process execution of the same shards.
    "study_distributed": 0.06881,
    # The aspen_sweep baseline is the identical workload through the
    # tree-walking evaluate loop (SweepColumns.from_timings over per-point
    # AspenEvaluator walks), measured best-of-3 on the reference container
    # when the expression compiler landed.  speedup_vs_seed is the
    # compiler's whole point; the differential suite pins the compiled
    # arrays bit-identical to that loop.
    "aspen_sweep": 4.54712,
}


# --------------------------------------------------------------------- #
# Reference workloads
# --------------------------------------------------------------------- #
def _sa_sample(check: bool):
    from repro.annealer import SimulatedAnnealingSampler, geometric_schedule
    from repro.qubo import random_ising

    model = random_ising(14, density=0.6, rng=42)
    if check:
        sampler = SimulatedAnnealingSampler(geometric_schedule(8))

        def op():
            sampler.sample(model, num_reads=4, rng=0)

        return op, "n=14 d=0.6 ising, 8 sweeps, 4 reads, 1 call (check)"

    sampler = SimulatedAnnealingSampler(geometric_schedule(64))

    def op():
        for k in range(8):
            sampler.sample(model, num_reads=64, rng=k)

    return op, "n=14 d=0.6 ising, 64 sweeps, 64 reads, 8 calls (Eq.-6 batch shape)"


def _energies(check: bool):
    from repro.qubo import random_ising

    model = random_ising(64, density=0.3, rng=7)
    k = 64 if check else 4096
    calls = 1 if check else 20
    S = (np.random.default_rng(0).integers(0, 2, size=(k, 64)) * 2 - 1).astype(np.int8)

    def op():
        for _ in range(calls):
            model.energies(S)

    return op, f"n=64 d=0.3 ising, batch {k}, {calls} calls"


def _brute_force(check: bool):
    from repro.qubo import brute_force_ising, random_ising

    n = 8 if check else 18
    model = random_ising(n, density=0.4, rng=3)

    def op():
        brute_force_ising(model, num_best=8)

    return op, f"n={n} d=0.4 ising, num_best=8, full enumeration"


def _embed(check: bool):
    import networkx as nx

    from repro.embedding import find_embedding_cmr, minimal_clique_topology

    n = 4 if check else 8
    source = nx.complete_graph(n)
    hardware = minimal_clique_topology(n).working_graph()

    def op():
        find_embedding_cmr(source, hardware, rng=0)

    return op, f"CMR K{n} into minimal clique Chimera, fixed rng"


def _sweep(check: bool):
    from repro.core import SplitExecutionModel

    model = SplitExecutionModel()
    points = np.arange(1, 51 if check else 2001)
    calls = 1 if check else 10

    def op():
        for _ in range(calls):
            model.sweep_arrays(points)

    return op, f"Fig.-9 sweep, {points.size} LPS points, {calls} calls"


def _aspen_models(check: bool):
    from repro.core import AspenStageModels

    calls = 2 if check else 20

    def op():
        for _ in range(calls):
            AspenStageModels().stage1_seconds(50)

    return op, (
        f"{calls} AspenStageModels constructions + Stage-1 evals "
        f"(memoized paper-model registry)"
    )


def _study(check: bool):
    from repro.studies import ScenarioSpec, run_study

    if check:
        spec = ScenarioSpec(
            axes={"lps": list(range(1, 21)), "accuracy": [0.9, 0.99]},
            name="perf-check",
        )

        def op():
            run_study(spec)

        return op, "study grid, 40 points (20 LPS x 2 pa), sharded executor (check)"

    spec = ScenarioSpec(
        axes={
            "lps": list(range(1, 2501)),
            "accuracy": [0.9, 0.99],
            "embedding_mode": ["online", "offline"],
        },
        name="perf",
    )

    def op():
        run_study(spec)

    return op, "study grid, 10000 points (2500 LPS x 2 pa x 2 modes), workers=1"


def _study_contended(check: bool):
    from repro.studies import ScenarioSpec, run_study

    if check:
        spec = ScenarioSpec(
            axes={
                "backend": ["des"],
                "queue_policy": ["fifo"],
                "sessions": [2],
                "arrival_rate": [2.0],
                "lps": list(range(1, 7)),
            },
            name="perf-contended-check",
        )

        def op():
            run_study(spec, shard_size=3)

        return op, "contended study, 6 points, 2 sessions + open traffic (check)"

    spec = ScenarioSpec(
        axes={
            "backend": ["des"],
            "queue_policy": ["fifo", "priority", "round-robin"],
            "sessions": [4],
            "arrival_rate": [2.0],
            "lps": list(range(1, 26)),
        },
        name="perf-contended",
    )

    def op():
        run_study(spec, shard_size=25)

    return op, (
        "contended study, 75 points (3 policies x 25 LPS), 4 sessions + "
        "open arrivals, 256 simulated requests per row"
    )


def _study_faulted(check: bool):
    from repro.faults import SITE_SHARD_EVAL, FaultPlan, FaultRule
    from repro.studies import RetryPolicy, ScenarioSpec, run_study

    # Zero-delay retries: the kernel prices the retry *machinery* (plan
    # consultation per shard, attempt bookkeeping, one recomputed shard),
    # not the backoff sleeps, which are configuration.
    retry = RetryPolicy(base_delay_s=0.0, jitter=0.0)
    plan = FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(7,), times=1)])
    if check:
        spec = ScenarioSpec(
            axes={"lps": list(range(1, 21)), "accuracy": [0.9, 0.99]},
            name="perf-faulted-check",
        )

        def op():
            results = run_study(spec, shard_size=5, faults=plan, retry=retry)
            assert results.fault_stats.recovered_shards == 1

        return op, "faulted study grid, 40 points over 8 shards, 1 injected retry (check)"

    spec = ScenarioSpec(
        axes={
            "lps": list(range(1, 2501)),
            "accuracy": [0.9, 0.99],
            "embedding_mode": ["online", "offline"],
        },
        name="perf-faulted",
    )

    def op():
        results = run_study(spec, shard_size=250, faults=plan, retry=retry)
        assert results.fault_stats.recovered_shards == 1

    return op, (
        "faulted study grid, 10000 points over 40 shards, 1 injected transient "
        "shard failure (retried), workers=1"
    )


def _study_distributed(check: bool):
    from repro.distributed import ShardCoordinator, ShardWorker
    from repro.faults import FaultPlan
    from repro.studies import ScenarioSpec

    # One in-process worker draining the whole grid through the full
    # lease -> evaluate -> hash -> push -> verify path.  Single-threaded on
    # purpose: the kernel prices the coordination machinery, not thread
    # scheduling noise.
    no_faults = FaultPlan([])
    if check:
        spec = ScenarioSpec(
            axes={"lps": list(range(1, 21)), "accuracy": [0.9, 0.99]},
            name="perf-dist-check",
        )
        shard_size, num_shards = 5, 8

        def op():
            coord = ShardCoordinator(scheduler="work-stealing")
            sid = coord.register_study(spec, shard_size=shard_size)
            worker = ShardWorker(coord, worker_id="perf", faults=no_faults, poll_s=0.0)
            worker.run(max_shards=num_shards)
            coord.wait(sid, timeout=60.0)

        return op, "distributed study, 40 points over 8 leased shards, 1 worker (check)"

    spec = ScenarioSpec(
        axes={
            "lps": list(range(1, 2501)),
            "accuracy": [0.9, 0.99],
            "embedding_mode": ["online", "offline"],
        },
        name="perf-dist",
    )
    shard_size, num_shards = 250, 40

    def op():
        coord = ShardCoordinator(scheduler="work-stealing")
        sid = coord.register_study(spec, shard_size=shard_size)
        worker = ShardWorker(coord, worker_id="perf", faults=no_faults, poll_s=0.0)
        worker.run(max_shards=num_shards)
        coord.wait(sid, timeout=60.0)

    return op, (
        "distributed study, 10000 points over 40 leased shards, 1 in-process "
        "worker, hash-verified pushes"
    )


def _aspen_sweep(check: bool):
    from repro.backends import get

    # The aspen backend's batched sweep: Stages 1 and 3 through the
    # compiled LPS closures, Stage 2 evaluated once per config.  The
    # backend instance is shared, so compile cost amortizes exactly as it
    # does in study runs; the first warmup call pays it.
    backend = get("aspen")
    config = {"accuracy": 0.99, "success": 0.75}
    points = list(range(1, 51 if check else 2001))
    calls = 1 if check else 10

    def op():
        for _ in range(calls):
            backend.sweep(config, points)

    return op, (
        f"aspen backend sweep, {len(points)} LPS points, {calls} calls "
        f"(compiled listings)"
    )


KERNELS = {
    "sa_sample": _sa_sample,
    "energies": _energies,
    "brute_force": _brute_force,
    "embed": _embed,
    "sweep": _sweep,
    "aspen_models": _aspen_models,
    "aspen_sweep": _aspen_sweep,
    "study": _study,
    "study_contended": _study_contended,
    "study_faulted": _study_faulted,
    "study_distributed": _study_distributed,
}


# --------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------- #
def _time(op, repeats: int) -> tuple[float, float]:
    """Best and median wall-clock seconds over ``repeats`` runs (1 warmup)."""
    op()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        op()
        samples.append(time.perf_counter() - t0)
    return min(samples), statistics.median(samples)


def run(check: bool = False, repeats: int = 5) -> dict:
    """Execute every kernel and return the ``BENCH_PERF.json`` report dict."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    kernels = {}
    for name, factory in KERNELS.items():
        op, workload = factory(check)
        if check:
            t0 = time.perf_counter()
            op()
            best = median = time.perf_counter() - t0
            reps = 1
        else:
            best, median = _time(op, repeats)
            reps = repeats
        seed = SEED_BASELINE_SECONDS.get(name) if not check else None
        kernels[name] = {
            "seconds": best,
            "median_seconds": median,
            "repeats": reps,
            "workload": workload,
            "seed_seconds": seed,
            "speedup_vs_seed": (seed / best) if seed else None,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "mode": "check" if check else "full",
        "created_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "kernels": kernels,
    }


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless ``report`` matches the BENCH_PERF schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    for key, typ in (
        ("schema_version", int),
        ("mode", str),
        ("created_unix", (int, float)),
        ("python", str),
        ("numpy", str),
        ("platform", str),
        ("kernels", dict),
    ):
        if key not in report:
            raise ValueError(f"missing top-level key {key!r}")
        if not isinstance(report[key], typ):
            raise ValueError(f"key {key!r} must be {typ}, got {type(report[key])}")
    if report["schema_version"] != SCHEMA_VERSION:
        raise ValueError(f"schema_version must be {SCHEMA_VERSION}")
    if report["mode"] not in ("full", "check"):
        raise ValueError(f"mode must be 'full' or 'check', got {report['mode']!r}")
    kernels = report["kernels"]
    if len(kernels) < 5:
        raise ValueError(f"expected >= 5 named kernels, got {sorted(kernels)}")
    for name, entry in kernels.items():
        if not isinstance(entry, dict):
            raise ValueError(f"kernel {name!r} entry must be an object")
        for key, typ in (
            ("seconds", (int, float)),
            ("median_seconds", (int, float)),
            ("repeats", int),
            ("workload", str),
        ):
            if key not in entry:
                raise ValueError(f"kernel {name!r} missing {key!r}")
            if not isinstance(entry[key], typ):
                raise ValueError(f"kernel {name!r} key {key!r} has wrong type")
        if entry["seconds"] <= 0 or entry["median_seconds"] <= 0:
            raise ValueError(f"kernel {name!r} timings must be positive")
        for key in ("seed_seconds", "speedup_vs_seed"):
            if key not in entry:
                raise ValueError(f"kernel {name!r} missing {key!r}")
            if entry[key] is not None and not isinstance(entry[key], (int, float)):
                raise ValueError(f"kernel {name!r} key {key!r} has wrong type")


def _format_report(report: dict) -> str:
    lines = [f"{'kernel':<12} {'seconds':>12} {'vs seed':>9}  workload"]
    for name, e in report["kernels"].items():
        speedup = f"{e['speedup_vs_seed']:.2f}x" if e["speedup_vs_seed"] else "-"
        lines.append(f"{name:<12} {e['seconds']:>12.6f} {speedup:>9}  {e['workload']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf_harness", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="smoke mode: run each kernel once on a tiny workload and "
        "validate the report schema without writing BENCH_PERF.json",
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="timing repetitions per kernel (full mode)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=f"output path (default: {DEFAULT_OUTPUT}; ignored in --check mode)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")

    report = run(check=args.check, repeats=args.repeats)
    validate_report(report)
    print(_format_report(report))
    if args.check:
        print("perf_harness --check: schema OK, nothing written")
        return 0
    output = args.output or DEFAULT_OUTPUT
    output.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
