"""Fig. 5 — the ASPEN machine model of the CPU-QPU node.

Parses the bundled SimpleNode machine (Xeon E5-2680 + M2090 + Vesuvius
sockets) and verifies the QuOps resource converts annealing operations to
time at 20 us each.  The benchmarked kernel is the full registry load +
machine link, i.e. the cost of standing up the Fig.-5 model from source.
"""

from __future__ import annotations

from repro.aspen import load_paper_models
from repro.core import format_table


def test_fig5_machine_model(benchmark, emit):
    reg = load_paper_models()
    machine = reg.machine("SimpleNode")

    rows = []
    for socket_name in machine.socket_names():
        view = machine.socket(socket_name)
        rows.append(
            [
                socket_name,
                len(view.cores),
                view.memory.name if view.memory else "-",
                view.link.name if view.link else "-",
                ", ".join(sorted(set(view.resource_names()))),
            ]
        )
    emit(
        "fig5_machine_model",
        format_table(
            ["socket", "core kinds", "memory", "link", "resources"],
            rows,
            title="Fig. 5 reproduction: SimpleNode machine model",
        ),
    )

    # The QuOps resource: number * 20 / 1e6 seconds.
    qpu = machine.socket("dwave_vesuvius_20")
    lookup = qpu.find_resource("QuOps")
    seconds, _ = lookup.time_seconds(1_000_000, [])
    assert seconds == 20.0
    assert machine.socket_names() == [
        "dwave_vesuvius_20",
        "intel_xeon_e5_2680",
        "nvidia_m2090",
    ]

    def load_and_link():
        r = load_paper_models()
        return r.machine("SimpleNode").socket("dwave_vesuvius_20")

    view = benchmark(load_and_link)
    assert view.find_resource("QuOps") is not None
