"""Micro-benchmarks of the library's numerical kernels.

Not a paper figure — performance tracking for the HPC-critical inner loops:
vectorized Ising energies, the simulated-annealing sweep kernel on a
device-scale (1152-spin) embedded problem, and the exhaustive solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealer import SimulatedAnnealingSampler, geometric_schedule
from repro.embedding import clique_embedding, embed_ising
from repro.hardware import DW2X
from repro.qubo import brute_force_ising, random_ising


def test_energies_vectorized(benchmark):
    m = random_ising(100, density=0.3, rng=0)
    S = (np.random.default_rng(1).integers(0, 2, size=(1000, 100)) * 2 - 1).astype(np.int8)
    energies = benchmark(lambda: m.energies(S))
    assert energies.shape == (1000,)


def test_sa_device_scale(benchmark):
    """One 64-sweep anneal of 100 replicas on the full 1152-qubit lattice."""
    logical = random_ising(12, rng=2)
    emb = clique_embedding(12, DW2X)
    ei = embed_ising(logical, emb, DW2X.graph())
    sa = SimulatedAnnealingSampler(geometric_schedule(64))

    def anneal():
        return sa.sample(ei.physical, num_reads=100, rng=0)

    ss = benchmark.pedantic(anneal, rounds=1, iterations=1)
    assert ss.num_reads == 100


def test_brute_force_20_spins(benchmark):
    m = random_ising(18, density=0.2, rng=3)

    def solve():
        return brute_force_ising(m)[1][0]

    energy = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert energy == pytest.approx(brute_force_ising(m)[1][0])
