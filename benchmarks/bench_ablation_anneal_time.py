"""Annealing-duration ablation (Sec. 3.1).

"An annealing duration of 20 us is shown but … this duration may be scaled
according to program options."  This ablation sweeps the anneal duration
and shows that even 100x longer anneals leave Stage 2 orders of magnitude
below Stage 1 — the bottleneck conclusion is insensitive to QPU speed,
"independent of quantum processor behavior" (abstract).
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, Stage2Model, format_table


def test_anneal_time_ablation(benchmark, emit):
    lps, pa, ps = 50, 0.99, 0.7
    rows = []
    for anneal_us in (5.0, 20.0, 100.0, 1000.0, 10000.0):
        model = SplitExecutionModel(stage2=Stage2Model().with_anneal_time(anneal_us))
        t = model.time_to_solution(lps, pa, ps)
        rows.append(
            [
                f"{anneal_us:g}",
                t.stage2.repetitions,
                f"{t.stage2_seconds * 1e6:.0f}",
                f"{t.stage1_seconds:.4g}",
                f"{t.stage1_seconds / t.stage2_seconds:.3g}",
                t.dominant_stage,
            ]
        )
    emit(
        "ablation_anneal_time",
        format_table(
            ["anneal [us]", "reps", "stage2 [us]", "stage1 [s]",
             "stage1/stage2", "dominant"],
            rows,
            title=f"Anneal-duration ablation (LPS={lps}, pa={pa}, ps={ps})",
        ),
    )

    # Even at 10 ms anneals the bottleneck conclusion stands.
    slow = SplitExecutionModel(stage2=Stage2Model().with_anneal_time(10000.0))
    t = slow.time_to_solution(lps, pa, ps)
    assert t.dominant_stage == "stage1"
    assert t.stage1_seconds / t.stage2_seconds > 100

    benchmark(lambda: SplitExecutionModel(
        stage2=Stage2Model().with_anneal_time(100.0)
    ).time_to_solution(lps, pa, ps))
