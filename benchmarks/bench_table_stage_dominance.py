"""The paper's headline result (Secs. 3.3 / 4): Stage 1 dominates everything.

Emits the stage-dominance table across problem sizes — stage times, the
dominant stage, the quantum fraction of the total, and the classical
speedup required to become processor-limited ("must be reduced by many
orders of magnitude").
"""

from __future__ import annotations

from repro.core import SplitExecutionModel, format_table, stage_dominance_table


def test_stage_dominance(benchmark, emit):
    model = SplitExecutionModel()
    sizes = [5, 10, 20, 30, 50, 75, 100]
    rows_raw = stage_dominance_table(model, sizes)
    rows = []
    for r in rows_raw:
        rows.append(
            [
                r["lps"],
                f"{r['stage1_s']:.4g}",
                f"{r['stage2_s']:.4g}",
                f"{r['stage3_s']:.3g}",
                r["dominant"],
                f"{r['quantum_fraction']:.2e}",
                f"{model.required_embedding_speedup(int(r['lps'])):.3g}",
            ]
        )
    emit(
        "table_stage_dominance",
        format_table(
            ["LPS", "stage1 [s]", "stage2 [s]", "stage3 [s]", "dominant",
             "quantum fraction", "required speedup"],
            rows,
            title="Headline reproduction: stage dominance (pa=0.99, ps=0.7)",
        ),
    )

    for r in rows_raw:
        assert r["dominant"] == "stage1"
        assert r["stage1_over_stage2"] > 100
    assert model.required_embedding_speedup(100) > 1e5

    benchmark(lambda: model.time_to_solution(50))
