"""Fig. 9(c) — Stage-3 timing vs input problem size.

The post-processing sort: near-linear in the problem size and vanishingly
small next to Stage 1 ("a very small contribution to the overall timing").
"""

from __future__ import annotations

from repro.core import AspenStageModels, Stage1Model, Stage3Model, format_table, loglog_slope


def test_fig9c_stage3_scaling(benchmark, emit):
    aspen = AspenStageModels()
    closed = Stage3Model()
    stage1 = Stage1Model()

    sizes = [1, 5, 10, 20, 30, 50, 75, 100]
    rows = []
    for lps in sizes:
        t3 = aspen.stage3_seconds(lps)
        rows.append(
            [
                lps,
                f"{t3 * 1e9:.4g}",
                f"{closed.seconds(lps) * 1e9:.4g}",
                f"{stage1.seconds(lps) / t3:.3g}",
            ]
        )
    emit(
        "fig9c_stage3_scaling",
        format_table(
            ["n = LPS", "stage3 ASPEN [ns]", "stage3 closed [ns]", "stage1 / stage3"],
            rows,
            title="Fig. 9(c) reproduction: Stage-3 time vs input size",
        ),
    )

    # Near-linear dependence (the loads term dominates and is linear in LPS).
    big = [n for n in sizes if n >= 10]
    slope = loglog_slope(big, [aspen.stage3_seconds(n) for n in big])
    assert 0.7 < slope < 1.2

    # Negligible magnitude: nanoseconds, many orders below stage 1.
    assert aspen.stage3_seconds(100) < 1e-6
    assert stage1.seconds(100) / aspen.stage3_seconds(100) > 1e8

    benchmark(lambda: closed.seconds(50))
