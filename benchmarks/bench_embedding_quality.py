"""Embedding-quality study (Sec. 2.2 discussion).

"Input problems are not necessarily fully connected and the same
[complete-graph] methods will overestimate the number of hardware qubits
required" — motivating input-adaptive heuristics like CMR.  This bench
compares qubit usage of CMR against the deterministic clique construction
on inputs of decreasing density.
"""

from __future__ import annotations

import networkx as nx

from repro.core import format_table
from repro.embedding import clique_qubit_cost, find_embedding_cmr, verify_embedding
from repro.embedding.cmr import CmrParams
from repro.hardware import ChimeraTopology

_TOPO = ChimeraTopology(8, 8, 4)
_PARAMS = CmrParams(max_tries=20)


def test_embedding_quality(benchmark, emit):
    hardware = _TOPO.graph()
    n = 16
    cases = [
        ("complete", nx.complete_graph(n)),
        ("dense G(n, 0.5)", nx.gnp_random_graph(n, 0.5, seed=1)),
        ("sparse G(n, 0.2)", nx.gnp_random_graph(n, 0.2, seed=1)),
        ("cycle", nx.cycle_graph(n)),
        ("tree", nx.random_labeled_tree(n, seed=1)),
    ]
    clique_cost = clique_qubit_cost(n)
    rows = []
    for label, source in cases:
        emb = find_embedding_cmr(source, hardware, params=_PARAMS, rng=0)
        verify_embedding(emb, source, hardware)
        rows.append(
            [
                label,
                source.number_of_edges(),
                emb.num_physical,
                emb.max_chain_length,
                clique_cost,
                f"{clique_cost / emb.num_physical:.2f}",
            ]
        )
    emit(
        "embedding_quality",
        format_table(
            ["input graph", "edges", "CMR qubits", "CMR max chain",
             "clique-embedding qubits", "clique/CMR ratio"],
            rows,
            title=f"Embedding quality: CMR vs complete-graph construction (n={n}, C(8,8,4))",
        ),
    )

    # CMR beats the clique bound on sparse inputs (the paper's point).
    sparse_rows = [r for r in rows if r[0] in ("sparse G(n, 0.2)", "cycle", "tree")]
    for r in sparse_rows:
        assert r[2] < clique_cost

    source = nx.gnp_random_graph(n, 0.2, seed=1)

    def embed_once():
        return find_embedding_cmr(source, hardware, params=_PARAMS, rng=3)

    result = benchmark.pedantic(embed_once, rounds=1, iterations=1)
    assert result.num_logical == n
