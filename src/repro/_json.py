"""Canonical JSON: the one serialization every byte-identity contract uses.

Artifact bytes (`StudyResults.to_json`), cache/content keys
(`studies.cache`), the spec wire format (`ScenarioSpec.to_json`), and the
service's response bodies (`service.protocol`) must all stay in lockstep —
a drift in any one of them (separators, key order, ascii escaping) silently
breaks cross-layer byte identity.  They all call these two helpers so the
invariant is structural, not a convention.
"""

from __future__ import annotations

import json

__all__ = ["canonical_dumps", "canonical_line"]


def canonical_dumps(payload) -> str:
    """``payload`` as canonical JSON: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_line(payload) -> str:
    """Canonical JSON plus the trailing newline every stored/wire form carries."""
    return canonical_dumps(payload) + "\n"
