"""repro — reproduction of *Performance Models for Split-execution Computing Systems*.

This library rebuilds, end to end, the system analyzed by Humble et al.
(IPPS 2016, arXiv:1607.01084): an asymmetric multi-processor node that pairs
a conventional CPU with a D-Wave-style quantum processing unit, the
ASPEN-language performance models that describe it, and every substrate those
models depend on.

Subpackages
-----------
``repro.qubo``
    QUBO/Ising problems, exact conversions (paper Eqs. 4-5), generators,
    brute-force reference solvers.
``repro.hardware``
    Chimera connectivity graphs (Fig. 3), fault models, control precision,
    DW2 timing constants.
``repro.embedding``
    Minor embedding: the Cai-Macready-Roy heuristic, deterministic clique
    embeddings, verification, parameter setting, and chain decoding.
``repro.annealer``
    Simulated quantum annealer (Metropolis sampler), exact solver, sample
    sets, and the timed device facade.
``repro.aspen``
    A from-scratch implementation of the ASPEN performance-modeling language
    subset used by the paper (Figs. 5-8), with bundled model files.
``repro.runtime``
    Discrete-event simulation of the split-execution sequence (Fig. 2) and
    of the three integration architectures (Fig. 1).
``repro.core``
    The paper's contribution: analytical stage models, the Eq.-6 repetition
    planner, the end-to-end pipeline model, scaling/crossover studies,
    calibration, and report generation (Fig. 9).
``repro.backends``
    The ``PerformanceBackend`` protocol and registry unifying the three
    model realizations (closed forms, ASPEN listings, DES runtime).
``repro.studies``
    Declarative scenario studies: spec grids (with a ``backend`` axis),
    the sharded deterministic executor, columnar results artifacts, the
    content-addressed shard cache, and report generation.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .qubo import IsingModel, Qubo  # noqa: F401  (convenience re-exports)

__all__ = ["Qubo", "IsingModel", "__version__"]
