"""Deterministic fault injection for the study execution stack.

The paper's pipeline models an *unreliable substrate* — faulty qubits in
the Chimera hardware model (:mod:`repro.hardware.faults`) — and the
execution infrastructure that reproduces it has to survive an unreliable
substrate of its own: worker processes die, cache files tear, connections
reset.  This package provides the chaos half of that story: a seedable,
fully deterministic :class:`FaultPlan` that injects failures at named
sites across the executor, the shard cache, and the HTTP service, so the
resilience machinery (shard retry, worker-death recovery, journal
replay, client retry) is exercised by tests and the CI chaos smoke
rather than trusted on faith.

The load-bearing invariant, asserted wherever faults are injected: a
study run under injected *transient* faults produces an artifact
**byte-identical** to the fault-free run.  Faults may cost retries,
recomputation, and degraded execution paths — all reported through
:class:`FaultStats` — but never different bytes.

Activation:

* explicitly — ``run_study(faults=FaultPlan([...]))``;
* ambiently — the ``REPRO_FAULTS`` environment variable
  (:data:`FAULTS_ENV_VAR`) holding the plan's JSON form, picked up by
  ``run_study`` and :class:`~repro.service.StudyServer` so the live-server
  e2e tier and the CI chaos smoke can inject faults without code changes.
"""

from .plan import (
    FAULT_SITES,
    FAULTS_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultStats,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_HTTP_CONNECTION,
    SITE_HTTP_SLOW,
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
    SITE_WORKER_PULL,
    SITE_WORKER_PUSH,
)

__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV_VAR",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "SITE_CACHE_READ",
    "SITE_CACHE_WRITE",
    "SITE_HTTP_CONNECTION",
    "SITE_HTTP_SLOW",
    "SITE_SHARD_EVAL",
    "SITE_WORKER_DEATH",
    "SITE_WORKER_PULL",
    "SITE_WORKER_PUSH",
]
