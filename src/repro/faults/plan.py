"""Fault rules, the deterministic fault plan, and fault accounting.

Injection sites
---------------
A *site* is a named point in the execution stack where a fault can be
injected.  Sites are string constants so plans serialize naturally:

``shard-eval``
    ``_run_shard`` raises :class:`FaultInjected` before evaluating the
    shard.  Keyed by shard index, gated by the caller-supplied attempt
    number, so "fail the first ``times`` attempts, then succeed" is exact.
``worker-death``
    ``_run_shard`` kills its process with ``os._exit`` when running in a
    pool worker (inline execution raises instead — killing the caller's
    process would be sabotage, not chaos).  Keyed like ``shard-eval``.
``cache-read`` / ``cache-write``
    The executor's cache pre-pass/store sees an unreadable entry
    (``effect="raise"``) or a torn file (``effect="corrupt"``).  Counted
    per (site, shard) over the plan's lifetime.
``http-connection``
    The study server closes the client connection before responding —
    the client observes a connection reset.  Counted per request.
``http-slow``
    The server sleeps ``delay_s`` before handling the request.  Counted
    per request.
``worker-pull`` / ``worker-push``
    A distributed :class:`~repro.distributed.worker.ShardWorker` fails a
    lease pull (before any shard is held) or a shard push (after
    evaluation, before the coordinator accepts).  Counted per (site,
    key) — pulls key on the worker's pull counter, pushes on the shard
    index — and absorbed by the worker's own RetryPolicy backoff, so an
    injected transport fault costs retries, never bytes.

Determinism
-----------
Two gating mechanisms, both deterministic:

* **attempt-gated** sites (``shard-eval``, ``worker-death``) fire for
  attempts ``0..times-1`` at a matching key.  The attempt number is owned
  by the *parent* process and shipped to workers with the shard, so a
  respawned worker does not reset the count — the fault converges.
* **counted** sites (cache/http) keep a per-(site, key) invocation
  counter inside the plan object and treat it as the attempt number.

Probabilistic rules (``probability < 1``) draw from
``spawn_stream(seed, _FAULT_DOMAIN, site_index, key, attempt)`` — the
same spawn-stream discipline as ``repro._rng``, in a key namespace that
cannot collide with the executor's MC streams (one key component) or its
backoff streams (two components).
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from .._rng import spawn_stream
from ..exceptions import ReproError, ValidationError

SITE_SHARD_EVAL = "shard-eval"
SITE_WORKER_DEATH = "worker-death"
SITE_CACHE_READ = "cache-read"
SITE_CACHE_WRITE = "cache-write"
SITE_HTTP_CONNECTION = "http-connection"
SITE_HTTP_SLOW = "http-slow"
SITE_WORKER_PULL = "worker-pull"
SITE_WORKER_PUSH = "worker-push"

# New sites append; fires() keys probability draws on the site's position
# here, so reordering would silently reshuffle seeded fault schedules.
FAULT_SITES = (
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_HTTP_CONNECTION,
    SITE_HTTP_SLOW,
    SITE_WORKER_PULL,
    SITE_WORKER_PUSH,
)

#: Environment variable holding a JSON fault plan (see FaultPlan.from_env).
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Spawn-key domain separating fault draws from MC and backoff streams.
_FAULT_DOMAIN = 0xFA117

_CACHE_EFFECTS = ("raise", "corrupt")


class FaultInjected(ReproError):
    """Raised (or exited with) at an injection site the plan fired on."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: where, for whom, how often, and how.

    ``keys`` restricts the rule to specific keys (shard indices for
    executor/cache sites); ``None`` matches every key.  ``times`` is the
    number of attempts that fail before the site succeeds again;
    ``probability`` further gates each eligible attempt.  ``effect``
    selects the failure mode for cache sites (``"raise"`` — an
    ``OSError``-like unreadable/unwritable entry — or ``"corrupt"`` — a
    torn file the loader must detect).  ``delay_s`` is the added latency
    for ``http-slow``.
    """

    site: str
    keys: tuple[int, ...] | None = None
    times: int = 1
    probability: float = 1.0
    effect: str = "raise"
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.keys is not None:
            object.__setattr__(self, "keys", tuple(int(k) for k in self.keys))
        if self.times < 1:
            raise ValidationError(f"times must be >= 1, got {self.times}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(f"probability must be in [0, 1], got {self.probability}")
        if self.effect not in _CACHE_EFFECTS:
            raise ValidationError(
                f"unknown fault effect {self.effect!r}; expected one of {_CACHE_EFFECTS}"
            )
        if self.delay_s < 0:
            raise ValidationError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches_key(self, key: int) -> bool:
        return self.keys is None or key in self.keys

    def to_dict(self) -> dict:
        payload: dict = {"site": self.site, "times": self.times}
        if self.keys is not None:
            payload["keys"] = list(self.keys)
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.effect != "raise":
            payload["effect"] = self.effect
        if self.site == SITE_HTTP_SLOW:
            payload["delay_s"] = self.delay_s
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultRule":
        if not isinstance(payload, Mapping):
            raise ValidationError(f"fault rule must be a mapping, got {type(payload).__name__}")
        known = {"site", "keys", "times", "probability", "effect", "delay_s"}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(f"unknown fault rule field(s): {sorted(unknown)}")
        if "site" not in payload:
            raise ValidationError("fault rule requires a 'site' field")
        kwargs = dict(payload)
        if kwargs.get("keys") is not None:
            kwargs["keys"] = tuple(kwargs["keys"])
        return cls(**kwargs)


class FaultPlan:
    """A deterministic, seedable schedule of injected faults.

    The plan itself is cheap and thread-safe; the only mutable state is
    the per-(site, key) counters behind :meth:`fires_counted`.  Plans
    cross process boundaries as their :meth:`to_dict` payload (counters
    intentionally do not travel — workers are attempt-gated by the
    parent instead).
    """

    def __init__(self, rules: Sequence[FaultRule | Mapping], seed: int = 0) -> None:
        parsed = []
        for rule in rules:
            parsed.append(rule if isinstance(rule, FaultRule) else FaultRule.from_dict(rule))
        self.rules: tuple[FaultRule, ...] = tuple(parsed)
        self.seed = int(seed)
        self._counters: dict[tuple[str, int], int] = {}
        self._lock = threading.Lock()

    @property
    def sites(self) -> frozenset:
        return frozenset(rule.site for rule in self.rules)

    def fires(self, site: str, key: int = 0, attempt: int = 0) -> FaultRule | None:
        """Return the first rule that fires at (site, key, attempt), or None."""
        if site not in FAULT_SITES:
            raise ValidationError(f"unknown fault site {site!r}")
        for rule in self.rules:
            if rule.site != site or not rule.matches_key(key):
                continue
            if attempt >= rule.times:
                continue
            if rule.probability < 1.0:
                site_index = FAULT_SITES.index(site)
                u = spawn_stream(self.seed, _FAULT_DOMAIN, site_index, key, attempt).random()
                if u >= rule.probability:
                    continue
            return rule
        return None

    def fires_counted(self, site: str, key: int = 0) -> FaultRule | None:
        """Like :meth:`fires`, with a plan-lifetime invocation counter as attempt."""
        with self._lock:
            n = self._counters.get((site, key), 0)
            self._counters[(site, key)] = n + 1
        return self.fires(site, key=key, attempt=n)

    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, payload: Mapping | Sequence) -> "FaultPlan":
        if isinstance(payload, Mapping):
            unknown = set(payload) - {"seed", "rules"}
            if unknown:
                raise ValidationError(f"unknown fault plan field(s): {sorted(unknown)}")
            return cls(payload.get("rules", []), seed=payload.get("seed", 0))
        if isinstance(payload, Sequence) and not isinstance(payload, (str, bytes)):
            return cls(payload)
        raise ValidationError(
            f"fault plan must be a mapping or a list of rules, got {type(payload).__name__}"
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """Parse :data:`FAULTS_ENV_VAR`; None when unset/empty, loud when invalid."""
        env = os.environ if environ is None else environ
        text = env.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(rules={list(self.rules)!r}, seed={self.seed})"


@dataclass
class FaultStats:
    """What the resilience machinery actually did during one study run.

    Attached to :class:`~repro.studies.results.StudyResults` *outside*
    the canonical artifact: two runs that differ only in injected faults
    produce byte-identical artifacts but different stats.
    """

    shard_failures: int = 0        # shard attempts that raised (incl. worker deaths)
    shard_retries: int = 0         # re-executions scheduled after a failure
    recovered_shards: int = 0      # shards that succeeded after >= 1 failure
    worker_deaths: int = 0         # process-pool breakages observed
    pool_restarts: int = 0         # pools rebuilt after a breakage
    degraded_inline_shards: int = 0  # shards run in-process after pool gave up
    cache_read_faults: int = 0     # cache loads that failed (treated as misses)
    cache_write_faults: int = 0    # cache stores that failed (results kept anyway)

    def as_dict(self) -> dict:
        return {
            "shard_failures": self.shard_failures,
            "shard_retries": self.shard_retries,
            "recovered_shards": self.recovered_shards,
            "worker_deaths": self.worker_deaths,
            "pool_restarts": self.pool_restarts,
            "degraded_inline_shards": self.degraded_inline_shards,
            "cache_read_faults": self.cache_read_faults,
            "cache_write_faults": self.cache_write_faults,
        }

    @property
    def clean(self) -> bool:
        """True when the run saw no failures or degraded paths at all."""
        return not any(self.as_dict().values())
