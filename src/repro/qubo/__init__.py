"""QUBO / Ising problem layer.

The classical side of the split-execution system: quadratic unconstrained
binary optimization problems (paper Eq. (3)), Ising spin models (Eq. (2)),
the exact conversions between them (Eqs. (4)-(5)), workload generators for
the problem families the paper cites, and brute-force reference solvers.
"""

from .conversions import (
    conversion_flop_count,
    ising_to_qubo,
    paper_ising_parameters,
    qubo_to_ising,
)
from .energy import (
    brute_force_ising,
    brute_force_qubo,
    exact_ground_energy,
    ground_states,
    iter_binary_states,
)
from .generators import (
    graph_coloring_qubo,
    max_independent_set_qubo,
    maxcut_qubo,
    min_vertex_cover_qubo,
    number_partitioning_ising,
    random_ising,
    random_qubo,
    set_packing_qubo,
    weighted_max2sat_qubo,
)
from .io import (
    dumps_ising,
    dumps_qubo,
    load_problem,
    loads_ising,
    loads_qubo,
    save_problem,
)
from .ising import IsingModel
from .qubo import Qubo

__all__ = [
    "Qubo",
    "IsingModel",
    "qubo_to_ising",
    "ising_to_qubo",
    "paper_ising_parameters",
    "conversion_flop_count",
    "iter_binary_states",
    "brute_force_qubo",
    "brute_force_ising",
    "ground_states",
    "exact_ground_energy",
    "random_qubo",
    "random_ising",
    "maxcut_qubo",
    "max_independent_set_qubo",
    "min_vertex_cover_qubo",
    "number_partitioning_ising",
    "weighted_max2sat_qubo",
    "graph_coloring_qubo",
    "set_packing_qubo",
    "dumps_qubo",
    "loads_qubo",
    "dumps_ising",
    "loads_ising",
    "save_problem",
    "load_problem",
]
