"""Exhaustive (brute-force) energy minimization for small QUBO/Ising instances.

These routines enumerate the full configuration space in vectorized chunks
and are the ground truth the test suite and the annealer validation lean on.
Enumeration is refused above the hard ceiling ``n = 26`` variables (a
2.7e8-state space); runs near the ceiling are possible but take minutes, and
roughly ``n = 24`` remains the practical comfort zone the exact samplers
default to.

The ``num_best`` selection keeps a fixed-size top-k pool across chunks
instead of sorting every chunk: each chunk is pruned with
``numpy.partition`` to the states whose energy is at most the chunk's k-th
smallest (keeping *all* boundary ties), the survivors are merged into the
pool, and the pool is cut back to ``num_best`` under the total order
(energy, state integer value).  That order is exactly the ordering the
previous full-argsort implementation produced — ascending energy with
deterministic integer-value tiebreak — so results are reproducible across
the rewrite (the golden tests pin this).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np

from ..exceptions import ValidationError
from .ising import IsingModel
from .qubo import Qubo

__all__ = [
    "iter_binary_states",
    "brute_force_qubo",
    "brute_force_ising",
    "ground_states",
    "exact_ground_energy",
]

_MAX_EXHAUSTIVE_N = 26
_DEFAULT_CHUNK_BITS = 16


def iter_binary_states(n: int, chunk_bits: int = _DEFAULT_CHUNK_BITS) -> Iterator[np.ndarray]:
    """Yield all ``2**n`` binary vectors as ``(chunk, n)`` uint8 arrays.

    States are produced in increasing integer order with bit ``i`` of the
    integer mapping to variable ``i`` (little-endian).
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    if n > _MAX_EXHAUSTIVE_N:
        raise ValidationError(
            f"exhaustive enumeration over n={n} > {_MAX_EXHAUSTIVE_N} variables refused"
        )
    if n == 0:
        yield np.zeros((1, 0), dtype=np.uint8)
        return
    total = 1 << n
    chunk = 1 << min(chunk_bits, n)
    bits = np.arange(n, dtype=np.uint64)
    for start in range(0, total, chunk):
        idx = np.arange(start, min(start + chunk, total), dtype=np.uint64)
        yield ((idx[:, None] >> bits) & 1).astype(np.uint8)


def _brute_force_topk(
    n: int,
    num_best: int,
    energies_of: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Shared top-k pool over the full enumeration.

    ``energies_of(batch)`` maps a uint8 batch to ``(states, energies)`` in
    the caller's output convention ({0, 1} or {-1, +1} entries).  Returns the
    ``num_best`` lowest-energy states under the total order (energy, state
    integer value) — identical to a stable full sort with integer tiebreak.
    """
    pool_s: np.ndarray | None = None
    pool_e = np.empty(0, dtype=np.float64)
    pool_i = np.empty(0, dtype=np.uint64)
    start = 0
    for batch in iter_binary_states(n):
        states, e = energies_of(batch)
        if e.shape[0] > num_best:
            # Keep every state at or below the chunk's k-th smallest energy
            # (all boundary ties survive, so the deterministic integer-value
            # tiebreak below sees exactly the candidates a full sort would).
            cutoff = np.partition(e, num_best - 1)[num_best - 1]
            keep = np.flatnonzero(e <= cutoff)
            states, e = states[keep], e[keep]
            idx = (start + keep).astype(np.uint64)
        else:
            idx = np.arange(start, start + e.shape[0], dtype=np.uint64)
        if pool_s is None:
            pool_s, pool_e, pool_i = states, e, idx
        else:
            pool_s = np.vstack([pool_s, states])
            pool_e = np.concatenate([pool_e, e])
            pool_i = np.concatenate([pool_i, idx])
        if pool_e.shape[0] > num_best:
            order = np.lexsort((pool_i, pool_e))[:num_best]
            pool_s, pool_e, pool_i = pool_s[order], pool_e[order], pool_i[order]
        start += batch.shape[0]
    assert pool_s is not None
    order = np.lexsort((pool_i, pool_e))
    return pool_s[order], pool_e[order]


def brute_force_qubo(qubo: Qubo, num_best: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustively find the ``num_best`` lowest-energy binary assignments.

    Returns
    -------
    (states, energies):
        ``states`` has shape ``(num_best, n)`` (entries in {0, 1}) and
        ``energies`` shape ``(num_best,)``, sorted ascending by energy with
        integer-value tiebreak (deterministic; see the module docstring for
        the top-k pool that implements this).
    """
    if num_best < 1:
        raise ValidationError(f"num_best must be >= 1, got {num_best}")

    def energies_of(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return batch, qubo.energies(batch)

    return _brute_force_topk(qubo.num_variables, num_best, energies_of)


def brute_force_ising(ising: IsingModel, num_best: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustively find the ``num_best`` lowest-energy spin configurations.

    Returns ``(states, energies)`` with spin entries in {-1, +1}, sorted
    ascending by energy with deterministic integer-value tiebreak.
    """
    if num_best < 1:
        raise ValidationError(f"num_best must be >= 1, got {num_best}")

    def energies_of(batch: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        spins = batch.astype(np.int8) * 2 - 1
        return spins, ising.energies(spins)

    return _brute_force_topk(ising.num_spins, num_best, energies_of)


def ground_states(ising: IsingModel, atol: float = 1e-9) -> tuple[np.ndarray, float]:
    """All spin configurations within ``atol`` of the minimum energy.

    Returns ``(states, ground_energy)`` where ``states`` has shape ``(g, n)``.
    """
    n = ising.num_spins
    ground = np.inf
    collected: list[np.ndarray] = []
    for batch in iter_binary_states(n):
        spins = batch.astype(np.int8) * 2 - 1
        e = ising.energies(spins)
        lo = float(e.min()) if e.size else np.inf
        if lo < ground - atol:
            ground = lo
            collected = [spins[e <= ground + atol]]
        elif lo <= ground + atol:
            collected.append(spins[e <= ground + atol])
    if not collected:
        return np.zeros((0, n), dtype=np.int8), ground
    states = np.vstack(collected)
    # A later chunk may have lowered `ground`; re-filter the union.
    keep = ising.energies(states) <= ground + atol
    return states[keep], ground


def exact_ground_energy(ising: IsingModel) -> float:
    """Minimum energy over all ``2**n`` spin configurations."""
    _, e = brute_force_ising(ising, num_best=1)
    return float(e[0])
