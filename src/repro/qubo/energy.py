"""Exhaustive (brute-force) energy minimization for small QUBO/Ising instances.

These routines enumerate the full configuration space in vectorized chunks
and are the ground truth the test suite and the annealer validation lean on.
They are practical up to roughly ``n = 24`` spins.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..exceptions import ValidationError
from .ising import IsingModel
from .qubo import Qubo

__all__ = [
    "iter_binary_states",
    "brute_force_qubo",
    "brute_force_ising",
    "ground_states",
    "exact_ground_energy",
]

_MAX_EXHAUSTIVE_N = 26
_DEFAULT_CHUNK_BITS = 16


def iter_binary_states(n: int, chunk_bits: int = _DEFAULT_CHUNK_BITS) -> Iterator[np.ndarray]:
    """Yield all ``2**n`` binary vectors as ``(chunk, n)`` uint8 arrays.

    States are produced in increasing integer order with bit ``i`` of the
    integer mapping to variable ``i`` (little-endian).
    """
    if n < 0:
        raise ValidationError(f"n must be non-negative, got {n}")
    if n > _MAX_EXHAUSTIVE_N:
        raise ValidationError(
            f"exhaustive enumeration over n={n} > {_MAX_EXHAUSTIVE_N} variables refused"
        )
    if n == 0:
        yield np.zeros((1, 0), dtype=np.uint8)
        return
    total = 1 << n
    chunk = 1 << min(chunk_bits, n)
    bits = np.arange(n, dtype=np.uint64)
    for start in range(0, total, chunk):
        idx = np.arange(start, min(start + chunk, total), dtype=np.uint64)
        yield ((idx[:, None] >> bits) & 1).astype(np.uint8)


def brute_force_qubo(qubo: Qubo, num_best: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustively find the ``num_best`` lowest-energy binary assignments.

    Returns
    -------
    (states, energies):
        ``states`` has shape ``(num_best, n)`` (entries in {0, 1}) and
        ``energies`` shape ``(num_best,)``, sorted ascending by energy with
        integer-value tiebreak (deterministic).
    """
    if num_best < 1:
        raise ValidationError(f"num_best must be >= 1, got {num_best}")
    n = qubo.num_variables
    best_states: np.ndarray | None = None
    best_energies: np.ndarray | None = None
    for batch in iter_binary_states(n):
        e = qubo.energies(batch)
        if best_states is None:
            pool_s, pool_e = batch, e
        else:
            pool_s = np.vstack([best_states, batch])
            pool_e = np.concatenate([best_energies, e])
        order = np.argsort(pool_e, kind="stable")[:num_best]
        best_states, best_energies = pool_s[order], pool_e[order]
    assert best_states is not None and best_energies is not None
    return best_states, best_energies


def brute_force_ising(ising: IsingModel, num_best: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustively find the ``num_best`` lowest-energy spin configurations.

    Returns ``(states, energies)`` with spin entries in {-1, +1}, sorted
    ascending by energy (stable order).
    """
    if num_best < 1:
        raise ValidationError(f"num_best must be >= 1, got {num_best}")
    n = ising.num_spins
    best_states: np.ndarray | None = None
    best_energies: np.ndarray | None = None
    for batch in iter_binary_states(n):
        spins = batch.astype(np.int8) * 2 - 1
        e = ising.energies(spins)
        if best_states is None:
            pool_s, pool_e = spins, e
        else:
            pool_s = np.vstack([best_states, spins])
            pool_e = np.concatenate([best_energies, e])
        order = np.argsort(pool_e, kind="stable")[:num_best]
        best_states, best_energies = pool_s[order], pool_e[order]
    assert best_states is not None and best_energies is not None
    return best_states, best_energies


def ground_states(ising: IsingModel, atol: float = 1e-9) -> tuple[np.ndarray, float]:
    """All spin configurations within ``atol`` of the minimum energy.

    Returns ``(states, ground_energy)`` where ``states`` has shape ``(g, n)``.
    """
    n = ising.num_spins
    ground = np.inf
    collected: list[np.ndarray] = []
    for batch in iter_binary_states(n):
        spins = batch.astype(np.int8) * 2 - 1
        e = ising.energies(spins)
        lo = float(e.min()) if e.size else np.inf
        if lo < ground - atol:
            ground = lo
            collected = [spins[e <= ground + atol]]
        elif lo <= ground + atol:
            collected.append(spins[e <= ground + atol])
    if not collected:
        return np.zeros((0, n), dtype=np.int8), ground
    states = np.vstack(collected)
    # A later chunk may have lowered `ground`; re-filter the union.
    keep = ising.energies(states) <= ground + atol
    return states[keep], ground


def exact_ground_energy(ising: IsingModel) -> float:
    """Minimum energy over all ``2**n`` spin configurations."""
    _, e = brute_force_ising(ising, num_best=1)
    return float(e[0])
