"""Exact, energy-preserving conversions between QUBO and Ising forms.

These implement the paper's Eqs. (4)-(5).  With the library's coefficient
conventions (see :class:`~repro.qubo.qubo.Qubo` and
:class:`~repro.qubo.ising.IsingModel`) and the spin map ``b = (1 + s) / 2``:

    h_i      = linear_i / 2 + (1/4) * sum_{j != i} quadratic_{ij}
    J_ij     = quadratic_ij / 4
    offset' += sum_i linear_i / 2 + sum_{i<j} quadratic_ij / 4

which is exactly Eq. (4)-(5) once the paper's matrix ``Q`` is read in the
standard upper-triangle convention (``E(b) = sum_i Q_ii b_i +
sum_{i<j} Q_ij b_i b_j``, each unordered pair counted once).  The round trip
``qubo -> ising -> qubo`` is the identity, and energies match configuration
by configuration: ``E_qubo(b) == E_ising(2 b - 1)`` for every ``b``.

The paper tallies the conversion cost as ``O(n^3)`` addition operations
(Sec. 2.2); :func:`conversion_flop_count` reports that figure for use by the
performance models.
"""

from __future__ import annotations

import numpy as np

from .ising import IsingModel
from .qubo import Qubo

__all__ = [
    "qubo_to_ising",
    "ising_to_qubo",
    "paper_ising_parameters",
    "conversion_flop_count",
]


def qubo_to_ising(qubo: Qubo) -> IsingModel:
    """Convert a :class:`Qubo` to the equivalent :class:`IsingModel`.

    The mapping uses ``b = (1 + s) / 2`` and preserves energies exactly:
    ``qubo.energy(b) == ising.energy(2*b - 1)`` for every binary ``b``.
    """
    n = qubo.num_variables
    rows, cols, vals = qubo.quadratic_arrays()

    h = qubo.linear / 2.0
    if vals.size:
        # Each quadratic term contributes a quarter of its coefficient to
        # the field of each endpoint (paper Eq. (4)).
        h = h + 0.25 * (
            np.bincount(rows, weights=vals, minlength=n)
            + np.bincount(cols, weights=vals, minlength=n)
        )
    J = {
        (int(i), int(j)): float(v) / 4.0 for i, j, v in zip(rows, cols, vals)
    }  # paper Eq. (5)
    offset = qubo.offset + float(np.sum(qubo.linear)) / 2.0 + float(np.sum(vals)) / 4.0
    return IsingModel(h, J, offset)


def ising_to_qubo(ising: IsingModel) -> Qubo:
    """Convert an :class:`IsingModel` to the equivalent :class:`Qubo`.

    Inverse of :func:`qubo_to_ising` (uses ``s = 2 b - 1``); the round trip
    reproduces the original coefficients exactly up to floating-point
    associativity.
    """
    n = ising.num_spins
    rows, cols, vals = ising.coupling_arrays()

    linear = 2.0 * ising.h
    if vals.size:
        linear = linear - 2.0 * (
            np.bincount(rows, weights=vals, minlength=n)
            + np.bincount(cols, weights=vals, minlength=n)
        )
    quadratic = {(int(i), int(j)): 4.0 * float(v) for i, j, v in zip(rows, cols, vals)}
    offset = ising.offset - float(np.sum(ising.h)) + float(np.sum(vals))
    return Qubo(linear, quadratic, offset)


def paper_ising_parameters(Q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Literal implementation of the paper's Eqs. (4)-(5) on a matrix ``Q``.

    Returns ``(h, J)`` where ``h[i] = Q[i, i] / 2 + (1/4) * sum_{j != i} Q[i, j]``
    and ``J[i, j] = Q[i, j] / 4`` for ``i < j`` (dense upper-triangular array,
    zero elsewhere).

    Notes
    -----
    The paper writes the field sum as ``sum_{j=1}^n Q_ij``; including the
    ``j = i`` term would double-count part of the diagonal, so — consistent
    with the standard reduction the paper cites ([25], [32]-[34]) — the sum
    here excludes the diagonal.  Under the upper-triangle QUBO energy
    convention this equals :func:`qubo_to_ising` exactly.
    """
    Q = np.asarray(Q, dtype=np.float64)
    if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
        raise ValueError(f"Q must be square, got shape {Q.shape}")
    off_diag_row_sums = Q.sum(axis=1) - np.diag(Q)
    h = np.diag(Q) / 2.0 + off_diag_row_sums / 4.0
    J = np.triu(Q, k=1) / 4.0
    return h, J


def conversion_flop_count(n: int) -> int:
    """Operation count the paper assigns to building the logical Ising model.

    Section 2.2 bounds the construction of Eqs. (4)-(5) by ``O(n^3)`` addition
    operations; the Stage-1 ASPEN model (Fig. 6) charges exactly
    ``ParameterSetting = LPS^3`` flops.  This helper centralizes that figure so
    the analytical and ASPEN models stay in lock-step.
    """
    if n < 0:
        raise ValueError(f"problem size must be non-negative, got {n}")
    return int(n) ** 3
