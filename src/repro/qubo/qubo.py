"""Quadratic unconstrained binary optimization (QUBO) problems.

A QUBO instance asks for the binary vector ``b`` minimizing ``b^T Q b``
(paper Eq. (3)).  Because ``b_i^2 = b_i`` for binary variables, any square
matrix ``Q`` folds losslessly into *coefficient form*::

    E(b) = sum_i linear[i] * b_i  +  sum_{i<j} quadratic[i, j] * b_i * b_j  +  offset

with ``linear[i] = Q[i, i]`` and ``quadratic[i, j] = Q[i, j] + Q[j, i]``.
This is the convention used throughout the library (and, implicitly, by the
paper's Eqs. (4)-(5); see :mod:`repro.qubo.conversions`).

The class is immutable: all mutating-style operations return new instances.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from ..exceptions import ValidationError
from ._sparse import build_symmetric_csr, normalize_coupling_arrays

__all__ = ["Qubo"]


def _as_index(i: object) -> int:
    idx = int(i)  # type: ignore[call-overload]
    if idx < 0:
        raise ValidationError(f"variable indices must be non-negative, got {idx}")
    return idx


class Qubo:
    """A QUBO problem in coefficient form.

    Parameters
    ----------
    linear:
        Length-``n`` array of linear coefficients (the folded diagonal of Q).
    quadratic:
        Mapping ``{(i, j): coeff}`` with ``i != j``; pairs are normalized to
        ``i < j`` and duplicate/reversed pairs are accumulated.
    offset:
        Constant energy shift carried through conversions.

    Examples
    --------
    >>> q = Qubo([1.0, -2.0], {(0, 1): 3.0})
    >>> q.energy([1, 1])
    2.0
    """

    __slots__ = ("_linear", "_rows", "_cols", "_vals", "_offset", "_cache")

    def __init__(
        self,
        linear: Iterable[float] | np.ndarray,
        quadratic: Mapping[tuple[int, int], float] | None = None,
        offset: float = 0.0,
    ) -> None:
        lin = np.asarray(list(linear) if not isinstance(linear, np.ndarray) else linear, dtype=np.float64)
        if lin.ndim != 1:
            raise ValidationError(f"linear coefficients must be 1-D, got shape {lin.shape}")
        n = lin.shape[0]

        acc: dict[tuple[int, int], float] = {}
        if quadratic:
            for (i, j), v in quadratic.items():
                i, j = _as_index(i), _as_index(j)
                if i == j:
                    raise ValidationError(
                        f"quadratic term ({i}, {j}) is diagonal; fold it into linear[{i}]"
                    )
                if i >= n or j >= n:
                    raise ValidationError(
                        f"quadratic term ({i}, {j}) references a variable >= n={n}"
                    )
                key = (i, j) if i < j else (j, i)
                acc[key] = acc.get(key, 0.0) + float(v)

        keys = sorted(acc)
        self._linear = lin
        self._linear.setflags(write=False)
        self._rows = np.fromiter((k[0] for k in keys), dtype=np.intp, count=len(keys))
        self._cols = np.fromiter((k[1] for k in keys), dtype=np.intp, count=len(keys))
        self._vals = np.fromiter((acc[k] for k in keys), dtype=np.float64, count=len(keys))
        for a in (self._rows, self._cols, self._vals):
            a.setflags(write=False)
        self._offset = float(offset)
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        linear: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        offset: float = 0.0,
    ) -> "Qubo":
        """Build directly from coefficient arrays (``rows[k] < cols[k]`` required).

        The fast constructor mirroring :meth:`IsingModel.from_arrays`:
        validated arrays are adopted without the per-term Python dict work;
        unsorted or duplicated pairs are normalized the same way
        ``__init__`` does.
        """
        lin = np.array(linear, dtype=np.float64)
        if lin.ndim != 1:
            raise ValidationError(f"linear coefficients must be 1-D, got shape {lin.shape}")
        n = lin.shape[0]
        r, c, v = normalize_coupling_arrays(n, rows, cols, vals, what="coefficient")

        obj = cls.__new__(cls)
        obj._linear = lin
        obj._rows, obj._cols, obj._vals = r, c, v
        for a in (obj._linear, obj._rows, obj._cols, obj._vals):
            a.setflags(write=False)
        obj._offset = float(offset)
        obj._cache = {}
        return obj

    @classmethod
    def from_dense(cls, Q: np.ndarray, offset: float = 0.0) -> "Qubo":
        """Build from an arbitrary square matrix ``Q`` with ``E(b) = b^T Q b + offset``.

        The matrix need not be symmetric; ``Q[i, j]`` and ``Q[j, i]`` are
        accumulated into a single ``i < j`` coefficient (exact for binary
        variables).
        """
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValidationError(f"Q must be square, got shape {Q.shape}")
        n = Q.shape[0]
        folded = Q + Q.T
        iu, ju = np.triu_indices(n, k=1)
        vals = folded[iu, ju]
        nz = vals != 0.0
        quadratic = {(int(i), int(j)): float(v) for i, j, v in zip(iu[nz], ju[nz], vals[nz])}
        return cls(np.diag(Q).copy(), quadratic, offset)

    @classmethod
    def from_dict(
        cls,
        coefficients: Mapping[tuple[int, int], float],
        num_variables: int | None = None,
        offset: float = 0.0,
    ) -> "Qubo":
        """Build from ``{(i, j): coeff}`` where ``(i, i)`` entries are linear terms."""
        n = num_variables
        if n is None:
            n = 1 + max((max(i, j) for (i, j) in coefficients), default=-1)
        linear = np.zeros(n, dtype=np.float64)
        quadratic: dict[tuple[int, int], float] = {}
        for (i, j), v in coefficients.items():
            i, j = _as_index(i), _as_index(j)
            if max(i, j) >= n:
                raise ValidationError(f"index ({i}, {j}) out of range for n={n}")
            if i == j:
                linear[i] += float(v)
            else:
                key = (min(i, j), max(i, j))
                quadratic[key] = quadratic.get(key, 0.0) + float(v)
        return cls(linear, quadratic, offset)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        """Number of binary variables ``n``."""
        return int(self._linear.shape[0])

    @property
    def num_interactions(self) -> int:
        """Number of nonzero ``i < j`` quadratic coefficients."""
        return int(self._vals.shape[0])

    @property
    def linear(self) -> np.ndarray:
        """Read-only view of the linear coefficients."""
        return self._linear

    @property
    def offset(self) -> float:
        """Constant energy shift."""
        return self._offset

    def quadratic_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` with ``rows < cols`` element-wise."""
        return self._rows, self._cols, self._vals

    def quadratic_dict(self) -> dict[tuple[int, int], float]:
        """Return the quadratic coefficients as a fresh ``{(i, j): coeff}`` dict."""
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(self._rows, self._cols, self._vals)
        }

    def iter_quadratic(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(i, j, coeff)`` triples with ``i < j``."""
        for i, j, v in zip(self._rows, self._cols, self._vals):
            yield int(i), int(j), float(v)

    # ------------------------------------------------------------------ #
    # Energies
    # ------------------------------------------------------------------ #
    def energy(self, b: Iterable[int] | np.ndarray) -> float:
        """Energy of a single assignment ``b`` (entries in {0, 1})."""
        return float(self.energies(np.asarray(b, dtype=np.float64)[None, :])[0])

    def energies(self, B: np.ndarray) -> np.ndarray:
        """Vectorized energies of a batch of assignments.

        The quadratic term is evaluated through the memoized CSR coefficient
        matrix as ``0.5 * sum_i B_i . (M B^T)_i`` — no ``(k, nnz)`` gather
        temporaries are materialized.

        Parameters
        ----------
        B:
            Array of shape ``(k, n)`` with entries in {0, 1}.

        Returns
        -------
        numpy.ndarray of shape ``(k,)``.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[1] != self.num_variables:
            raise ValidationError(
                f"expected batch shape (k, {self.num_variables}), got {B.shape}"
            )
        e = B @ self._linear
        if self._vals.size:
            M = self.adjacency_csr()
            e += 0.5 * np.einsum("ij,ji->i", B, M @ B.T)
        return e + self._offset

    # ------------------------------------------------------------------ #
    # Memoized derived structure
    # ------------------------------------------------------------------ #
    def _memo(self, key: str, factory):
        """Cache ``factory()`` under ``key`` for the lifetime of the instance.

        Instances are frozen, so memoized derived structure never needs
        invalidation (see DESIGN.md, "Performance architecture").
        """
        cache = self._cache
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = factory()
            return value

    def adjacency_csr(self):
        """Symmetric quadratic-coefficient matrix as ``scipy.sparse.csr_array``.

        ``M[i, j] = M[j, i] = quadratic[i, j]`` with a zero diagonal.
        Memoized on the instance; callers must treat the returned matrix as
        read-only (copy before mutating).
        """
        return self._memo("adjacency_csr", self._build_adjacency_csr)

    def _build_adjacency_csr(self):
        return build_symmetric_csr(self.num_variables, self._rows, self._cols, self._vals)

    # ------------------------------------------------------------------ #
    # Exports / transforms
    # ------------------------------------------------------------------ #
    def to_dense(self, fold: str = "symmetric") -> np.ndarray:
        """Densify to a matrix ``Q`` with ``b^T Q b + offset == E(b)``.

        Parameters
        ----------
        fold:
            ``"symmetric"`` places half of each quadratic coefficient in each
            triangle; ``"upper"`` places the full coefficient above the
            diagonal.  Both reproduce identical energies for binary vectors.
        """
        n = self.num_variables
        Q = np.zeros((n, n), dtype=np.float64)
        np.fill_diagonal(Q, self._linear)
        if fold == "symmetric":
            Q[self._rows, self._cols] += self._vals / 2.0
            Q[self._cols, self._rows] += self._vals / 2.0
        elif fold == "upper":
            Q[self._rows, self._cols] += self._vals
        else:
            raise ValidationError(f"fold must be 'symmetric' or 'upper', got {fold!r}")
        return Q

    def to_ising(self):
        """Convert to the equivalent :class:`~repro.qubo.ising.IsingModel`.

        See :func:`repro.qubo.conversions.qubo_to_ising` (paper Eqs. (4)-(5)).
        """
        from .conversions import qubo_to_ising

        return qubo_to_ising(self)

    def graph(self):
        """The interaction graph: one node per variable, one edge per quadratic term."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_variables))
        g.add_weighted_edges_from(
            (int(i), int(j), float(v)) for i, j, v in zip(self._rows, self._cols, self._vals)
        )
        return g

    def scaled(self, factor: float) -> "Qubo":
        """Return a copy with all coefficients (and offset) multiplied by ``factor``."""
        return Qubo(
            self._linear * factor,
            {
                (int(i), int(j)): float(v) * factor
                for i, j, v in zip(self._rows, self._cols, self._vals)
            },
            self._offset * factor,
        )

    def relabeled(self, mapping: Mapping[int, int]) -> "Qubo":
        """Return a copy with variable ``i`` renamed to ``mapping[i]`` (a permutation)."""
        n = self.num_variables
        perm = [mapping.get(i, i) for i in range(n)]
        if sorted(perm) != list(range(n)):
            raise ValidationError("relabeling must be a permutation of range(n)")
        linear = np.zeros(n, dtype=np.float64)
        linear[perm] = self._linear
        quadratic = {
            (perm[int(i)], perm[int(j)]): float(v)
            for i, j, v in zip(self._rows, self._cols, self._vals)
        }
        return Qubo(linear, quadratic, self._offset)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Qubo):
            return NotImplemented
        return (
            self.num_variables == other.num_variables
            and self._offset == other._offset
            and np.array_equal(self._linear, other._linear)
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._vals, other._vals)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_variables,
                self._offset,
                self._linear.tobytes(),
                self._rows.tobytes(),
                self._cols.tobytes(),
                self._vals.tobytes(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Qubo(num_variables={self.num_variables}, "
            f"num_interactions={self.num_interactions}, offset={self._offset!r})"
        )
