"""Plain-text serialization of QUBO and Ising problems (COO format).

A minimal, diff-friendly interchange format so problems can be saved,
versioned, and fed to the CLI:

.. code-block:: text

    # comment lines start with '#'
    qubo 3            # header: kind and variable count
    offset 0.5        # optional
    0 0  1.25         # i i  value  -> linear coefficient
    0 2 -0.75         # i j  value  -> quadratic coefficient (i != j)

Ising files are identical with an ``ising`` header; diagonal entries are the
fields ``h_i`` and off-diagonal entries the couplings ``J_ij``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from .ising import IsingModel
from .qubo import Qubo

__all__ = ["dumps_qubo", "loads_qubo", "dumps_ising", "loads_ising",
           "save_problem", "load_problem"]


def _dump(kind: str, n: int, offset: float, linear, pairs) -> str:
    lines = [f"{kind} {n}"]
    if offset != 0.0:
        lines.append(f"offset {offset!r}")
    for i, v in enumerate(linear):
        if v != 0.0:
            lines.append(f"{i} {i} {float(v)!r}")
    for i, j, v in pairs:
        lines.append(f"{i} {j} {float(v)!r}")
    return "\n".join(lines) + "\n"


def dumps_qubo(qubo: Qubo) -> str:
    """Serialize a :class:`Qubo` to COO text."""
    return _dump("qubo", qubo.num_variables, qubo.offset, qubo.linear,
                 qubo.iter_quadratic())


def dumps_ising(ising: IsingModel) -> str:
    """Serialize an :class:`IsingModel` to COO text."""
    return _dump("ising", ising.num_spins, ising.offset, ising.h,
                 ising.iter_couplings())


def _parse(text: str) -> tuple[str, int, float, np.ndarray, dict]:
    kind: str | None = None
    n = 0
    offset = 0.0
    linear: np.ndarray | None = None
    quadratic: dict[tuple[int, int], float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if kind is None:
            if len(parts) != 2 or parts[0] not in ("qubo", "ising"):
                raise ValidationError(
                    f"line {lineno}: expected header 'qubo N' or 'ising N', got {raw!r}"
                )
            kind = parts[0]
            try:
                n = int(parts[1])
            except ValueError as exc:
                raise ValidationError(f"line {lineno}: bad size {parts[1]!r}") from exc
            if n < 0:
                raise ValidationError(f"line {lineno}: negative size {n}")
            linear = np.zeros(n, dtype=np.float64)
            continue
        if parts[0] == "offset":
            if len(parts) != 2:
                raise ValidationError(f"line {lineno}: offset needs one value")
            offset = float(parts[1])
            continue
        if len(parts) != 3:
            raise ValidationError(f"line {lineno}: expected 'i j value', got {raw!r}")
        i, j, v = int(parts[0]), int(parts[1]), float(parts[2])
        if not (0 <= i < n and 0 <= j < n):
            raise ValidationError(f"line {lineno}: index ({i}, {j}) outside n={n}")
        assert linear is not None
        if i == j:
            linear[i] += v
        else:
            key = (min(i, j), max(i, j))
            quadratic[key] = quadratic.get(key, 0.0) + v
    if kind is None:
        raise ValidationError("empty problem file (no header)")
    assert linear is not None
    return kind, n, offset, linear, quadratic


def loads_qubo(text: str) -> Qubo:
    """Parse COO text with a ``qubo`` header."""
    kind, _, offset, linear, quadratic = _parse(text)
    if kind != "qubo":
        raise ValidationError(f"expected a qubo file, got {kind!r}")
    return Qubo(linear, quadratic, offset)


def loads_ising(text: str) -> IsingModel:
    """Parse COO text with an ``ising`` header."""
    kind, _, offset, linear, quadratic = _parse(text)
    if kind != "ising":
        raise ValidationError(f"expected an ising file, got {kind!r}")
    return IsingModel(linear, quadratic, offset)


def save_problem(problem: Qubo | IsingModel, path: str | Path) -> None:
    """Write a problem to ``path`` in COO text format."""
    if isinstance(problem, Qubo):
        text = dumps_qubo(problem)
    elif isinstance(problem, IsingModel):
        text = dumps_ising(problem)
    else:
        raise ValidationError(f"cannot serialize {type(problem).__name__}")
    Path(path).write_text(text)


def load_problem(path: str | Path) -> Qubo | IsingModel:
    """Read a COO problem file; the header selects the type."""
    text = Path(path).read_text()
    kind, *_ = _parse(text)
    return loads_qubo(text) if kind == "qubo" else loads_ising(text)
