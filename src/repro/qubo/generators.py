"""Workload generators: optimization problems that map into the D-Wave QPU.

The paper's introduction motivates split-execution with problems "shown to
map into the D-Wave processor" — MAX-SAT, MIN-COVER, MAX-CUT and other graph
problems, classification, integer programming, and set packing (Sec. 2.1,
citing Lucas's Ising formulations).  This module provides generators for a
representative set of those reductions, each returning a :class:`Qubo` or
:class:`IsingModel` whose ground states encode the combinatorial optimum.

All constructions carry their constant terms in ``offset`` so that the
reported energies equal the natural objective value (e.g. minus the cut
weight for MAX-CUT).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from .._rng import as_rng
from ..exceptions import ValidationError
from .ising import IsingModel
from .qubo import Qubo

__all__ = [
    "random_qubo",
    "random_ising",
    "maxcut_qubo",
    "max_independent_set_qubo",
    "min_vertex_cover_qubo",
    "number_partitioning_ising",
    "weighted_max2sat_qubo",
    "graph_coloring_qubo",
    "set_packing_qubo",
]


def random_qubo(
    n: int,
    density: float = 1.0,
    rng: np.random.Generator | int | None = None,
    scale: float = 1.0,
) -> Qubo:
    """A random QUBO: i.i.d. uniform ``[-scale, scale]`` coefficients.

    Parameters
    ----------
    n:
        Number of binary variables.
    density:
        Probability that each of the ``n*(n-1)/2`` candidate quadratic terms
        is present.  ``density=1`` yields a complete interaction graph — the
        worst case the paper's Stage-1 model assumes.
    """
    if not 0.0 <= density <= 1.0:
        raise ValidationError(f"density must lie in [0, 1], got {density}")
    gen = as_rng(rng)
    linear = gen.uniform(-scale, scale, size=n)
    # Terms are generated in lexicographic order, so from_arrays adopts the
    # arrays without re-sorting (and without the per-term dict round-trip).
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            if density >= 1.0 or gen.random() < density:
                rows.append(i)
                cols.append(j)
                vals.append(float(gen.uniform(-scale, scale)))
    return Qubo.from_arrays(linear, rows, cols, vals)


def random_ising(
    n: int,
    density: float = 1.0,
    rng: np.random.Generator | int | None = None,
    h_scale: float = 1.0,
    j_scale: float = 1.0,
) -> IsingModel:
    """A random Ising model with uniform fields and couplings."""
    if not 0.0 <= density <= 1.0:
        raise ValidationError(f"density must lie in [0, 1], got {density}")
    gen = as_rng(rng)
    h = gen.uniform(-h_scale, h_scale, size=n)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            if density >= 1.0 or gen.random() < density:
                rows.append(i)
                cols.append(j)
                vals.append(float(gen.uniform(-j_scale, j_scale)))
    return IsingModel.from_arrays(h, rows, cols, vals)


def _check_simple_graph(graph: nx.Graph) -> list[int]:
    nodes = sorted(graph.nodes())
    if nodes != list(range(len(nodes))):
        raise ValidationError(
            "graph nodes must be exactly range(n); relabel with nx.convert_node_labels_to_integers"
        )
    return nodes


def maxcut_qubo(graph: nx.Graph, weight: str = "weight") -> Qubo:
    """MAX-CUT as a QUBO: ``E(b) = -cut(b)`` so the minimum is minus the max cut.

    For each edge ``(i, j)`` with weight ``w``, the cut indicator is
    ``b_i + b_j - 2 b_i b_j``; minimizing the negated sum yields the
    maximum-weight cut.
    """
    nodes = _check_simple_graph(graph)
    n = len(nodes)
    linear = np.zeros(n, dtype=np.float64)
    quadratic: dict[tuple[int, int], float] = {}
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0))
        linear[u] -= w
        linear[v] -= w
        key = (min(u, v), max(u, v))
        quadratic[key] = quadratic.get(key, 0.0) + 2.0 * w
    return Qubo(linear, quadratic)


def max_independent_set_qubo(graph: nx.Graph, penalty: float = 2.0) -> Qubo:
    """Maximum independent set: ``E(b) = -|S| + penalty * (#violated edges)``.

    With ``penalty > 1`` every minimum-energy assignment is a maximum
    independent set, and its energy equals minus the set size.
    """
    if penalty <= 1.0:
        raise ValidationError(f"penalty must exceed 1 for a faithful encoding, got {penalty}")
    nodes = _check_simple_graph(graph)
    n = len(nodes)
    linear = np.full(n, -1.0)
    quadratic = {
        (min(u, v), max(u, v)): float(penalty) for u, v in graph.edges() if u != v
    }
    return Qubo(linear, quadratic)


def min_vertex_cover_qubo(graph: nx.Graph, penalty: float = 2.0) -> Qubo:
    """Minimum vertex cover: ``E(b) = |C| + penalty * (#uncovered edges)``.

    Each uncovered edge contributes ``penalty * (1 - b_u)(1 - b_v)``.
    """
    if penalty <= 1.0:
        raise ValidationError(f"penalty must exceed 1 for a faithful encoding, got {penalty}")
    nodes = _check_simple_graph(graph)
    n = len(nodes)
    p = float(penalty)
    linear = np.ones(n, dtype=np.float64)
    quadratic: dict[tuple[int, int], float] = {}
    offset = 0.0
    for u, v in graph.edges():
        if u == v:
            continue
        offset += p
        linear[u] -= p
        linear[v] -= p
        key = (min(u, v), max(u, v))
        quadratic[key] = quadratic.get(key, 0.0) + p
    return Qubo(linear, quadratic, offset)


def number_partitioning_ising(values: Sequence[float]) -> IsingModel:
    """Number partitioning: ``E(s) = (sum_i a_i s_i)^2``.

    A zero-energy ground state is a perfect partition; otherwise the ground
    energy is the squared residual of the best partition.
    """
    a = np.asarray(values, dtype=np.float64)
    if a.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {a.shape}")
    n = a.shape[0]
    J = {
        (i, j): 2.0 * float(a[i] * a[j]) for i in range(n) for j in range(i + 1, n)
    }
    return IsingModel(np.zeros(n), J, offset=float(np.sum(a * a)))


def weighted_max2sat_qubo(
    clauses: Iterable[tuple[int, ...]],
    weights: Sequence[float] | None = None,
    num_variables: int | None = None,
) -> Qubo:
    """Weighted MAX-2-SAT: ``E(b)`` is the total weight of *unsatisfied* clauses.

    Clauses are tuples of 1 or 2 nonzero DIMACS-style literals: literal ``+k``
    means variable ``k-1`` is true, ``-k`` means it is false.
    """
    clause_list = [tuple(c) for c in clauses]
    if weights is None:
        w_arr = np.ones(len(clause_list), dtype=np.float64)
    else:
        w_arr = np.asarray(weights, dtype=np.float64)
        if w_arr.shape != (len(clause_list),):
            raise ValidationError("weights must have one entry per clause")

    max_var = 0
    for c in clause_list:
        if not 1 <= len(c) <= 2 or any(lit == 0 for lit in c):
            raise ValidationError(f"clauses must have 1-2 nonzero literals, got {c}")
        max_var = max(max_var, max(abs(lit) for lit in c))
    n = num_variables if num_variables is not None else max_var
    if n < max_var:
        raise ValidationError(f"num_variables={n} < largest referenced variable {max_var}")

    linear = np.zeros(n, dtype=np.float64)
    quadratic: dict[tuple[int, int], float] = {}
    offset = 0.0

    def add_quad(i: int, j: int, v: float) -> None:
        key = (min(i, j), max(i, j))
        quadratic[key] = quadratic.get(key, 0.0) + v

    for c, w in zip(clause_list, w_arr):
        w = float(w)
        if len(c) == 1:
            (lit,) = c
            i = abs(lit) - 1
            if lit > 0:  # unsatisfied iff b_i = 0 : w * (1 - b_i)
                offset += w
                linear[i] -= w
            else:  # unsatisfied iff b_i = 1 : w * b_i
                linear[i] += w
            continue
        l1, l2 = c
        i, j = abs(l1) - 1, abs(l2) - 1
        if i == j:
            # (x or x) == unary; (x or not x) == tautology.
            if (l1 > 0) == (l2 > 0):
                if l1 > 0:
                    offset += w
                    linear[i] -= w
                else:
                    linear[i] += w
            continue
        if l1 > 0 and l2 > 0:  # unsat iff both false: w (1-b_i)(1-b_j)
            offset += w
            linear[i] -= w
            linear[j] -= w
            add_quad(i, j, w)
        elif l1 > 0 and l2 < 0:  # unsat iff b_i=0, b_j=1: w (1-b_i) b_j
            linear[j] += w
            add_quad(i, j, -w)
        elif l1 < 0 and l2 > 0:  # unsat iff b_i=1, b_j=0
            linear[i] += w
            add_quad(i, j, -w)
        else:  # both negated: unsat iff both true
            add_quad(i, j, w)
    return Qubo(linear, quadratic, offset)


def graph_coloring_qubo(graph: nx.Graph, num_colors: int, penalty: float = 1.0) -> Qubo:
    """Proper ``k``-coloring feasibility as a QUBO over one-hot variables.

    Variable ``x[v, c] = b[v * k + c]`` selects color ``c`` for vertex ``v``.
    ``E(b) = penalty * (sum_v (1 - sum_c x_vc)^2 + sum_{(u,v) in E} sum_c x_uc x_vc)``,
    so ``E == 0`` exactly when ``b`` encodes a proper coloring.
    """
    if num_colors < 1:
        raise ValidationError(f"num_colors must be >= 1, got {num_colors}")
    nodes = _check_simple_graph(graph)
    n, k, p = len(nodes), int(num_colors), float(penalty)

    def var(v: int, c: int) -> int:
        return v * k + c

    linear = np.zeros(n * k, dtype=np.float64)
    quadratic: dict[tuple[int, int], float] = {}
    offset = p * n  # the "+1" of each one-hot square

    def add_quad(i: int, j: int, v: float) -> None:
        key = (min(i, j), max(i, j))
        quadratic[key] = quadratic.get(key, 0.0) + v

    for v in range(n):
        for c in range(k):
            linear[var(v, c)] -= p  # -2 sum x + sum x^2 = -sum x (binary)
        for c1 in range(k):
            for c2 in range(c1 + 1, k):
                add_quad(var(v, c1), var(v, c2), 2.0 * p)
    for u, v in graph.edges():
        if u == v:
            continue
        for c in range(k):
            add_quad(var(u, c), var(v, c), p)
    return Qubo(linear, quadratic, offset)


def set_packing_qubo(
    sets: Sequence[Iterable[int]],
    weights: Sequence[float] | None = None,
    penalty: float | None = None,
) -> Qubo:
    """Weighted set packing: choose disjoint sets maximizing total weight.

    ``E(b) = -sum_i w_i b_i + penalty * (#chosen overlapping pairs)``.  The
    default penalty (``1 + max w``) makes every minimum a valid packing.
    """
    universe_sets = [frozenset(int(e) for e in s) for s in sets]
    m = len(universe_sets)
    if weights is None:
        w_arr = np.ones(m, dtype=np.float64)
    else:
        w_arr = np.asarray(weights, dtype=np.float64)
        if w_arr.shape != (m,):
            raise ValidationError("weights must have one entry per set")
    if penalty is None:
        penalty = 1.0 + (float(np.max(w_arr)) if m else 0.0)
    p = float(penalty)
    quadratic: dict[tuple[int, int], float] = {}
    for i in range(m):
        for j in range(i + 1, m):
            if universe_sets[i] & universe_sets[j]:
                quadratic[(i, j)] = p
    return Qubo(-w_arr, quadratic)
