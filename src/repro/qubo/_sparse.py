"""Shared sparse-coefficient helpers for :class:`Qubo` and :class:`IsingModel`.

Both classes store their pairwise terms as parallel ``(rows, cols, vals)``
arrays in lexicographic ``(rows, cols)`` order with unique ``rows < cols``
pairs, and both derive the same symmetric CSR matrix for the hot kernels.
Keeping the normalization and CSR construction here keeps the two classes
bit-for-bit consistent (see DESIGN.md, "Performance architecture").
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["normalize_coupling_arrays", "build_symmetric_csr"]


def normalize_coupling_arrays(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    what: str = "coupling",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate and canonicalize pairwise-term arrays for ``n`` variables.

    Returns fresh ``(rows, cols, vals)`` copies in lexicographic
    ``(rows, cols)`` order with duplicate pairs accumulated — the same
    normalization the dict-based constructors apply.  Raises
    :class:`ValidationError` on shape/range/ordering violations.
    """
    r = np.asarray(rows, dtype=np.intp).copy()
    c = np.asarray(cols, dtype=np.intp).copy()
    v = np.asarray(vals, dtype=np.float64).copy()
    if not (r.ndim == c.ndim == v.ndim == 1 and r.size == c.size == v.size):
        raise ValidationError(
            f"rows/cols/vals must be equal-length 1-D arrays, got "
            f"{r.shape}/{c.shape}/{v.shape}"
        )
    if r.size:
        if not np.all(r < c):
            raise ValidationError(f"{what} arrays require rows < cols element-wise")
        if np.min(r) < 0 or np.max(c) >= n:
            raise ValidationError(f"{what} indices out of range for n={n}")
        # Canonical storage is lexicographic (rows, cols) with unique pairs;
        # repair the input only when needed.
        lex_sorted = bool(
            np.all((r[1:] > r[:-1]) | ((r[1:] == r[:-1]) & (c[1:] > c[:-1])))
        )
        if not lex_sorted:
            order = np.lexsort((c, r))
            r, c, v = r[order], c[order], v[order]
            dup = np.zeros(r.size, dtype=bool)
            dup[1:] = (r[1:] == r[:-1]) & (c[1:] == c[:-1])
            if dup.any():
                starts = np.flatnonzero(~dup)
                v = np.add.reduceat(v, starts)
                r, c = r[starts], c[starts]
    return r, c, v


def build_symmetric_csr(n: int, rows: np.ndarray, cols: np.ndarray, vals: np.ndarray):
    """Symmetric ``(n, n)`` ``scipy.sparse.csr_array`` with both triangles filled."""
    import scipy.sparse as sp

    return sp.csr_array(
        (
            np.concatenate([vals, vals]),
            (np.concatenate([rows, cols]), np.concatenate([cols, rows])),
        ),
        shape=(n, n),
    )
