"""Ising spin models (paper Eq. (2)) in computational sign convention.

The library stores Ising models with the *computational* energy

    E(s) = sum_i h[i] * s_i  +  sum_{i<j} J[i, j] * s_i * s_j  +  offset,

``s_i`` in {-1, +1}.  The paper's physical Hamiltonian (Eq. (2)) carries
overall minus signs, ``H = -sum h Z - sum J ZZ``; the two differ only by the
sign flip ``(h, J) -> (-h, -J)`` exposed via :meth:`IsingModel.negated`.
Minimizing the computational energy of ``(h, J)`` is identical to finding
the ground state of the physical Hamiltonian with parameters ``(-h, -J)``.

Instances are immutable, which the hot kernels exploit: derived structure
(the symmetric CSR coupling matrix, the greedy interaction-graph coloring)
is computed lazily once per instance and memoized without any invalidation
machinery (see DESIGN.md, "Performance architecture").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from ..exceptions import ValidationError
from ._sparse import build_symmetric_csr, normalize_coupling_arrays

__all__ = ["IsingModel"]


class IsingModel:
    """An Ising model over ``n`` spins.

    Parameters
    ----------
    h:
        Length-``n`` array of local fields (biases).
    J:
        Mapping ``{(i, j): coupling}`` with ``i != j``; normalized to
        ``i < j``, duplicates accumulated.
    offset:
        Constant energy shift (produced by QUBO conversion, for example).

    Examples
    --------
    >>> m = IsingModel([0.5, -0.5], {(0, 1): 1.0})
    >>> m.energy([-1, 1])
    -2.0
    """

    __slots__ = ("_h", "_rows", "_cols", "_vals", "_offset", "_cache")

    def __init__(
        self,
        h: Iterable[float] | np.ndarray,
        J: Mapping[tuple[int, int], float] | None = None,
        offset: float = 0.0,
    ) -> None:
        hv = np.asarray(list(h) if not isinstance(h, np.ndarray) else h, dtype=np.float64)
        if hv.ndim != 1:
            raise ValidationError(f"h must be 1-D, got shape {hv.shape}")
        n = hv.shape[0]

        acc: dict[tuple[int, int], float] = {}
        if J:
            for (i, j), v in J.items():
                i, j = int(i), int(j)
                if i == j:
                    raise ValidationError(f"self-coupling ({i}, {i}) is not allowed")
                if not (0 <= i < n and 0 <= j < n):
                    raise ValidationError(f"coupling ({i}, {j}) out of range for n={n}")
                key = (i, j) if i < j else (j, i)
                acc[key] = acc.get(key, 0.0) + float(v)

        keys = sorted(acc)
        self._h = hv
        self._h.setflags(write=False)
        self._rows = np.fromiter((k[0] for k in keys), dtype=np.intp, count=len(keys))
        self._cols = np.fromiter((k[1] for k in keys), dtype=np.intp, count=len(keys))
        self._vals = np.fromiter((acc[k] for k in keys), dtype=np.float64, count=len(keys))
        for a in (self._rows, self._cols, self._vals):
            a.setflags(write=False)
        self._offset = float(offset)
        self._cache: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        h: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        offset: float = 0.0,
    ) -> "IsingModel":
        """Build directly from coupling arrays (``rows[k] < cols[k]`` required).

        This is the fast constructor used by the optimized kernels and the
        workload generators: the arrays are validated and adopted directly,
        with none of the per-coupling Python dict work of ``__init__``.
        Arrays already in lexicographic ``(rows, cols)`` order with unique
        pairs are adopted as-is; unsorted or duplicated pairs are sorted and
        accumulated (matching the ``__init__`` normalization).
        """
        hv = np.array(h, dtype=np.float64)
        if hv.ndim != 1:
            raise ValidationError(f"h must be 1-D, got shape {hv.shape}")
        n = hv.shape[0]
        r, c, v = normalize_coupling_arrays(n, rows, cols, vals, what="coupling")

        obj = cls.__new__(cls)
        obj._h = hv
        obj._rows, obj._cols, obj._vals = r, c, v
        for a in (obj._h, obj._rows, obj._cols, obj._vals):
            a.setflags(write=False)
        obj._offset = float(offset)
        obj._cache = {}
        return obj

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_spins(self) -> int:
        """Number of spins ``n``."""
        return int(self._h.shape[0])

    @property
    def num_interactions(self) -> int:
        """Number of nonzero couplings."""
        return int(self._vals.shape[0])

    @property
    def h(self) -> np.ndarray:
        """Read-only view of the local fields."""
        return self._h

    @property
    def offset(self) -> float:
        """Constant energy shift."""
        return self._offset

    def coupling_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(rows, cols, values)`` with ``rows < cols`` element-wise."""
        return self._rows, self._cols, self._vals

    def coupling_dict(self) -> dict[tuple[int, int], float]:
        """Return couplings as a fresh ``{(i, j): J_ij}`` dict with ``i < j``."""
        return {
            (int(i), int(j)): float(v)
            for i, j, v in zip(self._rows, self._cols, self._vals)
        }

    def iter_couplings(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over ``(i, j, J_ij)`` triples with ``i < j``."""
        for i, j, v in zip(self._rows, self._cols, self._vals):
            yield int(i), int(j), float(v)

    @property
    def max_abs_h(self) -> float:
        """Largest magnitude among the local fields (0 for empty models)."""
        return float(np.max(np.abs(self._h))) if self._h.size else 0.0

    @property
    def max_abs_j(self) -> float:
        """Largest magnitude among the couplings (0 when there are none)."""
        return float(np.max(np.abs(self._vals))) if self._vals.size else 0.0

    # ------------------------------------------------------------------ #
    # Memoized derived structure
    # ------------------------------------------------------------------ #
    def _memo(self, key: str, factory):
        """Cache ``factory()`` under ``key`` for the lifetime of the instance.

        Instances are frozen, so memoized derived structure never needs
        invalidation.  Used by the samplers for the CSR coupling matrix, the
        interaction-graph coloring, and the per-class sweep layout.
        """
        cache = self._cache
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = factory()
            return value

    # ------------------------------------------------------------------ #
    # Energies
    # ------------------------------------------------------------------ #
    def energy(self, s: Iterable[int] | np.ndarray) -> float:
        """Energy of a single spin configuration (entries in {-1, +1})."""
        return float(self.energies(np.asarray(s, dtype=np.float64)[None, :])[0])

    def energies(self, S: np.ndarray) -> np.ndarray:
        """Vectorized energies of a ``(k, n)`` batch of spin configurations.

        The quadratic term is evaluated through the memoized CSR coupling
        matrix as ``0.5 * sum_i S_i . (M S^T)_i`` — no ``(k, nnz)`` gather
        temporaries are materialized.
        """
        S = np.asarray(S, dtype=np.float64)
        if S.ndim != 2 or S.shape[1] != self.num_spins:
            raise ValidationError(f"expected batch shape (k, {self.num_spins}), got {S.shape}")
        e = S @ self._h
        if self._vals.size:
            M = self.adjacency_csr()
            e += 0.5 * np.einsum("ij,ji->i", S, M @ S.T)
        return e + self._offset

    # ------------------------------------------------------------------ #
    # Exports / transforms
    # ------------------------------------------------------------------ #
    def to_dense_coupling(self) -> np.ndarray:
        """Symmetric ``(n, n)`` matrix ``M`` with ``M[i, j] = M[j, i] = J_ij``, zero diagonal."""
        n = self.num_spins
        M = np.zeros((n, n), dtype=np.float64)
        M[self._rows, self._cols] = self._vals
        M[self._cols, self._rows] = self._vals
        return M

    def adjacency_csr(self):
        """Symmetric coupling matrix as ``scipy.sparse.csr_array`` (for samplers).

        Memoized on the instance; callers must treat the returned matrix as
        read-only (copy before mutating).
        """
        return self._memo("adjacency_csr", self._build_adjacency_csr)

    def _build_adjacency_csr(self):
        return build_symmetric_csr(self.num_spins, self._rows, self._cols, self._vals)

    def color_classes(self) -> tuple[np.ndarray, ...]:
        """Greedy proper coloring of the interaction graph, as index arrays.

        Spins within one class share no coupling, so a sweep may update a
        whole class simultaneously without biasing the single-spin dynamics.
        Memoized on the instance; the arrays are read-only.
        """
        return self._memo("color_classes", self._build_color_classes)

    def _build_color_classes(self) -> tuple[np.ndarray, ...]:
        import networkx as nx

        coloring = nx.greedy_color(self.graph(), strategy="largest_first")
        num_colors = 1 + max(coloring.values(), default=0)
        classes: list[list[int]] = [[] for _ in range(num_colors)]
        for node, color in coloring.items():
            classes[color].append(node)
        out = tuple(np.asarray(sorted(c), dtype=np.intp) for c in classes if c)
        for a in out:
            a.setflags(write=False)
        return out

    def to_qubo(self):
        """Convert to the equivalent :class:`~repro.qubo.qubo.Qubo`."""
        from .conversions import ising_to_qubo

        return ising_to_qubo(self)

    def graph(self):
        """Interaction graph: one node per spin, one edge per nonzero coupling."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_spins))
        g.add_weighted_edges_from(
            (int(i), int(j), float(v)) for i, j, v in zip(self._rows, self._cols, self._vals)
        )
        return g

    def negated(self) -> "IsingModel":
        """Flip the signs of ``(h, J)``: computational <-> physical convention."""
        return IsingModel.from_arrays(
            -self._h, self._rows, self._cols, -self._vals, self._offset
        )

    def scaled(self, factor: float) -> "IsingModel":
        """Return a copy with ``h``, ``J``, and ``offset`` multiplied by ``factor``."""
        return IsingModel.from_arrays(
            self._h * factor,
            self._rows,
            self._cols,
            self._vals * factor,
            self._offset * factor,
        )

    def relabeled(self, mapping: Mapping[int, int]) -> "IsingModel":
        """Return a copy with spin ``i`` renamed to ``mapping[i]`` (a permutation)."""
        n = self.num_spins
        perm = [mapping.get(i, i) for i in range(n)]
        if sorted(perm) != list(range(n)):
            raise ValidationError("relabeling must be a permutation of range(n)")
        h = np.zeros(n, dtype=np.float64)
        h[perm] = self._h
        J = {
            (perm[int(i)], perm[int(j)]): float(v)
            for i, j, v in zip(self._rows, self._cols, self._vals)
        }
        return IsingModel(h, J, self._offset)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IsingModel):
            return NotImplemented
        return (
            self.num_spins == other.num_spins
            and self._offset == other._offset
            and np.array_equal(self._h, other._h)
            and np.array_equal(self._rows, other._rows)
            and np.array_equal(self._cols, other._cols)
            and np.array_equal(self._vals, other._vals)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.num_spins,
                self._offset,
                self._h.tobytes(),
                self._rows.tobytes(),
                self._cols.tobytes(),
                self._vals.tobytes(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IsingModel(num_spins={self.num_spins}, "
            f"num_interactions={self.num_interactions}, offset={self._offset!r})"
        )
