"""Random-number-generator plumbing shared across the library.

Every stochastic entry point accepts ``rng`` as a :class:`numpy.random.Generator`,
an integer seed, or ``None`` (fresh entropy), normalized by :func:`as_rng`.
Passing an existing generator never reseeds it, so composed pipelines draw
from a single reproducible stream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "RngLike"]

RngLike = "np.random.Generator | int | None"


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalize ``rng`` to a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
