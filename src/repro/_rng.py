"""Random-number-generator plumbing shared across the library.

Every stochastic entry point accepts ``rng`` as a :class:`numpy.random.Generator`,
an integer seed, or ``None`` (fresh entropy), normalized by :func:`as_rng`.
Passing an existing generator never reseeds it, so composed pipelines draw
from a single reproducible stream.

Spawn-stream seeding rule
-------------------------
Partitioned workloads (the sharded study executor in
:mod:`repro.studies.executor`) need one independent stream per partition
whose identity depends only on *which* partition it is — never on which
worker runs it, in what order, or how many workers exist.  The library-wide
rule, implemented by :func:`spawn_stream`, is::

    stream(seed, *key) = default_rng(SeedSequence(seed, spawn_key=key))

i.e. the child stream for partition ``key`` (for the executor: the shard
index within the fixed shard grid) is derived from the root ``seed``
through NumPy's ``SeedSequence`` spawn-key mechanism.  Because the spawn
key is the partition's *logical* index, any scheduling of partitions over
any number of workers consumes identical streams, which is what makes
sharded study results bit-identical for 1, 2, or N workers and for
arbitrary shard execution order.  The streams are statistically
independent by the SeedSequence design, so partitions never share draws.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_stream", "RngLike"]

RngLike = "np.random.Generator | int | None"


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalize ``rng`` to a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_stream(seed: int, *key: int) -> np.random.Generator:
    """The independent child stream ``key`` of the root ``seed``.

    Implements the module docstring's spawn-stream seeding rule:
    ``default_rng(SeedSequence(seed, spawn_key=key))``.  Calls with the
    same ``(seed, key)`` return generators producing identical draws;
    different keys yield statistically independent streams.
    """
    if not key:
        raise ValueError("spawn_stream needs at least one key component")
    return np.random.default_rng(np.random.SeedSequence(int(seed), spawn_key=tuple(int(k) for k in key)))
