"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to discriminate the failing subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "AspenError",
    "AspenSyntaxError",
    "AspenNameError",
    "AspenEvaluationError",
    "HardwareError",
    "EmbeddingError",
    "InvalidEmbeddingError",
    "SamplerError",
    "ShardError",
    "SimulationError",
    "DistributedError",
    "PushRejected",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input value failed validation (wrong shape, domain, or type)."""


class AspenError(ReproError):
    """Base class for errors raised by the ASPEN modeling-language subsystem."""


class AspenSyntaxError(AspenError):
    """The ASPEN source text could not be tokenized or parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}" + (f", col {column}" if column is not None else "") + f": {message}"
        super().__init__(message)


class AspenNameError(AspenError):
    """A model, parameter, kernel, data set, or resource name could not be resolved."""


class AspenEvaluationError(AspenError):
    """An ASPEN expression or model could not be evaluated to a numeric value."""


class HardwareError(ReproError):
    """A hardware-graph or device-property operation failed."""


class EmbeddingError(ReproError):
    """A minor-embedding algorithm failed to produce an embedding."""


class InvalidEmbeddingError(EmbeddingError, ValidationError):
    """A candidate embedding violates the minor-embedding definition.

    Raised by :func:`repro.embedding.verify_embedding` when a chain is empty,
    disconnected, overlapping another chain, uses a node absent from the
    hardware graph, or fails to cover a logical edge.
    """


class SamplerError(ReproError):
    """A sampler was invoked with invalid arguments or reached an invalid state."""


class ShardError(ReproError):
    """A study shard exhausted its retry budget.

    Attributes
    ----------
    shard_index:
        Logical index of the failing shard in the study's shard grid.
    attempts:
        Human-readable history, one entry per failed attempt (including
        worker deaths charged to the shard), oldest first.
    """

    def __init__(self, shard_index: int, attempts: list[str] | tuple[str, ...]):
        self.shard_index = int(shard_index)
        self.attempts = list(attempts)
        last = self.attempts[-1] if self.attempts else "unknown error"
        super().__init__(
            f"shard {self.shard_index} failed after {len(self.attempts)} attempt(s); "
            f"last: {last}"
        )


class SimulationError(ReproError):
    """The discrete-event simulation runtime reached an inconsistent state."""


class DistributedError(ReproError):
    """A distributed coordinator/worker operation failed."""


class PushRejected(DistributedError):
    """The coordinator refused a pushed shard payload.

    Attributes
    ----------
    reason:
        Machine-readable rejection cause (``"hash-mismatch"`` or
        ``"wrong-size"``).  The shard is requeued, never lost — a
        rejected push costs a recompute, not bytes.
    """

    def __init__(self, reason: str, message: str):
        self.reason = reason
        super().__init__(message)
