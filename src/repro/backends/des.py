"""The discrete-event runtime as a registered performance backend.

Drives the Fig.-2 layer sequence (:mod:`repro.runtime.layers`) for every
operating point: the closed-form stage durations are packaged into a
:class:`~repro.runtime.layers.RequestProfile`, one uncontended session is
simulated, and the per-stage *spans* are read back off the event trace.
The simulator accumulates stage durations as ``now + delay`` event
timestamps, so each recovered span is a difference of two running sums —
that timestamp round-off is the declared ``rtol=1e-9`` / ``atol=1e-10 s``
envelope against the closed forms (see the differential suite's tolerance
rationale).

The DES engine itself is deterministic for a single session; stochastic
runtime studies (arrival processes, contention) draw their randomness from
the study executor's spawn-keyed shard streams (``repro._rng``), never
from global state, which keeps sharded DES studies byte-reproducible.

This backend is the one that declares the *contention* axes
(``queue_policy`` / ``sessions`` / ``arrival_rate``): only the DES
runtime realizes queueing traffic.  Sweeping them does not change the
stage-total columns below — :meth:`evaluate` stays the uncontended
single-request profile — it switches on the executor's per-row
contention simulation (:mod:`repro.contention`), which fills the
``latency_p50_s`` / ``latency_p95_s`` / ``latency_p99_s`` /
``queue_wait_s`` / ``utilization`` columns for every DES row.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..runtime.layers import run_single_session
from .base import (
    DEFAULT_OPERATING_POINT,
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    register,
)
from .closed_form import model_for_config

__all__ = ["DesBackend"]


@register
class DesBackend(PerformanceBackend):
    """Stage timings recovered from simulated Fig.-2 request traces."""

    name = "des"
    capabilities = BackendCapabilities(
        supported_axes=frozenset(DEFAULT_OPERATING_POINT),
        rtol=1e-9,
        atol=1e-10,
        description=(
            "discrete-event Fig.-2 runtime; spans read from event timestamps; "
            "realizes the contended-traffic axes"
        ),
    )

    def evaluate(self, point: Mapping) -> BackendTimings:
        lps = int(point["lps"])
        accuracy = float(point["accuracy"])
        success = float(point["success"])
        model = model_for_config(point)
        profile = model.request_profile(lps, accuracy, success)
        _, trace = run_single_session(profile)
        spans = trace.total_by_operation()
        return BackendTimings(
            backend=self.name,
            lps=lps,
            accuracy=accuracy,
            success=success,
            stage1_s=(
                spans["generate_ising"]
                + spans["minor_embedding"]
                + spans["program_processor"]
            ),
            stage2_s=spans["anneal_and_readout"],
            stage3_s=spans["postprocess_sort"],
            repetitions=model.stage2.repetitions(accuracy, success),
        )
