"""The ASPEN-evaluated paper listings as a registered performance backend.

Wraps :class:`repro.core.aspen_backend.AspenStageModels`: every number
comes from evaluating the bundled Fig. 6-8 listings on the Fig. 5 machine
model through the ASPEN evaluator — an implementation of the performance
model that shares no code with the closed forms, which is what makes its
agreement with them (declared here as ``rtol=1e-12``, asserted by the
differential suite) evidence rather than tautology.

The listings hard-code the paper's machine (Fig. 5) and the online
embedding flow, so the capabilities descriptor restricts this backend to
the ``lps``/``accuracy``/``success`` axes; machine-constant axes must sit
at their defaults.  The batched sweep evaluates the LPS-independent
Stage 2 listing once per config, and Stages 1 and 3 through compiled
LPS closures (:mod:`repro.aspen.compiler`) — same floats as the
per-point loop, computed array-at-a-time.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..core.aspen_backend import AspenStageModels
from ..core.repetition import required_repetitions
from .base import (
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    SweepColumns,
    register,
)

__all__ = ["AspenBackend"]


@register
class AspenBackend(PerformanceBackend):
    """Stage models evaluated from the paper's ASPEN artifacts."""

    name = "aspen"
    capabilities = BackendCapabilities(
        supported_axes=frozenset({"lps", "accuracy", "success"}),
        rtol=1e-12,
        atol=0.0,
        description=(
            "ASPEN evaluator on the bundled Fig. 6-8 listings "
            "(paper machine only; online embedding)"
        ),
    )

    def __init__(self) -> None:
        self._models = AspenStageModels()

    def _stage_seconds(
        self, lps: int, accuracy: float, success: float
    ) -> tuple[float, float, float]:
        return (
            self._models.stage1_seconds(lps),
            self._models.stage2_seconds(accuracy * 100.0, success),
            self._models.stage3_seconds(lps, accuracy=accuracy, success=success),
        )

    def evaluate(self, point: Mapping) -> BackendTimings:
        self.capabilities.check_point(point)
        lps = int(point["lps"])
        accuracy = float(point["accuracy"])
        success = float(point["success"])
        s1, s2, s3 = self._stage_seconds(lps, accuracy, success)
        return BackendTimings(
            backend=self.name,
            lps=lps,
            accuracy=accuracy,
            success=success,
            stage1_s=s1,
            stage2_s=s2,
            stage3_s=s3,
            # The listings consume the ensemble size through the same Eq.-6
            # planner the closed forms use; surface it for the table column.
            repetitions=required_repetitions(accuracy, success),
        )

    def sweep(self, config: Mapping, lps_values: Iterable[int]) -> SweepColumns:
        self.capabilities.check_point(config)
        accuracy = float(config["accuracy"])
        success = float(config["success"])
        # Stage 2 is independent of LPS: evaluate its listing once for the
        # whole run (same float as every per-point evaluation would produce).
        stage2 = self._models.stage2_seconds(accuracy * 100.0, success)
        reps = required_repetitions(accuracy, success)
        lps_run = np.array([int(n) for n in lps_values], dtype=np.int64)
        n = lps_run.shape[0]
        # Stages 1 and 3 go through the compiled LPS closures (tree-walking
        # fallback inside).  The column math below mirrors the derived
        # properties of BackendTimings / SweepColumns.from_timings exactly:
        # same operations, same association, same tie-breaking — so this
        # path is bit-identical to the per-point evaluate loop.
        s1 = self._models.stage1_seconds_array(lps_run)
        s2 = np.full(n, stage2, dtype=np.float64)
        s3 = self._models.stage3_seconds_array(
            lps_run, accuracy=accuracy, success=success
        )
        total = s1 + s2 + s3
        quantum_fraction = np.divide(
            s2, total, out=np.zeros_like(total), where=total > 0
        )
        # dict-max tie-breaking favors the earlier stage: stage3 must be
        # strictly ahead of both, stage2 strictly ahead of stage1.
        dominant = np.where(
            s3 > np.maximum(s1, s2),
            "stage3",
            np.where(s2 > s1, "stage2", "stage1"),
        ).astype("U6")
        return SweepColumns(
            stage1_s=s1,
            stage2_s=s2,
            stage3_s=s3,
            total_s=total,
            quantum_fraction=quantum_fraction,
            dominant_stage=dominant,
            repetitions=np.full(n, reps, dtype=np.int64),
        )
