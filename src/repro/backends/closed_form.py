"""The closed-form pipeline as a registered performance backend.

Wraps :class:`repro.core.pipeline.SplitExecutionModel` — the reference
implementation every other backend's tolerance is declared against.  The
batched entry point keeps the zero-copy ``sweep_arrays`` fast path: stage
columns are the struct-of-arrays results themselves, no per-point Python
objects, and (by the ``sweep_arrays`` guarantee, audited in
``tests/test_pipeline_sweep_arrays.py``) bit-identical to the scalar
``time_to_solution`` loop.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from ..core.pipeline import SplitExecutionModel, StageTimings
from .base import (
    CONTENTION_AXES,
    DEFAULT_OPERATING_POINT,
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    SweepColumns,
    register,
)

__all__ = ["ClosedFormBackend", "model_for_config"]

#: Every *model* axis routes through ``SplitExecutionModel.with_overrides``;
#: the contention axes describe simulated traffic the closed forms have no
#: realization of, so they stay pinned at their defaults for this backend.
_ALL_AXES = frozenset(DEFAULT_OPERATING_POINT) - CONTENTION_AXES


def model_for_config(config: Mapping) -> SplitExecutionModel:
    """The closed-form model realizing one config's operating constants.

    The single knob-turning path shared by the ``closed_form`` and ``des``
    backends (the DES runtime consumes closed-form stage durations as its
    event-delay profile), so every "what if the machine were different"
    question builds models the same way.  Absent keys fall back to the
    paper's defaults.
    """

    def value(axis: str):
        return config.get(axis, DEFAULT_OPERATING_POINT[axis])

    return SplitExecutionModel().with_overrides(
        embedding_mode=value("embedding_mode"),
        anneal_us=value("anneal_us"),
        clock_hz=value("clock_hz"),
        memory_bandwidth_bytes_per_s=value("memory_bandwidth_bytes_per_s"),
        pcie_bandwidth_bytes_per_s=value("pcie_bandwidth_bytes_per_s"),
    )


def _timings(name: str, point: Mapping, t: StageTimings) -> BackendTimings:
    return BackendTimings(
        backend=name,
        lps=int(point["lps"]),
        accuracy=float(point["accuracy"]),
        success=float(point["success"]),
        stage1_s=t.stage1_seconds,
        stage2_s=t.stage2_seconds,
        stage3_s=t.stage3_seconds,
        repetitions=t.stage2.repetitions,
    )


@register
class ClosedFormBackend(PerformanceBackend):
    """Closed-form Stage 1-3 models composed by ``SplitExecutionModel``."""

    name = "closed_form"
    capabilities = BackendCapabilities(
        supported_axes=_ALL_AXES,
        rtol=0.0,
        atol=0.0,
        description="closed-form stage models (Figs. 6-8); the reference backend",
    )

    def evaluate(self, point: Mapping) -> BackendTimings:
        model = model_for_config(point)
        t = model.time_to_solution(
            int(point["lps"]), float(point["accuracy"]), float(point["success"])
        )
        return _timings(self.name, point, t)

    def sweep(self, config: Mapping, lps_values: Iterable[int]) -> SweepColumns:
        model = model_for_config(config)
        sweep = model.sweep_arrays(
            np.asarray(list(lps_values), dtype=np.int64),
            accuracy=float(config["accuracy"]),
            success=float(config["success"]),
        )
        reps = np.full(len(sweep), sweep.stage2.repetitions, dtype=np.int64)
        return SweepColumns(
            stage1_s=sweep.stage1.total,
            stage2_s=np.broadcast_to(
                np.float64(sweep.stage2.total), (len(sweep),)
            ).copy(),
            stage3_s=sweep.stage3.total,
            total_s=sweep.total_seconds,
            quantum_fraction=sweep.quantum_fraction,
            dominant_stage=sweep.dominant_stage(),
            repetitions=reps,
        )
