"""The ``PerformanceBackend`` protocol and its string-keyed registry.

The paper's trust argument rests on three *independent* realizations of the
same split-execution performance model: the closed forms (Figs. 6-8), the
ASPEN-evaluated listings, and the discrete-event runtime.  This module
gives them one calling convention so the study engine, the CLI, and the
differential test suite can treat "which model implementation" as data:

* :class:`PerformanceBackend` — the protocol: a scalar
  :meth:`~PerformanceBackend.evaluate` producing a
  :class:`BackendTimings`, a batched :meth:`~PerformanceBackend.sweep`
  producing :class:`SweepColumns` for one contiguous LPS run, and a
  :class:`BackendCapabilities` descriptor declaring which study axes the
  backend honors and how closely it is expected to track the closed-form
  reference;
* the registry — :func:`register` / :func:`get` /
  :func:`available_backends` / :func:`capabilities`, keyed on short string
  names (``"closed_form"``, ``"aspen"``, ``"des"``), so new backends plug
  in entry-point style without touching the executor.

**The sweep == evaluate-loop contract.**  For every backend,
``sweep(config, lps_values)`` must be *bit-identical* to evaluating each
point through :meth:`~PerformanceBackend.evaluate` — batching is a fast
path, never a different answer.  The default :meth:`PerformanceBackend.sweep`
implements exactly that loop; backends override it only to share
per-config work (the closed forms route through the zero-copy
``sweep_arrays``, ASPEN evaluates the LPS-independent Stage 2 listing
once per config).  The study executor's scalar/vectorized determinism
audit leans on this contract.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..core.machine_params import XEON_E5_2680
from ..exceptions import ValidationError
from ..hardware.timing import DW2_TIMING

__all__ = [
    "CONTENTION_AXES",
    "DEFAULT_BACKEND",
    "DEFAULT_OPERATING_POINT",
    "BackendCapabilities",
    "BackendTimings",
    "PerformanceBackend",
    "SweepColumns",
    "available_backends",
    "capabilities",
    "full_point",
    "get",
    "register",
    "unregister",
]

#: The backend a spec collapses to when no ``backend`` axis is given.
DEFAULT_BACKEND = "closed_form"

#: The paper's single default operating point: one value per non-``backend``
#: study axis.  ``repro.studies.spec`` derives its axis defaults from this
#: mapping, and capability checks compare unsupported axes against it.
DEFAULT_OPERATING_POINT: dict[str, object] = {
    "queue_policy": "fifo",
    "sessions": 1,
    "arrival_rate": 0.0,
    "embedding_mode": "online",
    "clock_hz": XEON_E5_2680.clock_hz,
    "memory_bandwidth_bytes_per_s": XEON_E5_2680.memory_bandwidth_bytes_per_s,
    "pcie_bandwidth_bytes_per_s": XEON_E5_2680.pcie_bandwidth_bytes_per_s,
    "anneal_us": DW2_TIMING.anneal_us,
    "success": 0.7,
    "accuracy": 0.99,
    "lps": 50,
}

#: The contended-workload axes: the traffic pattern and queue discipline a
#: row's contention columns are simulated under (:mod:`repro.contention`).
#: Only backends whose model realizes contention — the DES runtime —
#: declare them in ``supported_axes``; analytic backends subtract this set
#: so the spec layer pins the axes at the defaults above (the defaults
#: must mirror ``repro.contention``'s ``DEFAULT_QUEUE_POLICY``; literals
#: here to keep this module import-cycle free).
CONTENTION_AXES = frozenset({"queue_policy", "sessions", "arrival_rate"})

#: Backend names are slugs: they live in spec JSON, artifact columns (a
#: fixed-width ``U24`` field), and CLI flags.
_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*$")
MAX_BACKEND_NAME_LENGTH = 24


def full_point(**overrides) -> dict:
    """A complete operating-point dict: the defaults plus ``overrides``."""
    unknown = set(overrides) - set(DEFAULT_OPERATING_POINT)
    if unknown:
        raise ValidationError(
            f"unknown operating-point parameters {sorted(unknown)}; "
            f"valid: {sorted(DEFAULT_OPERATING_POINT)}"
        )
    return {**DEFAULT_OPERATING_POINT, **overrides}


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend supports, and how closely it tracks the reference.

    Parameters
    ----------
    supported_axes:
        The study axes whose values the backend honors.  Axes outside this
        set must sit at the paper's default operating point
        (:data:`DEFAULT_OPERATING_POINT`); the spec layer and
        :meth:`check_point` both enforce it.
    rtol, atol:
        The documented agreement envelope against the ``closed_form``
        reference, per stage column: ``|x - ref| <= atol + rtol * |ref|``.
        These are the tolerances the differential suite asserts and the
        study reports display.
    description:
        One line for reports and ``--help`` text.
    """

    supported_axes: frozenset[str]
    rtol: float
    atol: float
    description: str

    def check_point(self, point: Mapping) -> None:
        """Reject ``point`` if an unsupported axis strays from its default."""
        for axis, default in DEFAULT_OPERATING_POINT.items():
            if axis in self.supported_axes:
                continue
            value = point.get(axis, default)
            if value != default:
                raise ValidationError(
                    f"axis {axis!r} is not supported by this backend "
                    f"(got {value!r}, supported only at its default {default!r})"
                )


@dataclass(frozen=True)
class BackendTimings:
    """Stage-total prediction of one backend at one operating point.

    The backend-neutral counterpart of the closed forms' rich
    :class:`repro.core.StageTimings`: only the per-stage totals survive,
    because that is the largest surface all three model realizations share.
    Derived quantities reproduce the closed-form path's exact floating-point
    operation sequence (left-associated total, earlier-stage tie-breaking)
    so a closed-form :class:`BackendTimings` is bit-identical to the
    ``StageTimings`` it was built from.
    """

    backend: str
    lps: int
    accuracy: float
    success: float
    stage1_s: float
    stage2_s: float
    stage3_s: float
    repetitions: int

    @property
    def total_seconds(self) -> float:
        return self.stage1_s + self.stage2_s + self.stage3_s

    @property
    def dominant_stage(self) -> str:
        times = {
            "stage1": self.stage1_s,
            "stage2": self.stage2_s,
            "stage3": self.stage3_s,
        }
        return max(times, key=times.get)  # type: ignore[arg-type]

    @property
    def quantum_fraction(self) -> float:
        total = self.total_seconds
        return self.stage2_s / total if total > 0 else 0.0


@dataclass(frozen=True)
class SweepColumns:
    """Struct-of-arrays backend output for one contiguous LPS run.

    Exactly the model columns of a study results table, aligned with the
    run's ``lps`` values — what :meth:`PerformanceBackend.sweep` returns
    and the study executor copies into its shard slice.
    """

    stage1_s: np.ndarray
    stage2_s: np.ndarray
    stage3_s: np.ndarray
    total_s: np.ndarray
    quantum_fraction: np.ndarray
    dominant_stage: np.ndarray
    repetitions: np.ndarray

    @classmethod
    def from_timings(cls, timings: Sequence[BackendTimings]) -> "SweepColumns":
        """Columns assembled from per-point scalar evaluations."""
        return cls(
            stage1_s=np.array([t.stage1_s for t in timings], dtype=np.float64),
            stage2_s=np.array([t.stage2_s for t in timings], dtype=np.float64),
            stage3_s=np.array([t.stage3_s for t in timings], dtype=np.float64),
            total_s=np.array([t.total_seconds for t in timings], dtype=np.float64),
            quantum_fraction=np.array(
                [t.quantum_fraction for t in timings], dtype=np.float64
            ),
            dominant_stage=np.array([t.dominant_stage for t in timings], dtype="U6"),
            repetitions=np.array([t.repetitions for t in timings], dtype=np.int64),
        )

    def __len__(self) -> int:
        return int(self.stage1_s.shape[0])


class PerformanceBackend(ABC):
    """One realization of the split-execution performance model.

    Subclasses declare two class attributes — ``name`` (the registry key)
    and ``capabilities`` — and implement :meth:`evaluate`.  The batched
    :meth:`sweep` defaults to the evaluate loop; overrides must preserve
    bit-identity with it (the module docstring's contract).
    """

    name: str
    capabilities: BackendCapabilities

    @abstractmethod
    def evaluate(self, point: Mapping) -> BackendTimings:
        """Stage-total prediction at one full operating point.

        ``point`` carries every non-``backend`` axis (see
        :func:`full_point`); backends must reject points that move an
        unsupported axis off its default (``capabilities.check_point``).
        """

    def sweep(self, config: Mapping, lps_values: Iterable[int]) -> SweepColumns:
        """Batched predictions for one config's contiguous LPS run.

        ``config`` fixes every non-``lps`` axis.  The default
        implementation is the literal evaluate loop — the reference any
        override must match bit for bit.
        """
        return SweepColumns.from_timings(
            [self.evaluate({**config, "lps": int(n)}) for n in lps_values]
        )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_REGISTRY: dict[str, type[PerformanceBackend]] = {}
_INSTANCES: dict[str, PerformanceBackend] = {}


def register(cls: type[PerformanceBackend] | None = None, *, replace: bool = False):
    """Register a :class:`PerformanceBackend` subclass under its ``name``.

    Usable as a plain decorator (``@register``) or with arguments
    (``@register(replace=True)``).  Registration is entry-point style:
    importing a module that registers a backend makes it reachable through
    :func:`get` and usable as a ``backend`` axis value in scenario specs.
    Collisions are an error unless ``replace=True`` — silently shadowing a
    backend would change what existing specs mean.

    Note that worker processes of the sharded study executor resolve
    backends from *their own* registry: custom backends must be registered
    at import time of their defining module (as the built-ins are), not
    conditionally at run time, to be visible under ``workers > 1`` spawn
    start methods.
    """

    def _register(cls: type[PerformanceBackend]) -> type[PerformanceBackend]:
        name = getattr(cls, "name", None)
        if not isinstance(name, str) or not name:
            raise ValidationError(
                f"backend class {cls.__name__} must declare a non-empty string `name`"
            )
        if not _NAME_PATTERN.match(name) or len(name) > MAX_BACKEND_NAME_LENGTH:
            raise ValidationError(
                f"backend name {name!r} must match {_NAME_PATTERN.pattern} and be "
                f"at most {MAX_BACKEND_NAME_LENGTH} characters (it is stored in "
                f"fixed-width artifact columns)"
            )
        if not isinstance(getattr(cls, "capabilities", None), BackendCapabilities):
            raise ValidationError(
                f"backend {name!r} must declare a BackendCapabilities descriptor"
            )
        if name in _REGISTRY and not replace:
            raise ValidationError(
                f"backend name {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__}); pass replace=True to override"
            )
        _REGISTRY[name] = cls
        _INSTANCES.pop(name, None)
        return cls

    if cls is None:
        return _register
    return _register(cls)


def unregister(name: str) -> None:
    """Remove a registered backend (primarily for tests tearing down fakes)."""
    if name not in _REGISTRY:
        raise ValidationError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    del _REGISTRY[name]
    _INSTANCES.pop(name, None)


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def capabilities(name: str) -> BackendCapabilities:
    """The declared capabilities of backend ``name`` (no instantiation)."""
    return _lookup(name).capabilities


def get(name: str) -> PerformanceBackend:
    """The shared instance of backend ``name`` (constructed once, cached)."""
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _INSTANCES[name] = _lookup(name)()
    return instance


def _lookup(name: str) -> type[PerformanceBackend]:
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        )
    return cls
