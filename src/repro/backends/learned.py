"""A learning-augmented realization of the performance model.

Following the learning-augmented analytic-modeling approach (PAPERS.md:
"Learning-Augmented Performance Model for Tensor Product Factorization in
High-Order FEM"), this backend keeps the closed forms' *structure* but
fits one multiplicative constant per stage to measured sweep columns: a
frozen training table of ``(lps, accuracy, success, stage1_s, stage2_s,
stage3_s)`` rows (a recorded measurement sweep, committed as data for
reproducibility) is fitted by least squares in log space —

    ``alpha_i = exp(mean(log(measured_i / predicted_i)))``

— and predictions are ``alpha_i * closed_form_i``.  Because the training
rows cover only part of the operating space and the stage constants absorb
systematic bias, not shape error, the backend declares a *wider* envelope
(``rtol=4.0``) than the calibrated backend: the fit is expected to track
the reference well inside the training region but is trusted less when
extrapolating.  The registry-parametrized differential suite enrolls it
automatically and asserts agreement inside the declared envelope.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

import numpy as np

from ..core.pipeline import SplitExecutionModel
from ..core.repetition import required_repetitions
from ..exceptions import ValidationError
from .base import (
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    SweepColumns,
    register,
)

__all__ = ["LearnedBackend", "TRAINING_SWEEP_ROWS", "fit_stage_constants"]

#: Frozen measured sweep: ``(lps, accuracy, success, stage1_s, stage2_s,
#: stage3_s)`` rows from one recorded measurement run over the Fig.-9
#: operating region.  Committed as data so every process fits identical
#: constants (live measurement would break byte-identical study artifacts).
TRAINING_SWEEP_ROWS: tuple[tuple[int, float, float, float, float, float], ...] = (
    (10, 0.99, 0.7, 0.6439796462615196, 0.0004906637539783821, 6.2984900440540995e-09),
    (10, 0.9, 0.61, 0.5973789766451404, 0.00045167776922582295, 5.195641890549247e-09),
    (20, 0.99, 0.7, 3.1786742906515184, 0.0005008300424249726, 9.227268958079345e-09),
    (20, 0.9, 0.61, 3.1709806923461668, 0.0004693098352489219, 6.921916654920654e-09),
    (40, 0.99, 0.7, 26.261850537100504, 0.000543534447708027, 1.5806731522037603e-08),
    (40, 0.9, 0.61, 24.185511135256082, 0.0004893431389820116, 1.3266618582055124e-08),
    (60, 0.99, 0.7, 88.7128125894943, 0.000499280991502884, 3.043783768717567e-08),
    (60, 0.9, 0.61, 90.37101304531437, 0.0004415295095845113, 2.00489798612776e-08),
    (80, 0.99, 0.7, 193.59385476168035, 0.0004634694745079686, 4.003179768347416e-08),
    (80, 0.9, 0.61, 210.0221001507147, 0.00047386573163221826, 2.517947806440742e-08),
    (100, 0.99, 0.7, 390.70728379312, 0.00042812767214027187, 4.62847776534507e-08),
    (100, 0.9, 0.61, 378.98845849002186, 0.0004657142020205341, 2.795515128240403e-08),
)


def fit_stage_constants(
    rows: Iterable[tuple[int, float, float, float, float, float]],
    model: SplitExecutionModel | None = None,
) -> tuple[float, float, float]:
    """Log-space least-squares fit of one constant per stage.

    Each training row contributes ``log(measured_i / predicted_i)`` to the
    stage-``i`` fit; the minimizer of the mean squared log ratio is the
    geometric mean.  Non-finite or non-positive measured columns are a data
    error and raise :class:`ValidationError` — the same non-finite hygiene
    :func:`repro.core.calibration.calibrate_embed_rate` enforces.
    """
    model = model or SplitExecutionModel()
    logs: tuple[list[float], list[float], list[float]] = ([], [], [])
    for lps, accuracy, success, *measured in rows:
        if len(measured) != 3:
            raise ValidationError(
                f"training rows need 3 measured stage columns, got {len(measured)}"
            )
        t = model.time_to_solution(int(lps), float(accuracy), float(success))
        predicted = (t.stage1_seconds, t.stage2_seconds, t.stage3_seconds)
        for i, (meas, pred) in enumerate(zip(measured, predicted)):
            if not (math.isfinite(meas) and meas > 0):
                raise ValidationError(
                    f"measured stage{i + 1} column must be positive and finite, "
                    f"got {meas!r} at lps={lps}"
                )
            if pred <= 0:
                continue
            logs[i].append(math.log(meas / pred))
    alphas = []
    for i, series in enumerate(logs):
        if not series:
            raise ValidationError(
                f"no usable training rows for stage{i + 1}; cannot fit a constant"
            )
        alphas.append(float(np.exp(np.mean(series))))
    return (alphas[0], alphas[1], alphas[2])


@register
class LearnedBackend(PerformanceBackend):
    """Closed forms rescaled by per-stage constants fitted to measurements."""

    name = "learned"
    capabilities = BackendCapabilities(
        supported_axes=frozenset({"lps", "accuracy", "success"}),
        # Wider than the calibrated backend: the per-stage constants are
        # trusted inside the training region, less so extrapolating.
        rtol=4.0,
        atol=0.0,
        description=(
            "closed forms with per-stage constants least-squares fitted to a "
            "recorded measurement sweep (learning-augmented model)"
        ),
    )

    def __init__(self) -> None:
        self._model = SplitExecutionModel()
        self._alphas = fit_stage_constants(TRAINING_SWEEP_ROWS, self._model)

    @property
    def stage_constants(self) -> tuple[float, float, float]:
        """The fitted ``(alpha1, alpha2, alpha3)`` stage multipliers."""
        return self._alphas

    def evaluate(self, point: Mapping) -> BackendTimings:
        self.capabilities.check_point(point)
        lps = int(point["lps"])
        accuracy = float(point["accuracy"])
        success = float(point["success"])
        t = self._model.time_to_solution(lps, accuracy, success)
        a1, a2, a3 = self._alphas
        return BackendTimings(
            backend=self.name,
            lps=lps,
            accuracy=accuracy,
            success=success,
            stage1_s=a1 * t.stage1_seconds,
            stage2_s=a2 * t.stage2_seconds,
            stage3_s=a3 * t.stage3_seconds,
            repetitions=required_repetitions(accuracy, success),
        )

    def sweep(self, config: Mapping, lps_values: Iterable[int]) -> SweepColumns:
        self.capabilities.check_point(config)
        accuracy = float(config["accuracy"])
        success = float(config["success"])
        a1, a2, a3 = self._alphas
        sweep = self._model.sweep_arrays(
            np.asarray(list(lps_values), dtype=np.int64),
            accuracy=accuracy,
            success=success,
        )
        n = len(sweep)
        # Elementwise alpha * column is IEEE-identical to the scalar path's
        # alpha * stage_seconds (sweep_arrays is bit-identical to the scalar
        # loop); the derived columns below mirror BackendTimings' operation
        # order exactly, preserving the sweep == evaluate-loop contract.
        s1 = a1 * sweep.stage1.total
        s2 = np.full(n, a2 * float(sweep.stage2.total), dtype=np.float64)
        s3 = a3 * sweep.stage3.total
        total = s1 + s2 + s3
        quantum_fraction = np.divide(
            s2, total, out=np.zeros_like(total), where=total > 0
        )
        dominant = np.where(
            s3 > np.maximum(s1, s2),
            "stage3",
            np.where(s2 > s1, "stage2", "stage1"),
        ).astype("U6")
        return SweepColumns(
            stage1_s=s1,
            stage2_s=s2,
            stage3_s=s3,
            total_s=total,
            quantum_fraction=quantum_fraction,
            dominant_stage=dominant,
            repetitions=np.full(n, required_repetitions(accuracy, success), dtype=np.int64),
        )
