"""A measurement-calibrated realization of the performance model.

Fig. 9(a) compares the Stage-1 prediction against *measured* CMR embedding
times, "within a factor of 4 … except in the region n < 10, which it
overestimates".  This backend closes that loop: a frozen reference table of
measured embedding wall-clock seconds (one recorded
:func:`repro.core.calibration.measure_cmr_timings` run, committed as data
so every process fits the identical model — live timing would break the
study engine's byte-identical-artifact invariant) is replayed through
:func:`repro.core.calibration.calibrate_embed_rate` at import time, and the
fitted ``embed_rate_scale`` becomes a Stage-1 constant of an otherwise
closed-form :class:`~repro.core.pipeline.SplitExecutionModel`.

Stages 2 and 3 are untouched, so only the Stage-1 embedding term moves —
by the fitted factor.  The declared envelope is the paper's factor-of-4
band: ``rtol=3.0`` makes ``|x - ref| <= 3 ref``, i.e. the multiplicative
range ``[ref / 4, 4 ref]`` for positive predictions, exactly the Fig.-9(a)
claim.  The registry-parametrized differential suite picks the backend up
automatically and asserts agreement inside this envelope.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import replace

import numpy as np

from ..core.calibration import calibrate_embed_rate
from ..core.pipeline import SplitExecutionModel
from ..core.stage1 import Stage1Model
from .base import (
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    SweepColumns,
    register,
)
from .closed_form import _timings

__all__ = ["CalibratedBackend", "REFERENCE_CMR_TIMINGS_S", "calibrated_stage1"]

#: Frozen measured CMR embedding times (seconds) for ``K_n`` into the DW2X
#: working graph — one recorded ``measure_cmr_timings`` run, committed so
#: the fit is reproducible bit for bit.  The model/measured ratios follow
#: the Fig.-9(a) shape: large overestimation below ``n = 10`` (excluded
#: from the fit, as the paper's comparison region suggests), within a
#: factor of 4 above it.
REFERENCE_CMR_TIMINGS_S: dict[int, float] = {
    4: 0.0009796899479148139,
    6: 0.0061230621744675865,
    8: 0.03428914817701848,
    10: 0.16208105755943614,
    12: 0.34639037444130927,
    16: 1.068752670452524,
    20: 2.449224869787035,
    24: 5.069895480459162,
    32: 14.397813753059188,
    48: 57.65688319554313,
    64: 150.4803759997154,
}


def calibrated_stage1() -> Stage1Model:
    """The Stage-1 model with ``embed_rate_scale`` fitted to the table."""
    return calibrate_embed_rate(REFERENCE_CMR_TIMINGS_S, Stage1Model(), min_size=10)


@register
class CalibratedBackend(PerformanceBackend):
    """Closed forms with the embedding rate fitted to measured CMR timings."""

    name = "calibrated"
    capabilities = BackendCapabilities(
        supported_axes=frozenset({"lps", "accuracy", "success", "embedding_mode"}),
        # Fig. 9(a)'s factor-of-4 envelope: |x - ref| <= 3 ref  <=>
        # x in [ref / 4, 4 ref] for positive predictions.
        rtol=3.0,
        atol=0.0,
        description=(
            "closed forms with embed_rate_scale fitted to recorded CMR "
            "measurements (Fig. 9(a) factor-of-4 envelope)"
        ),
    )

    def __init__(self) -> None:
        self._base = SplitExecutionModel(stage1=calibrated_stage1())

    @property
    def embed_rate_scale(self) -> float:
        """The replayed fit's Stage-1 constant."""
        return self._base.stage1.embed_rate_scale

    def _model_for_config(self, config: Mapping) -> SplitExecutionModel:
        mode = config.get("embedding_mode", "online")
        if mode == self._base.embedding_mode:
            return self._base
        return replace(self._base, embedding_mode=mode)

    def evaluate(self, point: Mapping) -> BackendTimings:
        self.capabilities.check_point(point)
        model = self._model_for_config(point)
        t = model.time_to_solution(
            int(point["lps"]), float(point["accuracy"]), float(point["success"])
        )
        return _timings(self.name, point, t)

    def sweep(self, config: Mapping, lps_values: Iterable[int]) -> SweepColumns:
        self.capabilities.check_point(config)
        model = self._model_for_config(config)
        sweep = model.sweep_arrays(
            np.asarray(list(lps_values), dtype=np.int64),
            accuracy=float(config["accuracy"]),
            success=float(config["success"]),
        )
        reps = np.full(len(sweep), sweep.stage2.repetitions, dtype=np.int64)
        return SweepColumns(
            stage1_s=sweep.stage1.total,
            stage2_s=np.broadcast_to(
                np.float64(sweep.stage2.total), (len(sweep),)
            ).copy(),
            stage3_s=sweep.stage3.total,
            total_s=sweep.total_seconds,
            quantum_fraction=sweep.quantum_fraction,
            dominant_stage=sweep.dominant_stage(),
            repetitions=reps,
        )
