"""Unified performance backends: one protocol over three model realizations.

The repo carries multiple independent implementations of the paper's
split-execution performance model — the closed forms, the ASPEN-evaluated
listings, the discrete-event runtime, plus two measurement-informed
variants (a calibration replay and a learning-augmented fit).  This
package puts them behind one
:class:`~repro.backends.base.PerformanceBackend` protocol and a
string-keyed registry::

    from repro import backends

    backends.available_backends()
    # ('aspen', 'calibrated', 'closed_form', 'des', 'learned')
    t = backends.get("aspen").evaluate(backends.full_point(lps=30))
    cols = backends.get("des").sweep(backends.full_point(), [1, 10, 100])

The scenario-study engine sweeps the registry through the spec's
``backend`` axis, the CLI threads ``--backend`` through ``predict`` /
``fig9`` / ``study``, and the differential suite parametrizes over the
registry so each backend is held to its declared tolerance against the
``closed_form`` reference.  New backends register entry-point style (a
:func:`~repro.backends.base.register`-decorated class at import time).
"""

from .aspen import AspenBackend
from .base import (
    CONTENTION_AXES,
    DEFAULT_BACKEND,
    DEFAULT_OPERATING_POINT,
    BackendCapabilities,
    BackendTimings,
    PerformanceBackend,
    SweepColumns,
    available_backends,
    capabilities,
    full_point,
    get,
    register,
    unregister,
)
from .calibrated import CalibratedBackend
from .closed_form import ClosedFormBackend, model_for_config
from .des import DesBackend
from .learned import LearnedBackend

__all__ = [
    "CONTENTION_AXES",
    "DEFAULT_BACKEND",
    "DEFAULT_OPERATING_POINT",
    "BackendCapabilities",
    "BackendTimings",
    "PerformanceBackend",
    "SweepColumns",
    "available_backends",
    "capabilities",
    "full_point",
    "get",
    "register",
    "unregister",
    "model_for_config",
    "ClosedFormBackend",
    "AspenBackend",
    "DesBackend",
    "CalibratedBackend",
    "LearnedBackend",
]
