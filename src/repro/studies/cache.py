"""Content-addressed shard store for study artifacts.

Study results are a pure function of the spec's effective grid and the
shard grid — no wall clocks, no hostnames, byte-identical across worker
counts (the executor's determinism contract).  That makes them perfect
cache material: a dashboard re-running yesterday's study, a CI trend line
re-evaluating the same grid per commit, or a re-labelled copy of an
existing study should reuse bytes, not burn CPU recomputing them.

**Keying rule.**  A shard's content address is::

    sha256(canonical_json({
        "kind": "study-shard",
        "code_version": repro.__version__,
        "schema_version": <results.ARTIFACT_SCHEMA_VERSION>,
        "columns": <results.RESULT_COLUMNS>,
        "grid": spec.cache_identity(),   # effective axes + mc_trials + seed
        "shard_size": shard_size,
        "shard_index": shard_index,
    }))

Consequences, each load-bearing:

* the package version is inside the key, so a persistent cache directory
  shared across commits (dashboards, CI trend lines) can never serve
  numbers computed by *older model code* — a release that changes any
  model numerics must bump ``repro.__version__``, which retires every
  stale entry at once;

* the spec's display ``name`` is *not* hashed (``cache_identity``
  excludes it), so re-labelled studies over the same grid share shards;
* *effective* axis values are hashed, so an explicitly-spelled default
  (``"lps": [50]``) and an absent axis produce the same key;
* the column schema is inside the key, so changing the results dtype
  silently invalidates every old entry instead of mis-parsing it;
* ``shard_size`` is inside the key because it partitions the Monte-Carlo
  streams — the same grid at a different shard size is different bytes;
* the ``backend`` axis participates through the grid identity, so each
  backend's sub-grid caches independently of what else a spec sweeps.

Entries are raw structured-array bytes (``table.tobytes()``) written
atomically (temp file + ``os.replace``); a corrupt or short entry is
treated as a miss and rewritten.  The store is safe for concurrent
readers and last-writer-wins for concurrent writers of the *same* key —
both write identical bytes by construction.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

import numpy as np

from .. import __version__ as _CODE_VERSION
from .._json import canonical_dumps
from ..exceptions import ValidationError
from .results import ARTIFACT_SCHEMA_VERSION, RESULT_COLUMNS, table_dtype
from .spec import ScenarioSpec

__all__ = ["StudyCache", "study_key"]


def _identity_payload(spec: ScenarioSpec, shard_size: int) -> dict:
    """The shared content-identity fields every cache/job key hashes."""
    if shard_size < 1:
        raise ValidationError(f"shard_size must be >= 1, got {shard_size}")
    return {
        "code_version": _CODE_VERSION,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "columns": [list(column) for column in RESULT_COLUMNS],
        "grid": spec.cache_identity(),
        "shard_size": int(shard_size),
    }


def _digest(payload: dict) -> str:
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


def study_key(spec: ScenarioSpec, shard_size: int) -> str:
    """The content address (hex sha256) of one whole study artifact.

    Hashes exactly what determines the artifact bytes: the spec's full
    canonical payload (``to_dict`` — unlike shard keys, the display
    ``name`` and the explicit-axes spelling are *included*, because both
    appear verbatim in the artifact's ``spec`` field), the shard grid
    (``shard_size`` partitions the Monte-Carlo streams), the column
    schema, and the code version.  The study service derives its job ids
    from this key, so submitting the same payload twice is the same job by
    construction and a response cache can never serve stale or mislabeled
    bytes — while a re-labelled copy of a known grid becomes a *new* job
    whose shards are all served from this cache.
    """
    return _digest(
        {
            "kind": "study",
            **_identity_payload(spec, shard_size),
            "spec": spec.to_dict(),
        }
    )


class StudyCache:
    """A directory-backed content-addressed store of study shards.

    Parameters
    ----------
    root:
        Cache directory (created if absent).  Entries fan out into
        two-hex-character subdirectories to keep listings manageable.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    @staticmethod
    def shard_key(spec: ScenarioSpec, shard_size: int, shard_index: int) -> str:
        """The content address (hex sha256) of one shard of one grid."""
        payload = {
            "kind": "study-shard",
            **_identity_payload(spec, shard_size),
            "shard_index": int(shard_index),
        }
        return _digest(payload)

    def shard_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.shard"

    @staticmethod
    def _shard_rows(spec: ScenarioSpec, shard_size: int, shard_index: int) -> int:
        start = shard_index * shard_size
        stop = min(start + shard_size, spec.num_points)
        if not 0 <= start < spec.num_points:
            raise ValidationError(
                f"shard_index {shard_index} out of range for a "
                f"{spec.num_points}-point grid at shard_size {shard_size}"
            )
        return stop - start

    # ------------------------------------------------------------------ #
    # Load / store
    # ------------------------------------------------------------------ #
    def load_shard(
        self, spec: ScenarioSpec, shard_size: int, shard_index: int
    ) -> np.ndarray | None:
        """The cached rows of one shard, or ``None`` on a miss.

        A present-but-wrong-size entry (torn write, stale schema that
        slipped past the key — defense in depth) counts as a miss.
        """
        rows = self._shard_rows(spec, shard_size, shard_index)
        path = self.shard_path(self.shard_key(spec, shard_size, shard_index))
        dtype = table_dtype()
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        if len(data) != rows * dtype.itemsize:
            self.misses += 1
            return None
        self.hits += 1
        return np.frombuffer(data, dtype=dtype).copy()

    def store_shard(
        self,
        spec: ScenarioSpec,
        shard_size: int,
        shard_index: int,
        table: np.ndarray,
    ) -> Path:
        """Write one computed shard under its content address (atomic)."""
        rows = self._shard_rows(spec, shard_size, shard_index)
        if table.dtype != table_dtype() or table.shape != (rows,):
            raise ValidationError(
                f"shard table has dtype {table.dtype} / shape {table.shape}; "
                f"expected {rows} rows of the results dtype"
            )
        path = self.shard_path(self.shard_key(spec, shard_size, shard_index))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(table.tobytes())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def stats(self) -> dict[str, int]:
        """Hit/miss counters accumulated over this cache object's lifetime."""
        return {"hits": self.hits, "misses": self.misses, "requests": self.requests}

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"StudyCache(root={str(self.root)!r}, hits={self.hits}, misses={self.misses})"
