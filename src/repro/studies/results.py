"""Columnar study results: structured table, JSON artifact, aggregations.

A :class:`StudyResults` holds one row per grid point of a
:class:`~repro.studies.spec.ScenarioSpec`, in the spec's stable
enumeration order, as a structured NumPy array.  The JSON artifact
(`save`/`load`) is deliberately free of volatile fields — no timestamps, no
hostnames — so the same spec executed anywhere with any worker count
produces *byte-identical* files; that property is the backbone of the
executor's determinism audit.

Aggregations reuse the core analysis helpers rather than reimplementing
them: log-log scaling exponents via :func:`repro.core.scaling.loglog_slope`,
sampled crossovers via :func:`repro.core.scaling.crossover_index`, and
elasticity maps via :func:`repro.core.sensitivity.elasticity_series`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from .._json import canonical_line
from ..backends.base import MAX_BACKEND_NAME_LENGTH
from ..contention.disciplines import MAX_QUEUE_POLICY_NAME_LENGTH
from ..distributed.scheduler import MAX_SCHEDULER_NAME_LENGTH
from ..core.scaling import crossover_index, loglog_slope
from ..core.sensitivity import elasticity_series
from ..exceptions import ValidationError
from .spec import AXIS_ORDER, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..faults import FaultStats

__all__ = ["StudyResults", "RESULT_COLUMNS", "ARTIFACT_SCHEMA_VERSION"]

#: Version 2 added the ``backend`` axis column (the registry-dispatched
#: performance-backend axis of the spec grid).  Version 3 added the
#: ``scheduler`` axis column plus the modeled shard-dispatch columns
#: ``sched_latency_s`` / ``sched_steals`` (see
#: :mod:`repro.distributed.scheduler`).  Version 4 added the contention
#: axes (``queue_policy`` / ``sessions`` / ``arrival_rate``) and the
#: simulated contended-workload columns ``latency_p50_s`` /
#: ``latency_p95_s`` / ``latency_p99_s`` / ``queue_wait_s`` /
#: ``utilization`` (see :mod:`repro.contention`), NaN for rows whose
#: backend has no contention realization.
ARTIFACT_SCHEMA_VERSION = 4

#: Column name -> structured dtype.  Axis columns first (canonical order),
#: then the model outputs.  ``mc_accuracy`` is NaN when the spec disabled
#: Monte-Carlo sampling.  The ``backend`` width is the registry's name
#: ceiling, so no registrable name can be truncated on table assignment;
#: likewise ``scheduler`` (MAX_SCHEDULER_NAME_LENGTH) and ``queue_policy``
#: (MAX_QUEUE_POLICY_NAME_LENGTH).  The ``sched_*`` columns are the
#: deterministic schedule simulation of the row's strategy over the
#: study's shard grid: every row of shard ``k`` gets that shard's modeled
#: completion time and whether dispatching it crossed the static
#: ownership partition.  The contention columns are the per-row contended
#: workload simulation (keyed on the row's global grid index), NaN for
#: backends without the contention axes.
RESULT_COLUMNS: tuple[tuple[str, str], ...] = (
    ("backend", f"U{MAX_BACKEND_NAME_LENGTH}"),
    ("scheduler", f"U{MAX_SCHEDULER_NAME_LENGTH}"),
    ("queue_policy", f"U{MAX_QUEUE_POLICY_NAME_LENGTH}"),
    ("sessions", "i8"),
    ("arrival_rate", "f8"),
    ("embedding_mode", "U7"),
    ("clock_hz", "f8"),
    ("memory_bandwidth_bytes_per_s", "f8"),
    ("pcie_bandwidth_bytes_per_s", "f8"),
    ("anneal_us", "f8"),
    ("success", "f8"),
    ("accuracy", "f8"),
    ("lps", "i8"),
    ("repetitions", "i8"),
    ("stage1_s", "f8"),
    ("stage2_s", "f8"),
    ("stage3_s", "f8"),
    ("total_s", "f8"),
    ("quantum_fraction", "f8"),
    ("dominant_stage", "U6"),
    ("mc_accuracy", "f8"),
    ("sched_latency_s", "f8"),
    ("sched_steals", "i8"),
    ("latency_p50_s", "f8"),
    ("latency_p95_s", "f8"),
    ("latency_p99_s", "f8"),
    ("queue_wait_s", "f8"),
    ("utilization", "f8"),
)

_STAGE_COLUMNS = ("stage1_s", "stage2_s", "stage3_s", "total_s")

#: The simulated contended-workload metric columns (NaN when absent).
_CONTENTION_METRIC_COLUMNS = (
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "queue_wait_s",
    "utilization",
)


def table_dtype() -> np.dtype:
    """The structured dtype of a study results table."""
    return np.dtype(list(RESULT_COLUMNS))


def empty_table(num_points: int) -> np.ndarray:
    """A zero-filled results table for ``num_points`` rows."""
    table = np.zeros(num_points, dtype=table_dtype())
    table["mc_accuracy"] = np.nan
    for name in _CONTENTION_METRIC_COLUMNS:
        table[name] = np.nan
    return table


@dataclass(frozen=True)
class StudyResults:
    """One evaluated study: the spec plus its per-point results table.

    ``fault_stats`` reports what the executor's resilience layer did
    (retries, worker-death recoveries, degraded paths — see
    :class:`repro.faults.FaultStats`).  It is execution telemetry, not a
    result: excluded from :meth:`to_dict`, the artifact bytes, and
    equality, so a run that survived transient faults serializes
    byte-identically to a clean run.  ``None`` on results loaded from an
    artifact (the artifact intentionally cannot say how it was computed).
    """

    spec: ScenarioSpec
    table: np.ndarray
    fault_stats: "FaultStats | None" = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.table.dtype != table_dtype():
            raise ValidationError("results table has the wrong structured dtype")
        if self.table.shape != (self.spec.num_points,):
            raise ValidationError(
                f"results table has {self.table.shape[0]} rows for a "
                f"{self.spec.num_points}-point spec"
            )
        self.table.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def num_points(self) -> int:
        return int(self.table.shape[0])

    def __len__(self) -> int:
        return self.num_points

    def column(self, name: str) -> np.ndarray:
        """One column across all points (read-only view)."""
        if name not in self.table.dtype.names:
            raise ValidationError(
                f"unknown column {name!r}; columns: {self.table.dtype.names}"
            )
        return self.table[name]

    def select(self, **fixed) -> np.ndarray:
        """Boolean mask of the rows matching every ``axis=value`` filter."""
        mask = np.ones(self.num_points, dtype=bool)
        for name, value in fixed.items():
            mask &= self.column(name) == value
        return mask

    def slice_along(self, axis: str, response: str = "total_s", **fixed) -> tuple[np.ndarray, np.ndarray]:
        """``(xs, ys)`` of ``response`` along ``axis`` with other axes fixed.

        ``fixed`` must pin every *other* scanned axis to one value so the
        slice is a function (one y per x); rows keep enumeration order,
        which is monotone in the axis values as given in the spec.
        """
        if axis not in AXIS_ORDER:
            raise ValidationError(f"unknown axis {axis!r}")
        unpinned = [
            n for n in self.spec.scanned_axes if n != axis and n not in fixed
        ]
        if unpinned:
            raise ValidationError(
                f"slice along {axis!r} needs the other scanned axes pinned; "
                f"missing {unpinned}"
            )
        mask = self.select(**fixed)
        xs = self.column(axis)[mask]
        ys = self.column(response)[mask]
        return xs, ys

    # ------------------------------------------------------------------ #
    # Aggregations (reusing the core analysis helpers)
    # ------------------------------------------------------------------ #
    def scaling_exponent(self, response: str = "total_s", axis: str = "lps", **fixed) -> float:
        """Empirical log-log exponent of ``response`` against ``axis``.

        Positive-sample filtering mirrors the Fig. 9 treatment (``lps = 0``
        rows cannot enter a log-log fit).
        """
        xs, ys = self.slice_along(axis, response, **fixed)
        keep = (np.asarray(xs, dtype=np.float64) > 0) & (ys > 0)
        if np.count_nonzero(keep) < 2:
            raise ValidationError(
                f"scaling exponent needs >= 2 positive samples along {axis!r}"
            )
        return loglog_slope(np.asarray(xs, dtype=np.float64)[keep], ys[keep])

    def elasticity_profile(self, response: str = "total_s", axis: str = "lps", **fixed) -> np.ndarray:
        """Pointwise elasticity of ``response`` along ``axis`` (one slice)."""
        xs, ys = self.slice_along(axis, response, **fixed)
        return elasticity_series(np.asarray(xs, dtype=np.float64), ys)

    def crossover_lps(self, above: str = "stage1_s", below: str = "stage2_s", **fixed) -> int | None:
        """Smallest scanned LPS at which ``above`` meets/exceeds ``below``.

        The sampled analogue of the paper's crossover discussion (e.g. where
        the Stage-1 translation overtakes quantum execution); ``None`` when
        no crossover occurs within the scanned sizes.
        """
        xs, f = self.slice_along("lps", above, **fixed)
        _, g = self.slice_along("lps", below, **fixed)
        idx = crossover_index(f, g)
        return int(xs[idx]) if idx is not None else None

    def dominance_counts(self, **fixed) -> dict[str, int]:
        """How many points each stage dominates (within an optional slice)."""
        mask = self.select(**fixed)
        stages, counts = np.unique(self.column("dominant_stage")[mask], return_counts=True)
        return {str(s): int(c) for s, c in zip(stages, counts)}

    # ------------------------------------------------------------------ #
    # Cross-backend comparison
    # ------------------------------------------------------------------ #
    def backend_rows(self, backend: str) -> slice:
        """The contiguous row block backend ``backend`` owns.

        ``backend`` is the outermost axis, so each swept backend's sub-grid
        is one block of ``num_points / num_backends`` rows in identical
        point order — which is what makes per-backend columns directly
        comparable row by row.
        """
        names = self.spec.backend_values
        if backend not in names:
            raise ValidationError(
                f"backend {backend!r} is not in this study's backend axis {names}"
            )
        block = self.num_points // len(names)
        index = names.index(backend)
        return slice(index * block, (index + 1) * block)

    def backend_deviation(
        self,
        reference: str = "closed_form",
        columns: tuple[str, ...] = _STAGE_COLUMNS,
    ) -> dict[str, dict[str, float]]:
        """Effective relative deviation of each swept backend vs ``reference``.

        For every non-reference backend and stage column, the maximum over
        rows of ``max(0, |x - ref| - atol) / |ref|`` with ``atol`` taken
        from the backend's declared capabilities — i.e. the relative
        deviation *after* the absolute floor, directly comparable to the
        declared ``rtol`` (``deviation <= rtol`` iff every row satisfies
        ``|x - ref| <= atol + rtol * |ref|``).  Rows where the reference is
        zero contribute 0 when within ``atol`` and ``inf`` otherwise.
        """
        from ..backends import capabilities as backend_capabilities

        names = self.spec.backend_values
        if reference not in names:
            raise ValidationError(
                f"reference backend {reference!r} is not swept by this study "
                f"(backend axis: {names})"
            )
        ref_rows = self.backend_rows(reference)
        out: dict[str, dict[str, float]] = {}
        for name in names:
            if name == reference:
                continue
            atol = backend_capabilities(name).atol
            rows = self.backend_rows(name)
            per_column: dict[str, float] = {}
            for column in columns:
                ref = np.abs(self.column(column)[ref_rows])
                diff = np.maximum(
                    np.abs(self.column(column)[rows] - self.column(column)[ref_rows])
                    - atol,
                    0.0,
                )
                with np.errstate(divide="ignore", invalid="ignore"):
                    rel = np.where(diff == 0.0, 0.0, diff / ref)
                per_column[column] = float(np.max(rel)) if rel.size else 0.0
            out[name] = per_column
        return out

    def backends_within_tolerance(self, reference: str = "closed_form") -> dict[str, bool]:
        """Whether each swept backend meets its declared envelope vs ``reference``."""
        from ..backends import capabilities as backend_capabilities

        return {
            name: max(per_column.values(), default=0.0)
            <= backend_capabilities(name).rtol
            for name, per_column in self.backend_deviation(reference).items()
        }

    def scheduler_comparison(self) -> dict[str, dict[str, float]]:
        """Per-strategy summary of the modeled dispatch columns.

        For every scheduler value in the grid: the modeled makespan (max
        shard completion time), the mean per-row latency, and the number
        of distinct stolen shards.  This is what a ``scheduler``-axis
        study exists to compare.
        """
        out: dict[str, dict[str, float]] = {}
        for name in self.spec.axis_values("scheduler"):
            mask = self.select(scheduler=name)
            latency = self.column("sched_latency_s")[mask]
            stolen = self.column("sched_steals")[mask].astype(bool)
            # Distinct shards, not rows: every row of a shard repeats its
            # latency, so unique completion times count stolen shards.
            steals = len(np.unique(latency[stolen])) if stolen.any() else 0
            out[name] = {
                "makespan_s": float(np.max(latency)) if latency.size else 0.0,
                "mean_latency_s": float(np.mean(latency)) if latency.size else 0.0,
                "stolen_shards": float(steals),
            }
        return out

    def contention_rows(self) -> np.ndarray:
        """Boolean mask of rows carrying simulated contention metrics.

        Rows evaluated by a backend without the contention axes hold NaN
        in every contention column; this mask selects the rest.
        """
        return ~np.isnan(self.column("utilization"))

    def contention_summary(self) -> dict[str, dict[str, float]]:
        """Per-queue-policy aggregation of the contended-workload columns.

        For every ``queue_policy`` value with contended rows: the row
        count, mean p50 latency, *worst* p99 latency, mean queue wait,
        and mean annealer utilization — what a ``queue_policy``-axis
        study exists to compare.  Empty when no row was simulated under
        contention.
        """
        contended = self.contention_rows()
        out: dict[str, dict[str, float]] = {}
        for name in self.spec.axis_values("queue_policy"):
            mask = contended & (self.column("queue_policy") == name)
            if not mask.any():
                continue
            out[name] = {
                "rows": float(np.count_nonzero(mask)),
                "latency_p50_s": float(np.mean(self.column("latency_p50_s")[mask])),
                "latency_p99_s": float(np.max(self.column("latency_p99_s")[mask])),
                "queue_wait_s": float(np.mean(self.column("queue_wait_s")[mask])),
                "utilization": float(np.mean(self.column("utilization")[mask])),
            }
        return out

    # ------------------------------------------------------------------ #
    # Artifact serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready artifact payload (no volatile fields; see module doc)."""
        columns: dict[str, list] = {}
        for name, code in RESULT_COLUMNS:
            values = self.table[name]
            if code.startswith("U"):
                columns[name] = [str(v) for v in values]
            elif code == "i8":
                columns[name] = [int(v) for v in values]
            else:
                columns[name] = [None if math.isnan(v) else float(v) for v in values]
        return {
            "schema_version": ARTIFACT_SCHEMA_VERSION,
            "kind": "scenario-study-results",
            "spec": self.spec.to_dict(),
            "num_points": self.num_points,
            "columns": columns,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StudyResults":
        if not isinstance(payload, dict):
            raise ValidationError("artifact payload must be an object")
        if payload.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
            raise ValidationError(
                f"unsupported artifact schema_version {payload.get('schema_version')!r}"
            )
        if payload.get("kind") != "scenario-study-results":
            raise ValidationError(f"unexpected artifact kind {payload.get('kind')!r}")
        spec = ScenarioSpec.from_dict(payload["spec"])
        columns = payload["columns"]
        missing = [n for n, _ in RESULT_COLUMNS if n not in columns]
        if missing:
            raise ValidationError(f"artifact is missing columns {missing}")
        table = empty_table(int(payload["num_points"]))
        for name, code in RESULT_COLUMNS:
            values = columns[name]
            if len(values) != table.shape[0]:
                raise ValidationError(
                    f"column {name!r} has {len(values)} entries for "
                    f"{table.shape[0]} points"
                )
            if code == "f8":
                table[name] = [np.nan if v is None else float(v) for v in values]
            else:
                table[name] = values
        return cls(spec=spec, table=table)

    def to_json(self) -> str:
        """Canonical artifact text: sorted keys, fixed separators, trailing newline."""
        return canonical_line(self.to_dict())

    def artifact_bytes(self) -> bytes:
        """The canonical artifact as UTF-8 bytes — exactly what :meth:`save`
        writes and what the study service puts on the wire, so HTTP-served
        and directly-saved artifacts compare byte for byte."""
        return self.to_json().encode("utf-8")

    def save(self, path: str | Path) -> Path:
        """Write the artifact; identical results always produce identical bytes."""
        path = Path(path)
        path.write_bytes(self.artifact_bytes())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "StudyResults":
        return cls.from_dict(json.loads(Path(path).read_text()))
