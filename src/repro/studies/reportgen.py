"""Study report generation: dominance, crossover, and scaling summaries.

Turns a :class:`~repro.studies.results.StudyResults` into the plain-text
tables the paper's Sec. 3.3 narrative is made of — which stage dominates
where, where the Stage-1 translation overtakes quantum execution, and the
empirical scaling exponents of each stage — rendered through the shared
:mod:`repro.core.report` formatters so study output matches the rest of
the toolkit.  All output is a pure function of the results artifact (no
wall clocks, no environment), so summaries are golden-testable.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..core.report import format_seconds, format_table
from ..exceptions import ValidationError
from .results import StudyResults

__all__ = [
    "backend_summary",
    "config_labels",
    "contention_summary",
    "dominance_summary",
    "scaling_summary",
    "study_summary",
]

#: Scanned axes that switch the contended-workload table into the report.
_CONTENTION_AXES = ("queue_policy", "sessions", "arrival_rate")

#: Scanned axes that label report rows (everything but the LPS scan itself).
_MAX_REPORT_CONFIGS = 64


def config_labels(results: StudyResults) -> list[tuple[str, dict]]:
    """``(label, fixed_axes)`` for every scanned non-LPS config combination.

    The label is a compact ``axis=value`` join; ``fixed_axes`` feeds the
    results object's slice methods.  Refuses to enumerate unreasonably
    many report rows — summarize a narrower slice instead.
    """
    axes = [n for n in results.spec.scanned_axes if n != "lps"]
    if not axes:
        return [("default", {})]
    value_lists = [results.spec.axis_values(n) for n in axes]
    combos = list(itertools.product(*value_lists))
    if len(combos) > _MAX_REPORT_CONFIGS:
        raise ValidationError(
            f"{len(combos)} report configurations exceed the "
            f"{_MAX_REPORT_CONFIGS}-row summary ceiling; slice the study first"
        )
    out = []
    for combo in combos:
        fixed = dict(zip(axes, combo))
        label = " ".join(f"{n}={_short(v)}" for n, v in fixed.items())
        out.append((label, fixed))
    return out


def _short(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def dominance_summary(results: StudyResults) -> str:
    """Per-config dominant-stage shares and the stage1-vs-stage2 crossover.

    The machine-checkable form of the paper's central claim: across the
    scanned operating points, which stage owns the time-to-solution, and
    from which problem size onward the classical translation (Stage 1)
    exceeds quantum execution (Stage 2).
    """
    rows = []
    for label, fixed in config_labels(results):
        counts = results.dominance_counts(**fixed)
        total = sum(counts.values())
        crossover = results.crossover_lps(above="stage1_s", below="stage2_s", **fixed)
        dominant = max(counts, key=counts.get)  # type: ignore[arg-type]
        rows.append(
            [
                label,
                dominant,
                f"{counts.get('stage1', 0) / total:.0%}",
                f"{counts.get('stage2', 0) / total:.0%}",
                f"{counts.get('stage3', 0) / total:.0%}",
                crossover if crossover is not None else "-",
            ]
        )
    return format_table(
        ["config", "dominant", "s1 share", "s2 share", "s3 share", "s1>s2 at LPS"],
        rows,
        title="stage dominance over the scanned grid",
    )


def scaling_summary(results: StudyResults) -> str:
    """Per-config empirical scaling exponents and endpoint predictions."""
    lps_scanned = len(results.spec.lps_values) > 1
    rows = []
    for label, fixed in config_labels(results):
        mask = results.select(**fixed)
        totals = results.column("total_s")[mask]
        row = [label, format_seconds(float(np.min(totals))), format_seconds(float(np.max(totals)))]
        if lps_scanned:
            try:
                slope = f"{results.scaling_exponent('total_s', 'lps', **fixed):.2f}"
                s1_slope = f"{results.scaling_exponent('stage1_s', 'lps', **fixed):.2f}"
            except ValidationError:
                slope = s1_slope = "-"
            row += [slope, s1_slope]
        rows.append(row)
    headers = ["config", "min total", "max total"]
    if lps_scanned:
        headers += ["d(logT)/d(logN)", "stage1 slope"]
    return format_table(headers, rows, title="time-to-solution across the grid")


def backend_summary(results: StudyResults) -> str:
    """Per-backend agreement against the reference, vs declared tolerances.

    One row per non-reference backend on the study's ``backend`` axis: the
    declared envelope (``rtol``/``atol`` from the registry capabilities)
    next to the worst observed effective relative deviation across the
    stage columns (see :meth:`StudyResults.backend_deviation`), and whether
    the backend stayed inside its envelope.  This is the differential test
    suite's cross-backend assertion, rendered as a study report column.
    """
    from ..backends import capabilities as backend_capabilities

    names = results.spec.backend_values
    if len(names) < 2:
        raise ValidationError(
            "backend summary needs a scanned backend axis (>= 2 backends)"
        )
    reference = "closed_form" if "closed_form" in names else names[0]
    deviations = results.backend_deviation(reference)
    rows = []
    for name, per_column in deviations.items():
        caps = backend_capabilities(name)
        worst_column = max(per_column, key=per_column.get)  # type: ignore[arg-type]
        worst = per_column[worst_column]
        rows.append(
            [
                name,
                f"{caps.rtol:g}",
                f"{caps.atol:g}",
                f"{worst:.2e}" if worst > 0 else "0",
                worst_column,
                "ok" if worst <= caps.rtol else "EXCEEDS",
            ]
        )
    return format_table(
        ["backend", "rtol", "atol", "max rel dev", "worst column", "status"],
        rows,
        title=f"backend agreement vs {reference!r}",
    )


def contention_summary(results: StudyResults) -> str:
    """Per-queue-policy latency/wait/utilization under contended traffic.

    One row per ``queue_policy`` value with simulated contention metrics
    (DES rows): mean p50 latency, worst p99 latency, mean queue wait, and
    mean annealer utilization — the table a contended
    ``arrival_rate x sessions x queue_policy`` study exists to produce.
    """
    summary = results.contention_summary()
    if not summary:
        raise ValidationError(
            "contention summary needs rows simulated under contention "
            "(a DES-backend study)"
        )
    rows = [
        [
            name,
            int(stats["rows"]),
            format_seconds(stats["latency_p50_s"]),
            format_seconds(stats["latency_p99_s"]),
            format_seconds(stats["queue_wait_s"]),
            f"{stats['utilization']:.1%}",
        ]
        for name, stats in summary.items()
    ]
    return format_table(
        ["queue policy", "rows", "mean p50", "worst p99", "mean wait", "utilization"],
        rows,
        title="contended workload by queue policy",
    )


def study_summary(results: StudyResults) -> str:
    """The full study report: header, dominance table, scaling table."""
    spec = results.spec
    lines = [
        f"study {spec.name!r}: {spec.describe()}",
        f"grid axes: "
        + (", ".join(spec.scanned_axes) if spec.scanned_axes else "none (single point)"),
    ]
    if spec.mc_trials > 0:
        mc = results.column("mc_accuracy")
        lines.append(
            f"monte-carlo accuracy ({spec.mc_trials} trials/point, seed {spec.seed}): "
            f"mean {float(np.nanmean(mc)):.4f}, min {float(np.nanmin(mc)):.4f}"
        )
    lines.append("")
    lines.append(dominance_summary(results))
    lines.append("")
    lines.append(scaling_summary(results))
    if len(spec.backend_values) > 1:
        lines.append("")
        lines.append(backend_summary(results))
    if any(n in _CONTENTION_AXES for n in spec.scanned_axes) and results.contention_summary():
        lines.append("")
        lines.append(contention_summary(results))
    return "\n".join(lines)
