"""Sharded study execution: deterministic parallel grid evaluation.

The executor partitions a spec's point space into fixed-size shards and
evaluates them — inline for ``workers=1``, across processes via
``concurrent.futures`` otherwise.  Evaluation is dispatched through the
performance-backend registry (:mod:`repro.backends`): each config block
names its backend (the spec's outermost axis) and the executor routes the
block through that backend's batched ``sweep`` entry point, so one study
can hold closed-form, ASPEN, and DES rows side by side.

Three properties make it safe to scale a study out and still trust the
bytes:

* **Shard grid before scheduling.**  Shards are contiguous index ranges
  ``[k*shard_size, (k+1)*shard_size)`` derived from ``shard_size`` alone;
  worker count only decides *who* runs a shard, never *what* a shard is.
* **Spawn-derived RNG streams.**  The Monte-Carlo column draws from
  ``spawn_stream(spec.seed, shard_index)`` (see ``repro._rng``), keyed on
  the shard's logical index, so any worker count and any shard execution
  order consume identical streams.  The contended-workload columns use
  their own namespace — ``spawn_stream(seed, CONTENTION_DOMAIN, row)``,
  keyed per *row* — so contention simulations are identical across any
  shard slicing as well.
* **Batched == scalar, bit for bit.**  Each shard routes its contiguous
  LPS runs through the config's backend ``sweep``, which every backend
  documents (and the differential suite tests) to match its per-point
  ``evaluate`` loop exactly; ``vectorize=False`` forces that scalar loop
  for cross-checking.

Together: the results table (and hence the saved artifact) is
byte-identical for 1, 2, or N workers, in-order or re-ordered shards, and
vectorized or scalar evaluation.  Changing ``shard_size`` re-partitions
the Monte-Carlo stream grid and may legitimately change ``mc_accuracy``
draws (never the model columns); it is part of the study's identity, not a
tuning knob to vary mid-study.

Because shard bytes are this reproducible, they are also *cacheable*:
pass a :class:`~repro.studies.cache.StudyCache` and every shard is served
from the content-addressed store when its key — the spec's effective grid
plus the shard grid — has been computed before, with byte-identical
results to a cold run.

Fault tolerance
---------------
Shard execution is retried: a failing attempt (an exception from the
shard body, or a worker process dying under the pool) is re-run up to
:class:`RetryPolicy` limits with exponential backoff whose jitter is
drawn from a *dedicated* spawn stream — ``spawn_stream(seed,
_BACKOFF_DOMAIN, shard_index)`` — so retries never advance the MC
streams.  A shard that exhausts its budget raises
:class:`~repro.exceptions.ShardError` carrying the attempt history.
Cache faults degrade gracefully: a failed load is a miss (the shard is
recomputed), a failed store is ignored (the shard still lands in the
table).  When the process pool keeps dying, the executor rebuilds it up
to ``RetryPolicy.max_pool_restarts`` times, then falls back to running
the remaining shards in-process.  Everything the resilience layer did is
reported in :class:`~repro.faults.FaultStats` on the returned results —
*outside* the canonical artifact, which stays byte-identical with and
without faults.  Deterministic fault injection for tests and the CI
chaos smoke comes from :mod:`repro.faults` via ``run_study(faults=)`` or
the ``REPRO_FAULTS`` environment hook.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from .._rng import spawn_stream
from ..backends import CONTENTION_AXES, SweepColumns, get as get_backend
from ..contention.simulate import CONTENTION_COLUMNS, contention_columns
from ..core.repetition import achieved_accuracy
from ..exceptions import ShardError, ValidationError
from ..faults import (
    SITE_CACHE_READ,
    SITE_CACHE_WRITE,
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
    FaultInjected,
    FaultPlan,
    FaultStats,
)
from ..distributed.scheduler import shard_schedule
from .results import StudyResults, empty_table
from .spec import EXECUTOR_AXES, ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from .cache import StudyCache

__all__ = [
    "run_study",
    "shard_ranges",
    "DEFAULT_SHARD_SIZE",
    "ProgressCallback",
    "RetryPolicy",
]

DEFAULT_SHARD_SIZE = 4096

#: Spawn-key domain for retry-backoff jitter streams.  MC streams use a
#: single key component (``spawn_stream(seed, k)``); backoff uses two
#: (``spawn_stream(seed, _BACKOFF_DOMAIN, k)``), so the two families can
#: never collide and retries leave the MC draws untouched.
_BACKOFF_DOMAIN = 0xB0FF

#: Exit code an injected worker death uses; only ever seen by the pool.
_WORKER_DEATH_EXIT = 117

#: Signature of the optional ``run_study`` progress hook:
#: ``progress(shard_index, from_cache, shards_done, shards_total)``, called
#: once per shard as it lands in the results table (cache-served shards
#: report during the cache pre-pass).  ``shards_done`` counts monotonically
#: to ``shards_total``; completion *order* is a scheduling detail and not
#: part of the determinism contract — the table bytes are.
ProgressCallback = Callable[[int, bool, int, int], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Shard retry/backoff budget for :func:`run_study`.

    ``delay(rng, attempt)`` is ``base_delay_s * 2**attempt`` capped at
    ``max_delay_s``, scaled by a jitter factor in ``[1 - jitter, 1]``
    drawn from the shard's dedicated backoff stream.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValidationError("backoff delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_pool_restarts < 0:
            raise ValidationError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )

    def delay(self, rng: np.random.Generator, attempt: int) -> float:
        base = min(self.base_delay_s * (2.0 ** attempt), self.max_delay_s)
        if base <= 0.0:
            return 0.0
        return base * (1.0 - self.jitter * rng.random())


def shard_ranges(num_points: int, shard_size: int) -> list[tuple[int, int]]:
    """The fixed shard grid: contiguous ``[start, stop)`` index ranges."""
    if shard_size < 1:
        raise ValidationError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, num_points))
        for start in range(0, num_points, shard_size)
    ]


def _fill_run(out: np.ndarray, cols: SweepColumns) -> None:
    """Copy one backend sweep's columns into a results-table slice."""
    out["stage1_s"] = cols.stage1_s
    out["stage2_s"] = cols.stage2_s
    out["stage3_s"] = cols.stage3_s
    out["total_s"] = cols.total_s
    out["quantum_fraction"] = cols.quantum_fraction
    out["dominant_stage"] = cols.dominant_stage
    out["repetitions"] = cols.repetitions


def _run_shard(
    spec_payload: dict,
    shard_index: int,
    start: int,
    stop: int,
    shard_size: int,
    vectorize: bool,
    faults: Mapping | None = None,
    attempt: int = 0,
    in_worker: bool = False,
) -> np.ndarray:
    """Evaluate points ``[start, stop)`` of the spec into a results table slice.

    Top-level (picklable) so process pools — and distributed
    :class:`~repro.distributed.worker.ShardWorker` loops — can run it;
    reconstructs the spec from its payload dict in the worker and
    resolves backends from the worker's own registry.  ``shard_size``
    names the full shard grid (not just this shard's extent): the
    ``sched_*`` columns are simulated over the whole grid, so every
    executor must agree on it.  ``faults``/``attempt`` carry the fault
    plan payload and the parent-owned attempt number across the process
    boundary (a respawned worker must not reset the fault schedule);
    ``in_worker`` gates the worker-death site — inline execution raises
    instead of killing the caller's process.
    """
    if faults is not None:
        plan = FaultPlan.from_dict(faults)
        if plan.fires(SITE_WORKER_DEATH, key=shard_index, attempt=attempt) is not None:
            if in_worker:
                os._exit(_WORKER_DEATH_EXIT)
            raise FaultInjected(
                f"injected worker death at shard {shard_index}, attempt {attempt} "
                "(inline execution: raised instead of exiting)"
            )
        if plan.fires(SITE_SHARD_EVAL, key=shard_index, attempt=attempt) is not None:
            raise FaultInjected(
                f"injected shard-eval failure at shard {shard_index}, attempt {attempt}"
            )
    spec = ScenarioSpec.from_dict(spec_payload)
    out = empty_table(max(stop - start, 0))
    if stop <= start:
        return out
    mc_rng = spawn_stream(spec.seed, shard_index) if spec.mc_trials > 0 else None

    # Touch only the config blocks this shard intersects (random access via
    # spec.config, not a scan of the whole grid): block k covers points
    # [k*block, (k+1)*block).
    lps_values = spec.lps_values
    block = len(lps_values)
    for k in range(start // block, (stop - 1) // block + 1):
        config = spec.config(k)
        # Executor-owned axes (scheduler) shape dispatch, not the operating
        # point: backends never see them.
        model_config = {n: v for n, v in config.items() if n not in EXECUTOR_AXES}
        backend = get_backend(model_config["backend"])
        block_start = k * block
        block_stop = block_start + block
        lo = max(start, block_start)
        hi = min(stop, block_stop)
        rows = slice(lo - start, hi - start)
        run = out[rows]
        lps_run = lps_values[lo - block_start : hi - block_start]

        for axis_name, value in config.items():
            run[axis_name] = value
        run["lps"] = lps_run
        if vectorize:
            cols = backend.sweep(model_config, lps_run)
        else:
            # The scalar reference loop every batched sweep must match.
            cols = SweepColumns.from_timings(
                [backend.evaluate({**model_config, "lps": int(n)}) for n in lps_run]
            )
        _fill_run(run, cols)

        # Modeled dispatch columns: the row's strategy simulated over the
        # study's full shard grid — a pure function of (spec, shard_size),
        # so any topology writes the same values (memoized per process).
        # Keyed on each row's own shard (index // shard_size), not on the
        # shard being evaluated, so any [start, stop) slice of the grid
        # yields the same bytes as the corresponding full-run rows.
        trace = shard_schedule(spec, shard_size, config["scheduler"])
        row_shards = np.arange(lo, hi) // shard_size
        run["sched_latency_s"] = np.asarray(trace.finish_s)[row_shards]
        run["sched_steals"] = np.asarray(trace.stolen, dtype=np.int64)[row_shards]

        # Contended-workload columns: simulated only for backends that
        # declare the contention axes (the DES runtime).  Each row draws
        # from spawn_stream(seed, CONTENTION_DOMAIN, global_row_index) —
        # keyed per row, not per shard, so any slice of the grid writes
        # the same bytes as the corresponding full-run rows.  Other
        # backends keep the NaN fill from empty_table.
        if CONTENTION_AXES <= backend.capabilities.supported_axes:
            contended = contention_columns(
                model_config, lps_run, range(lo, hi), spec.seed
            )
            for column in CONTENTION_COLUMNS:
                run[column] = contended[column]

        if mc_rng is not None:
            # One simulated batch of mc_trials Eq.-6 ensembles per point:
            # each ensemble of `repetitions` runs hits the ground state with
            # the analytic probability; the column is the empirical hit rate.
            p_hit = achieved_accuracy(int(run["repetitions"][0]), config["success"])
            hits = mc_rng.binomial(spec.mc_trials, p_hit, size=hi - lo)
            run["mc_accuracy"] = hits / float(spec.mc_trials)
    return out


def _load_shard_tolerant(
    cache: "StudyCache",
    plan: FaultPlan | None,
    stats: FaultStats,
    spec: ScenarioSpec,
    shard_size: int,
    k: int,
) -> np.ndarray | None:
    """Cache load that degrades every failure mode to a miss."""
    if plan is not None:
        rule = plan.fires_counted(SITE_CACHE_READ, key=k)
        if rule is not None:
            stats.cache_read_faults += 1
            if rule.effect == "corrupt":
                # Tear the stored entry; the real loader must detect and miss.
                path = cache.shard_path(cache.shard_key(spec, shard_size, k))
                try:
                    if path.exists():
                        path.write_bytes(path.read_bytes()[:7])
                except OSError:  # pragma: no cover - injected tear failed; still a miss
                    pass
            else:
                return None  # simulated unreadable entry
    try:
        return cache.load_shard(spec, shard_size, k)
    except OSError:  # pragma: no cover - defensive: a broken store is a miss
        stats.cache_read_faults += 1
        return None


def _store_shard_tolerant(
    cache: "StudyCache",
    plan: FaultPlan | None,
    stats: FaultStats,
    spec: ScenarioSpec,
    shard_size: int,
    k: int,
    shard: np.ndarray,
) -> None:
    """Cache store that never lets a cache failure lose computed results."""
    if plan is not None:
        rule = plan.fires_counted(SITE_CACHE_WRITE, key=k)
        if rule is not None:
            stats.cache_write_faults += 1
            if rule.effect == "corrupt":
                path = cache.store_shard(spec, shard_size, k, shard)
                try:
                    path.write_bytes(path.read_bytes()[:7])
                except OSError:  # pragma: no cover - tear failed; entry stays valid
                    pass
            return  # simulated failed write: the entry never lands
    try:
        cache.store_shard(spec, shard_size, k, shard)
    except OSError:
        stats.cache_write_faults += 1


def _attempt_shard(
    payload: dict,
    ranges: list[tuple[int, int]],
    shard_size: int,
    k: int,
    vectorize: bool,
    plan_payload: dict | None,
    policy: RetryPolicy,
    stats: FaultStats,
    attempts: dict[int, int],
    errors: dict[int, list[str]],
    rngs: dict[int, np.random.Generator],
) -> np.ndarray:
    """Run shard ``k`` inline under the retry policy, resuming its history."""
    start, stop = ranges[k]
    while True:
        n = attempts[k]
        try:
            shard = _run_shard(
                payload, k, start, stop, shard_size, vectorize, plan_payload, n, False
            )
        except Exception as exc:
            errors[k].append(f"attempt {n}: {exc!r}")
            stats.shard_failures += 1
            attempts[k] = n + 1
            if attempts[k] >= policy.max_attempts:
                raise ShardError(k, errors[k]) from exc
            stats.shard_retries += 1
            delay = policy.delay(rngs[k], n)
            if delay > 0.0:
                time.sleep(delay)
        else:
            if errors[k]:
                stats.recovered_shards += 1
            return shard


def run_study(
    spec: ScenarioSpec,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    vectorize: bool = True,
    shard_order: Sequence[int] | None = None,
    cache: "StudyCache | None" = None,
    progress: ProgressCallback | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
) -> StudyResults:
    """Evaluate every grid point of ``spec`` into a :class:`StudyResults`.

    Parameters
    ----------
    workers:
        Process count.  1 runs inline (no pool); results are byte-identical
        for every value.
    shard_size:
        Points per shard.  Fixes the shard grid and the Monte-Carlo stream
        partitioning (see the module docstring's determinism contract).
    vectorize:
        Route contiguous LPS runs through each backend's batched ``sweep``
        (the fast path) instead of the scalar per-point ``evaluate`` loop.
        Both produce identical tables; the scalar loop exists for
        cross-checks and as the perf-harness baseline.
    shard_order:
        Optional permutation of shard indices controlling *submission*
        order — a determinism-audit hook, not a tuning knob.
    cache:
        Optional :class:`~repro.studies.cache.StudyCache`.  Shards whose
        content key is already stored are loaded instead of recomputed
        (byte-identical either way); freshly computed shards are stored
        for future runs.
    progress:
        Optional :data:`ProgressCallback` invoked once per landed shard —
        the study service's per-shard status feed.  Exceptions raised by
        the callback propagate and abort the run.
    faults:
        Optional :class:`~repro.faults.FaultPlan` of injected failures.
        When omitted, the ``REPRO_FAULTS`` environment hook is consulted
        (see :meth:`FaultPlan.from_env`).  Injected transient faults never
        change the artifact bytes.
    retry:
        Shard retry/backoff budget; defaults to :class:`RetryPolicy`'s
        defaults.  Retries apply to *any* shard failure, injected or real.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    plan = FaultPlan.from_env() if faults is None else faults
    policy = RetryPolicy() if retry is None else retry
    stats = FaultStats()
    ranges = shard_ranges(spec.num_points, shard_size)
    order = list(range(len(ranges))) if shard_order is None else list(shard_order)
    if sorted(order) != list(range(len(ranges))):
        raise ValidationError(
            f"shard_order must be a permutation of range({len(ranges)})"
        )

    payload = spec.to_dict()
    plan_payload = plan.to_dict() if plan is not None else None
    table = empty_table(spec.num_points)

    done = 0
    total = len(ranges)
    pending: list[int] = []
    for k in order:
        if cache is not None:
            start, stop = ranges[k]
            cached = _load_shard_tolerant(cache, plan, stats, spec, shard_size, k)
            if cached is not None:
                table[start:stop] = cached
                done += 1
                if progress is not None:
                    progress(k, True, done, total)
                continue
        pending.append(k)

    attempts = {k: 0 for k in pending}
    errors: dict[int, list[str]] = {k: [] for k in pending}
    rngs = {k: spawn_stream(spec.seed, _BACKOFF_DOMAIN, k) for k in pending}

    def land(k: int, shard: np.ndarray) -> None:
        nonlocal done
        start, stop = ranges[k]
        table[start:stop] = shard
        if cache is not None:
            _store_shard_tolerant(cache, plan, stats, spec, shard_size, k, shard)
        done += 1
        if progress is not None:
            progress(k, False, done, total)

    if workers == 1 or len(pending) <= 1:
        for k in pending:
            land(
                k,
                _attempt_shard(
                    payload, ranges, shard_size, k, vectorize, plan_payload,
                    policy, stats, attempts, errors, rngs,
                ),
            )
    else:
        _run_pool(
            payload, ranges, shard_size, pending, workers, vectorize, plan_payload,
            policy, stats, attempts, errors, rngs, land,
        )
    return StudyResults(spec=spec, table=table, fault_stats=stats)


def _run_pool(
    payload: dict,
    ranges: list[tuple[int, int]],
    shard_size: int,
    pending: list[int],
    workers: int,
    vectorize: bool,
    plan_payload: dict | None,
    policy: RetryPolicy,
    stats: FaultStats,
    attempts: dict[int, int],
    errors: dict[int, list[str]],
    rngs: dict[int, np.random.Generator],
    land: Callable[[int, np.ndarray], None],
) -> None:
    """Pool execution with per-shard retry and worker-death recovery.

    Each round submits the remaining shards (with their parent-owned
    attempt numbers) to a fresh pool.  A per-shard exception schedules a
    retry; a dying worker breaks the pool, in which case every shard that
    was in flight is charged one attempt (the culprit cannot be told
    apart from its victims) and the pool is rebuilt — up to
    ``policy.max_pool_restarts`` times, after which the remaining shards
    run in-process (the degraded path).
    """
    remaining = list(pending)
    pool_restarts = 0
    while remaining:
        if pool_restarts > policy.max_pool_restarts:
            stats.degraded_inline_shards += len(remaining)
            for k in remaining:
                land(
                    k,
                    _attempt_shard(
                        payload, ranges, shard_size, k, vectorize, plan_payload,
                        policy, stats, attempts, errors, rngs,
                    ),
                )
            return

        broken = False
        died: list[int] = []
        retry_next: list[int] = []
        unsubmitted: list[int] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(remaining))) as pool:
            futures: dict[int, object] = {}
            try:
                for k in remaining:
                    futures[k] = pool.submit(
                        _run_shard, payload, k, ranges[k][0], ranges[k][1],
                        shard_size, vectorize, plan_payload, attempts[k], True,
                    )
            except BrokenProcessPool:
                broken = True
                unsubmitted = [k for k in remaining if k not in futures]
            for k, future in futures.items():
                try:
                    shard = future.result()
                except BrokenProcessPool:
                    broken = True
                    died.append(k)
                except Exception as exc:
                    errors[k].append(f"attempt {attempts[k]}: {exc!r}")
                    stats.shard_failures += 1
                    attempts[k] += 1
                    if attempts[k] >= policy.max_attempts:
                        raise ShardError(k, errors[k]) from exc
                    stats.shard_retries += 1
                    retry_next.append(k)
                else:
                    if errors[k]:
                        stats.recovered_shards += 1
                    land(k, shard)

        if broken:
            stats.worker_deaths += 1
            stats.pool_restarts += 1
            pool_restarts += 1
            for k in died:
                errors[k].append(f"attempt {attempts[k]}: worker process died (broken pool)")
                stats.shard_failures += 1
                attempts[k] += 1
                if attempts[k] >= policy.max_attempts:
                    raise ShardError(k, errors[k])
                stats.shard_retries += 1

        # One backoff sleep per round covering every retried shard; draws
        # advance each shard's dedicated stream deterministically.
        retried = sorted(retry_next + died)
        if retried:
            delay = max(policy.delay(rngs[k], attempts[k] - 1) for k in retried)
            if delay > 0.0:
                time.sleep(delay)
        remaining = retried + unsubmitted
