"""Sharded study execution: deterministic parallel grid evaluation.

The executor partitions a spec's point space into fixed-size shards and
evaluates them — inline for ``workers=1``, across processes via
``concurrent.futures`` otherwise.  Three properties make it safe to scale
a study out and still trust the bytes:

* **Shard grid before scheduling.**  Shards are contiguous index ranges
  ``[k*shard_size, (k+1)*shard_size)`` derived from ``shard_size`` alone;
  worker count only decides *who* runs a shard, never *what* a shard is.
* **Spawn-derived RNG streams.**  The Monte-Carlo column draws from
  ``spawn_stream(spec.seed, shard_index)`` (see ``repro._rng``), keyed on
  the shard's logical index, so any worker count and any shard execution
  order consume identical streams.
* **Vectorized == scalar, bit for bit.**  Each shard routes its contiguous
  LPS runs through ``SplitExecutionModel.sweep_arrays``, whose elements
  are documented (and tested) to match the scalar ``time_to_solution``
  path exactly; ``vectorize=False`` forces the scalar loop for
  cross-checking.

Together: the results table (and hence the saved artifact) is
byte-identical for 1, 2, or N workers, in-order or re-ordered shards, and
vectorized or scalar evaluation.  Changing ``shard_size`` re-partitions
the Monte-Carlo stream grid and may legitimately change ``mc_accuracy``
draws (never the model columns); it is part of the study's identity, not a
tuning knob to vary mid-study.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from .._rng import spawn_stream
from ..core.pipeline import SplitExecutionModel
from ..core.repetition import achieved_accuracy
from ..exceptions import ValidationError
from .results import StudyResults, empty_table
from .spec import ScenarioSpec

__all__ = ["run_study", "shard_ranges", "DEFAULT_SHARD_SIZE"]

DEFAULT_SHARD_SIZE = 4096


def shard_ranges(num_points: int, shard_size: int) -> list[tuple[int, int]]:
    """The fixed shard grid: contiguous ``[start, stop)`` index ranges."""
    if shard_size < 1:
        raise ValidationError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, num_points))
        for start in range(0, num_points, shard_size)
    ]


def _model_for_config(config: dict) -> SplitExecutionModel:
    """The split-execution model evaluating one config's operating constants."""
    return SplitExecutionModel().with_overrides(
        embedding_mode=config["embedding_mode"],
        anneal_us=config["anneal_us"],
        clock_hz=config["clock_hz"],
        memory_bandwidth_bytes_per_s=config["memory_bandwidth_bytes_per_s"],
        pcie_bandwidth_bytes_per_s=config["pcie_bandwidth_bytes_per_s"],
    )


def _fill_run_vectorized(
    out: np.ndarray,
    model: SplitExecutionModel,
    config: dict,
    lps_run: Sequence[int],
) -> None:
    """Evaluate one contiguous LPS run through the array fast path."""
    sweep = model.sweep_arrays(
        np.asarray(lps_run, dtype=np.int64),
        accuracy=config["accuracy"],
        success=config["success"],
    )
    out["stage1_s"] = sweep.stage1.total
    out["stage2_s"] = sweep.stage2.total
    out["stage3_s"] = sweep.stage3.total
    out["total_s"] = sweep.total_seconds
    out["quantum_fraction"] = sweep.quantum_fraction
    out["dominant_stage"] = sweep.dominant_stage()
    out["repetitions"] = sweep.stage2.repetitions


def _fill_run_scalar(
    out: np.ndarray,
    model: SplitExecutionModel,
    config: dict,
    lps_run: Sequence[int],
) -> None:
    """Reference scalar loop; must match the vectorized fill bit for bit."""
    for i, lps in enumerate(lps_run):
        t = model.time_to_solution(int(lps), config["accuracy"], config["success"])
        out["stage1_s"][i] = t.stage1_seconds
        out["stage2_s"][i] = t.stage2_seconds
        out["stage3_s"][i] = t.stage3_seconds
        out["total_s"][i] = t.total_seconds
        out["quantum_fraction"][i] = t.quantum_fraction
        out["dominant_stage"][i] = t.dominant_stage
        out["repetitions"][i] = t.stage2.repetitions


def _run_shard(
    spec_payload: dict,
    shard_index: int,
    start: int,
    stop: int,
    vectorize: bool,
) -> np.ndarray:
    """Evaluate points ``[start, stop)`` of the spec into a results table slice.

    Top-level (picklable) so process pools can run it; reconstructs the
    spec from its payload dict in the worker.
    """
    spec = ScenarioSpec.from_dict(spec_payload)
    out = empty_table(max(stop - start, 0))
    if stop <= start:
        return out
    fill = _fill_run_vectorized if vectorize else _fill_run_scalar
    mc_rng = spawn_stream(spec.seed, shard_index) if spec.mc_trials > 0 else None

    # Touch only the config blocks this shard intersects (random access via
    # spec.config, not a scan of the whole grid): block k covers points
    # [k*block, (k+1)*block).
    lps_values = spec.lps_values
    block = len(lps_values)
    for k in range(start // block, (stop - 1) // block + 1):
        config = spec.config(k)
        block_start = k * block
        block_stop = block_start + block
        lo = max(start, block_start)
        hi = min(stop, block_stop)
        rows = slice(lo - start, hi - start)
        run = out[rows]
        lps_run = lps_values[lo - block_start : hi - block_start]

        for axis_name, value in config.items():
            run[axis_name] = value
        run["lps"] = lps_run
        fill(run, _model_for_config(config), config, lps_run)

        if mc_rng is not None:
            # One simulated batch of mc_trials Eq.-6 ensembles per point:
            # each ensemble of `repetitions` runs hits the ground state with
            # the analytic probability; the column is the empirical hit rate.
            p_hit = achieved_accuracy(int(run["repetitions"][0]), config["success"])
            hits = mc_rng.binomial(spec.mc_trials, p_hit, size=hi - lo)
            run["mc_accuracy"] = hits / float(spec.mc_trials)
    return out


def run_study(
    spec: ScenarioSpec,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    vectorize: bool = True,
    shard_order: Sequence[int] | None = None,
) -> StudyResults:
    """Evaluate every grid point of ``spec`` into a :class:`StudyResults`.

    Parameters
    ----------
    workers:
        Process count.  1 runs inline (no pool); results are byte-identical
        for every value.
    shard_size:
        Points per shard.  Fixes the shard grid and the Monte-Carlo stream
        partitioning (see the module docstring's determinism contract).
    vectorize:
        Route contiguous LPS runs through ``sweep_arrays`` (the fast path)
        instead of the scalar reference loop.  Both produce identical
        tables; the scalar loop exists for cross-checks and as the
        perf-harness baseline.
    shard_order:
        Optional permutation of shard indices controlling *submission*
        order — a determinism-audit hook, not a tuning knob.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    ranges = shard_ranges(spec.num_points, shard_size)
    order = list(range(len(ranges))) if shard_order is None else list(shard_order)
    if sorted(order) != list(range(len(ranges))):
        raise ValidationError(
            f"shard_order must be a permutation of range({len(ranges)})"
        )

    payload = spec.to_dict()
    table = empty_table(spec.num_points)

    if workers == 1 or len(ranges) <= 1:
        for k in order:
            start, stop = ranges[k]
            table[start:stop] = _run_shard(payload, k, start, stop, vectorize)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                k: pool.submit(_run_shard, payload, k, ranges[k][0], ranges[k][1], vectorize)
                for k in order
            }
            for k, future in futures.items():
                start, stop = ranges[k]
                table[start:stop] = future.result()
    return StudyResults(spec=spec, table=table)
