"""Sharded study execution: deterministic parallel grid evaluation.

The executor partitions a spec's point space into fixed-size shards and
evaluates them — inline for ``workers=1``, across processes via
``concurrent.futures`` otherwise.  Evaluation is dispatched through the
performance-backend registry (:mod:`repro.backends`): each config block
names its backend (the spec's outermost axis) and the executor routes the
block through that backend's batched ``sweep`` entry point, so one study
can hold closed-form, ASPEN, and DES rows side by side.

Three properties make it safe to scale a study out and still trust the
bytes:

* **Shard grid before scheduling.**  Shards are contiguous index ranges
  ``[k*shard_size, (k+1)*shard_size)`` derived from ``shard_size`` alone;
  worker count only decides *who* runs a shard, never *what* a shard is.
* **Spawn-derived RNG streams.**  The Monte-Carlo column draws from
  ``spawn_stream(spec.seed, shard_index)`` (see ``repro._rng``), keyed on
  the shard's logical index, so any worker count and any shard execution
  order consume identical streams.
* **Batched == scalar, bit for bit.**  Each shard routes its contiguous
  LPS runs through the config's backend ``sweep``, which every backend
  documents (and the differential suite tests) to match its per-point
  ``evaluate`` loop exactly; ``vectorize=False`` forces that scalar loop
  for cross-checking.

Together: the results table (and hence the saved artifact) is
byte-identical for 1, 2, or N workers, in-order or re-ordered shards, and
vectorized or scalar evaluation.  Changing ``shard_size`` re-partitions
the Monte-Carlo stream grid and may legitimately change ``mc_accuracy``
draws (never the model columns); it is part of the study's identity, not a
tuning knob to vary mid-study.

Because shard bytes are this reproducible, they are also *cacheable*:
pass a :class:`~repro.studies.cache.StudyCache` and every shard is served
from the content-addressed store when its key — the spec's effective grid
plus the shard grid — has been computed before, with byte-identical
results to a cold run.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING

import numpy as np

from .._rng import spawn_stream
from ..backends import SweepColumns, get as get_backend
from ..core.repetition import achieved_accuracy
from ..exceptions import ValidationError
from .results import StudyResults, empty_table
from .spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from .cache import StudyCache

__all__ = ["run_study", "shard_ranges", "DEFAULT_SHARD_SIZE", "ProgressCallback"]

DEFAULT_SHARD_SIZE = 4096

#: Signature of the optional ``run_study`` progress hook:
#: ``progress(shard_index, from_cache, shards_done, shards_total)``, called
#: once per shard as it lands in the results table (cache-served shards
#: report during the cache pre-pass).  ``shards_done`` counts monotonically
#: to ``shards_total``; completion *order* is a scheduling detail and not
#: part of the determinism contract — the table bytes are.
ProgressCallback = Callable[[int, bool, int, int], None]


def shard_ranges(num_points: int, shard_size: int) -> list[tuple[int, int]]:
    """The fixed shard grid: contiguous ``[start, stop)`` index ranges."""
    if shard_size < 1:
        raise ValidationError(f"shard_size must be >= 1, got {shard_size}")
    return [
        (start, min(start + shard_size, num_points))
        for start in range(0, num_points, shard_size)
    ]


def _fill_run(out: np.ndarray, cols: SweepColumns) -> None:
    """Copy one backend sweep's columns into a results-table slice."""
    out["stage1_s"] = cols.stage1_s
    out["stage2_s"] = cols.stage2_s
    out["stage3_s"] = cols.stage3_s
    out["total_s"] = cols.total_s
    out["quantum_fraction"] = cols.quantum_fraction
    out["dominant_stage"] = cols.dominant_stage
    out["repetitions"] = cols.repetitions


def _run_shard(
    spec_payload: dict,
    shard_index: int,
    start: int,
    stop: int,
    vectorize: bool,
) -> np.ndarray:
    """Evaluate points ``[start, stop)`` of the spec into a results table slice.

    Top-level (picklable) so process pools can run it; reconstructs the
    spec from its payload dict in the worker and resolves backends from
    the worker's own registry.
    """
    spec = ScenarioSpec.from_dict(spec_payload)
    out = empty_table(max(stop - start, 0))
    if stop <= start:
        return out
    mc_rng = spawn_stream(spec.seed, shard_index) if spec.mc_trials > 0 else None

    # Touch only the config blocks this shard intersects (random access via
    # spec.config, not a scan of the whole grid): block k covers points
    # [k*block, (k+1)*block).
    lps_values = spec.lps_values
    block = len(lps_values)
    for k in range(start // block, (stop - 1) // block + 1):
        config = spec.config(k)
        backend = get_backend(config["backend"])
        block_start = k * block
        block_stop = block_start + block
        lo = max(start, block_start)
        hi = min(stop, block_stop)
        rows = slice(lo - start, hi - start)
        run = out[rows]
        lps_run = lps_values[lo - block_start : hi - block_start]

        for axis_name, value in config.items():
            run[axis_name] = value
        run["lps"] = lps_run
        if vectorize:
            cols = backend.sweep(config, lps_run)
        else:
            # The scalar reference loop every batched sweep must match.
            cols = SweepColumns.from_timings(
                [backend.evaluate({**config, "lps": int(n)}) for n in lps_run]
            )
        _fill_run(run, cols)

        if mc_rng is not None:
            # One simulated batch of mc_trials Eq.-6 ensembles per point:
            # each ensemble of `repetitions` runs hits the ground state with
            # the analytic probability; the column is the empirical hit rate.
            p_hit = achieved_accuracy(int(run["repetitions"][0]), config["success"])
            hits = mc_rng.binomial(spec.mc_trials, p_hit, size=hi - lo)
            run["mc_accuracy"] = hits / float(spec.mc_trials)
    return out


def run_study(
    spec: ScenarioSpec,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    vectorize: bool = True,
    shard_order: Sequence[int] | None = None,
    cache: "StudyCache | None" = None,
    progress: ProgressCallback | None = None,
) -> StudyResults:
    """Evaluate every grid point of ``spec`` into a :class:`StudyResults`.

    Parameters
    ----------
    workers:
        Process count.  1 runs inline (no pool); results are byte-identical
        for every value.
    shard_size:
        Points per shard.  Fixes the shard grid and the Monte-Carlo stream
        partitioning (see the module docstring's determinism contract).
    vectorize:
        Route contiguous LPS runs through each backend's batched ``sweep``
        (the fast path) instead of the scalar per-point ``evaluate`` loop.
        Both produce identical tables; the scalar loop exists for
        cross-checks and as the perf-harness baseline.
    shard_order:
        Optional permutation of shard indices controlling *submission*
        order — a determinism-audit hook, not a tuning knob.
    cache:
        Optional :class:`~repro.studies.cache.StudyCache`.  Shards whose
        content key is already stored are loaded instead of recomputed
        (byte-identical either way); freshly computed shards are stored
        for future runs.
    progress:
        Optional :data:`ProgressCallback` invoked once per landed shard —
        the study service's per-shard status feed.  Exceptions raised by
        the callback propagate and abort the run.
    """
    if workers < 1:
        raise ValidationError(f"workers must be >= 1, got {workers}")
    ranges = shard_ranges(spec.num_points, shard_size)
    order = list(range(len(ranges))) if shard_order is None else list(shard_order)
    if sorted(order) != list(range(len(ranges))):
        raise ValidationError(
            f"shard_order must be a permutation of range({len(ranges)})"
        )

    payload = spec.to_dict()
    table = empty_table(spec.num_points)

    done = 0
    total = len(ranges)
    pending: list[int] = []
    for k in order:
        if cache is not None:
            start, stop = ranges[k]
            cached = cache.load_shard(spec, shard_size, k)
            if cached is not None:
                table[start:stop] = cached
                done += 1
                if progress is not None:
                    progress(k, True, done, total)
                continue
        pending.append(k)

    if workers == 1 or len(pending) <= 1:
        for k in pending:
            start, stop = ranges[k]
            shard = _run_shard(payload, k, start, stop, vectorize)
            table[start:stop] = shard
            if cache is not None:
                cache.store_shard(spec, shard_size, k, shard)
            done += 1
            if progress is not None:
                progress(k, False, done, total)
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                k: pool.submit(_run_shard, payload, k, ranges[k][0], ranges[k][1], vectorize)
                for k in pending
            }
            for k, future in futures.items():
                start, stop = ranges[k]
                shard = future.result()
                table[start:stop] = shard
                if cache is not None:
                    cache.store_shard(spec, shard_size, k, shard)
                done += 1
                if progress is not None:
                    progress(k, False, done, total)
    return StudyResults(spec=spec, table=table)
