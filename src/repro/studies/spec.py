"""Declarative scenario-study specifications: parameter-space grids.

A :class:`ScenarioSpec` names a cartesian grid over the split-execution
model's operating-point axes — the performance backend, problem size,
target accuracy, success probability, embedding mode, and the host/QPU
machine constants — and the study executor (:mod:`repro.studies.executor`)
evaluates the performance models over every point of that grid.  The
paper's Fig. 9 is one tiny instance of such a study (three series over LPS
and accuracy); a spec can describe the whole families of operating points
Sec. 3.3 reasons about, evaluated by all three model realizations side by
side through the ``backend`` axis.

Point enumeration is *stable by construction*: axes are ordered by the
canonical :data:`AXIS_ORDER` (``backend`` outermost, then machine
constants, ``lps`` innermost) and points enumerate row-major over that
order, so point ``i`` of a spec means the same operating point forever —
artifacts, shards, and golden tests all key on it.  ``lps`` varying
fastest is also what lets the executor route each contiguous run of
points through a backend's batched ``sweep`` fast path; ``backend``
varying slowest keeps each backend's sub-grid one contiguous block for
per-backend comparison columns.

Backend values are validated against the live registry
(:mod:`repro.backends`), and each backend's capability descriptor is
enforced at spec-construction time: an axis the backend does not honor
may only sit at its single default value, so a spec never silently sweeps
a knob a backend ignores.
"""

from __future__ import annotations

import itertools
import json
import math
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .._json import canonical_line
from ..backends import (
    DEFAULT_BACKEND,
    DEFAULT_OPERATING_POINT,
    available_backends,
    capabilities as backend_capabilities,
)
from ..contention.disciplines import QUEUE_POLICY_NAMES
from ..distributed.scheduler import DEFAULT_SCHEDULER, SCHEDULER_NAMES
from ..exceptions import ValidationError

__all__ = ["Axis", "ScenarioSpec", "AXIS_ORDER", "EXECUTOR_AXES", "axis_default"]

#: Canonical axis order, outermost first.  ``lps`` is always innermost
#: (fastest varying) so every config block is one contiguous LPS run;
#: ``backend`` is outermost so each backend owns one contiguous sub-grid.
#: ``scheduler`` sits right after it: the shard-dispatch strategy whose
#: modeled latency/steal columns a study compares (see
#: :mod:`repro.distributed.scheduler`), followed by the contended-traffic
#: axes (``queue_policy`` / ``sessions`` / ``arrival_rate``, realized by
#: the DES backend through :mod:`repro.contention`).
AXIS_ORDER = (
    "backend",
    "scheduler",
    "queue_policy",
    "sessions",
    "arrival_rate",
    "embedding_mode",
    "clock_hz",
    "memory_bandwidth_bytes_per_s",
    "pcie_bandwidth_bytes_per_s",
    "anneal_us",
    "success",
    "accuracy",
    "lps",
)

#: Hard ceiling on grid size — a guard against accidentally writing a spec
#: that tries to materialize billions of points in one results table.
MAX_POINTS = 50_000_000

_EMBEDDING_MODES = ("online", "offline")

#: Axes owned by the *executor*, not the performance model: they shape
#: how shards are dispatched (and the sched_* result columns), never the
#: operating point a backend evaluates.  Exempt from backend capability
#: checks and stripped from the config before backend dispatch.
EXECUTOR_AXES = frozenset({"scheduler"})


def _default_values() -> dict[str, tuple]:
    """Single-point default for every absent axis (the paper's operating point)."""
    defaults = {"backend": (DEFAULT_BACKEND,), "scheduler": (DEFAULT_SCHEDULER,)}
    defaults.update((name, (value,)) for name, value in DEFAULT_OPERATING_POINT.items())
    return defaults


def axis_default(name: str):
    """The single default value an absent ``name`` axis collapses to."""
    values = _default_values().get(name)
    if values is None:
        raise ValidationError(f"unknown axis {name!r}; valid axes: {AXIS_ORDER}")
    return values[0]


def _validate_axis(name: str, values: Sequence) -> tuple:
    """Normalize and validate one axis's values; returns the stored tuple."""
    if name not in AXIS_ORDER:
        raise ValidationError(f"unknown axis {name!r}; valid axes: {AXIS_ORDER}")
    vals = tuple(values)
    if not vals:
        raise ValidationError(f"axis {name!r} must have at least one value")
    if len(set(vals)) != len(vals):
        raise ValidationError(f"axis {name!r} has duplicate values")

    if name == "backend":
        known = available_backends()
        for v in vals:
            if v not in known:
                raise ValidationError(
                    f"unknown backend {v!r}; registered backends: {known}"
                )
        return vals
    if name == "scheduler":
        for v in vals:
            if v not in SCHEDULER_NAMES:
                raise ValidationError(
                    f"scheduler values must be one of {SCHEDULER_NAMES}, got {v!r}"
                )
        return vals
    if name == "queue_policy":
        for v in vals:
            if v not in QUEUE_POLICY_NAMES:
                raise ValidationError(
                    f"queue_policy values must be one of {QUEUE_POLICY_NAMES}, got {v!r}"
                )
        return vals
    if name == "embedding_mode":
        for v in vals:
            if v not in _EMBEDDING_MODES:
                raise ValidationError(
                    f"embedding_mode values must be one of {_EMBEDDING_MODES}, got {v!r}"
                )
        return vals
    if name in ("lps", "sessions"):
        out = []
        for v in vals:
            try:
                # int(nan) raises ValueError and int(inf) OverflowError —
                # both must land as ValidationError, not leak to the caller.
                is_integral = not isinstance(v, bool) and v == int(v)
            except (TypeError, ValueError, OverflowError):
                is_integral = False
            if not is_integral:
                raise ValidationError(f"{name} values must be integers, got {v!r}")
            if int(v) < 0:
                raise ValidationError(f"{name} values must be non-negative, got {v}")
            out.append(int(v))
        return tuple(out)

    out = []
    for v in vals:
        try:
            fv = float(v)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"axis {name!r} values must be numbers, got {v!r}"
            ) from exc
        if not math.isfinite(fv):
            raise ValidationError(f"axis {name!r} values must be finite, got {v!r}")
        out.append(fv)
    vals = tuple(out)
    if name == "accuracy":
        for v in vals:
            if not 0.0 <= v < 1.0:
                raise ValidationError(f"accuracy values must lie in [0, 1), got {v}")
    elif name == "success":
        for v in vals:
            if not 0.0 < v <= 1.0:
                raise ValidationError(f"success values must lie in (0, 1], got {v}")
    elif name in ("anneal_us", "arrival_rate"):
        for v in vals:
            if v < 0:
                raise ValidationError(f"{name} values must be non-negative, got {v}")
    else:  # machine rates
        for v in vals:
            if v <= 0:
                raise ValidationError(f"axis {name!r} values must be positive, got {v}")
    return vals


@dataclass(frozen=True)
class Axis:
    """One named study axis: the values a parameter scans over."""

    name: str
    values: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _validate_axis(self.name, self.values))

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative parameter-space study over the split-execution model.

    Parameters
    ----------
    axes:
        Mapping of axis name to its scan values (see :data:`AXIS_ORDER`) —
        plain sequences or :class:`Axis` instances (whose name must match
        the key).  Absent axes collapse to the paper's single default
        operating point (``axis_default``), so every point always carries
        a full parameter set.  The grid is the cartesian product of all
        axes.
    name:
        Label carried into artifacts and reports.
    mc_trials:
        When positive, each point also gets a Monte-Carlo estimate of the
        achieved ensemble accuracy — ``mc_trials`` simulated Eq.-6
        ensembles per point — using the executor's deterministic per-shard
        RNG streams.  0 disables the column.
    seed:
        Root seed for the Monte-Carlo streams (see ``repro._rng``).
    """

    axes: Mapping[str, Sequence] = field(default_factory=dict)
    name: str = "study"
    mc_trials: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        normalized = {}
        for axis_name in AXIS_ORDER:
            if axis_name in self.axes:
                values = self.axes[axis_name]
                if isinstance(values, Axis):
                    if values.name != axis_name:
                        raise ValidationError(
                            f"axis {values.name!r} stored under key {axis_name!r}"
                        )
                    values = values.values
                normalized[axis_name] = _validate_axis(axis_name, values)
        unknown = set(self.axes) - set(AXIS_ORDER)
        if unknown:
            raise ValidationError(
                f"unknown axes {sorted(unknown)}; valid axes: {AXIS_ORDER}"
            )
        if self.mc_trials < 0:
            raise ValidationError(f"mc_trials must be non-negative, got {self.mc_trials}")
        if not self.name:
            raise ValidationError("study name must be non-empty")
        object.__setattr__(self, "axes", normalized)
        if self.num_points > MAX_POINTS:
            raise ValidationError(
                f"grid has {self.num_points} points, exceeding MAX_POINTS={MAX_POINTS}"
            )
        # A grid point with no closed sessions *and* no open arrivals has
        # no traffic to simulate; reject it at spec time rather than deep
        # inside a worker's contention simulation.
        if 0 in self.axis_values("sessions") and 0.0 in self.axis_values("arrival_rate"):
            raise ValidationError(
                "grid contains the empty workload point sessions=0, arrival_rate=0 "
                "(no traffic: give the point at least one closed session or a "
                "positive arrival rate)"
            )
        self._check_backend_capabilities()

    def _check_backend_capabilities(self) -> None:
        """Every swept backend must honor every axis the grid moves.

        An axis outside a backend's ``supported_axes`` may only sit at its
        single default value — otherwise the study would silently record
        identical numbers for "different" operating points of that backend.
        """
        for backend_name in self.axis_values("backend"):
            caps = backend_capabilities(backend_name)
            for axis_name in AXIS_ORDER[1:]:
                if axis_name in EXECUTOR_AXES or axis_name in caps.supported_axes:
                    continue
                values = self.axis_values(axis_name)
                if values != (axis_default(axis_name),):
                    raise ValidationError(
                        f"backend {backend_name!r} does not support axis "
                        f"{axis_name!r} away from its default "
                        f"{axis_default(axis_name)!r} (spec scans {values})"
                    )

    # ------------------------------------------------------------------ #
    # Grid geometry
    # ------------------------------------------------------------------ #
    def axis_values(self, name: str) -> tuple:
        """The scan values of ``name`` (the single default if absent)."""
        if name not in AXIS_ORDER:
            raise ValidationError(f"unknown axis {name!r}; valid axes: {AXIS_ORDER}")
        return self.axes.get(name) or (axis_default(name),)

    @property
    def shape(self) -> tuple[int, ...]:
        """Grid extent along every canonical axis (one entry per AXIS_ORDER name)."""
        return tuple(len(self.axis_values(n)) for n in AXIS_ORDER)

    @property
    def num_points(self) -> int:
        return math.prod(self.shape)

    @property
    def scanned_axes(self) -> tuple[str, ...]:
        """Axes with more than one value, in canonical order."""
        return tuple(n for n in AXIS_ORDER if len(self.axis_values(n)) > 1)

    @property
    def lps_values(self) -> tuple[int, ...]:
        return self.axis_values("lps")

    @property
    def backend_values(self) -> tuple[str, ...]:
        return self.axis_values("backend")

    def point(self, index: int) -> dict:
        """Full parameter dict of grid point ``index`` (row-major enumeration)."""
        if not 0 <= index < self.num_points:
            raise ValidationError(
                f"point index {index} out of range for {self.num_points} points"
            )
        out = {}
        remainder = index
        for axis_name, extent in zip(reversed(AXIS_ORDER), reversed(self.shape)):
            remainder, digit = divmod(remainder, extent)
            out[axis_name] = self.axis_values(axis_name)[digit]
        return {n: out[n] for n in AXIS_ORDER}

    def iter_points(self) -> Iterator[dict]:
        """All grid points in enumeration order (for small grids / tests)."""
        value_lists = [self.axis_values(n) for n in AXIS_ORDER]
        for combo in itertools.product(*value_lists):
            yield dict(zip(AXIS_ORDER, combo))

    @property
    def num_configs(self) -> int:
        """Number of non-``lps`` axis combinations (grid points / LPS run)."""
        return self.num_points // len(self.lps_values)

    def config(self, k: int) -> dict:
        """Non-``lps`` parameters of config block ``k`` (mixed-radix decode).

        Config ``k`` owns the contiguous points
        ``[k * len(lps_values), (k + 1) * len(lps_values))`` — the random
        access the sharded executor uses to touch only the blocks a shard
        intersects.
        """
        if not 0 <= k < self.num_configs:
            raise ValidationError(
                f"config index {k} out of range for {self.num_configs} configs"
            )
        config_axes = AXIS_ORDER[:-1]
        out = {}
        remainder = k
        for axis_name in reversed(config_axes):
            values = self.axis_values(axis_name)
            remainder, digit = divmod(remainder, len(values))
            out[axis_name] = values[digit]
        return {n: out[n] for n in config_axes}

    def config_blocks(self) -> Iterator[tuple[int, dict, tuple[int, ...]]]:
        """Iterate ``(start_index, config, lps_values)`` over the grid.

        A *config* fixes every non-``lps`` axis; because ``lps`` is the
        innermost axis, each config owns one contiguous run of
        ``len(lps_values)`` points starting at ``start_index``.  This is
        the unit of vectorization for the executor.
        """
        config_axes = AXIS_ORDER[:-1]
        lps_values = self.lps_values
        block = len(lps_values)
        value_lists = [self.axis_values(n) for n in config_axes]
        for k, combo in enumerate(itertools.product(*value_lists)):
            yield k * block, dict(zip(config_axes, combo)), lps_values

    def cache_identity(self) -> dict:
        """The grid identity the artifact cache hashes (see ``studies.cache``).

        *Effective* axis values — absent axes and explicitly-spelled
        defaults collapse to the same payload — plus the Monte-Carlo
        parameters that shape the ``mc_accuracy`` column.  The display
        ``name`` is deliberately excluded: a re-labelled study evaluates
        the same grid and must reuse the same cached shards.
        """
        return {
            "axes": {n: list(self.axis_values(n)) for n in AXIS_ORDER},
            "mc_trials": self.mc_trials,
            "seed": self.seed,
        }

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-ready payload (canonical key order, explicit axes only)."""
        return {
            "name": self.name,
            "axes": {n: list(v) for n, v in self.axes.items()},
            "mc_trials": self.mc_trials,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ScenarioSpec":
        if not isinstance(payload, Mapping):
            raise ValidationError(f"spec payload must be an object, got {type(payload)}")
        unknown = set(payload) - {"name", "axes", "mc_trials", "seed"}
        if unknown:
            raise ValidationError(f"unknown spec keys {sorted(unknown)}")
        return cls(
            axes=dict(payload.get("axes", {})),
            name=str(payload.get("name", "study")),
            mc_trials=int(payload.get("mc_trials", 0)),
            seed=int(payload.get("seed", 0)),
        )

    def to_json(self) -> str:
        """Canonical JSON text of the spec (sorted keys, fixed separators).

        The wire format of the study service (``repro.service``): a spec
        round-trips exactly through ``from_json(spec.to_json())``, and two
        specs over the same grid serialize to the same bytes whenever their
        explicit axes match.
        """
        return canonical_line(self.to_dict())

    @classmethod
    def from_json(cls, text: str | bytes) -> "ScenarioSpec":
        """Parse a spec from JSON text (the inverse of :meth:`to_json`)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"spec text is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "ScenarioSpec":
        """Load a spec from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise ValidationError(f"spec file {path} is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def describe(self) -> str:
        """One-line human summary: ``12000 points: lps(2000) x accuracy(3) ...``"""
        scanned = [f"{n}({len(self.axis_values(n))})" for n in self.scanned_axes]
        grid = " x ".join(scanned) if scanned else "single point"
        return f"{self.num_points} points: {grid}"
