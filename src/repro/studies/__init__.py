"""Scenario studies: declarative parameter-space sweeps of the models.

The paper's headline claims are statements about *families* of operating
points — scaling, dominance, and crossover over problem size, accuracy,
success probability, and machine constants (Sec. 3.3, Fig. 9).  This
subsystem evaluates such families wholesale:

* :mod:`~repro.studies.spec` — a declarative :class:`ScenarioSpec` naming a
  cartesian grid over the model's axes, with stable point enumeration;
* :mod:`~repro.studies.executor` — a sharded, optionally multi-process
  runner whose results are byte-identical for any worker count;
* :mod:`~repro.studies.results` — the columnar :class:`StudyResults` table
  with its canonical JSON artifact and core-powered aggregations;
* :mod:`~repro.studies.reportgen` — dominance/crossover/scaling summary
  tables for reports and the CLI.
"""

from .executor import DEFAULT_SHARD_SIZE, run_study, shard_ranges
from .reportgen import dominance_summary, scaling_summary, study_summary
from .results import ARTIFACT_SCHEMA_VERSION, RESULT_COLUMNS, StudyResults
from .spec import AXIS_ORDER, Axis, ScenarioSpec, axis_default

__all__ = [
    "AXIS_ORDER",
    "Axis",
    "ScenarioSpec",
    "axis_default",
    "run_study",
    "shard_ranges",
    "DEFAULT_SHARD_SIZE",
    "StudyResults",
    "RESULT_COLUMNS",
    "ARTIFACT_SCHEMA_VERSION",
    "dominance_summary",
    "scaling_summary",
    "study_summary",
]
