"""Scenario studies: declarative parameter-space sweeps of the models.

The paper's headline claims are statements about *families* of operating
points — scaling, dominance, and crossover over problem size, accuracy,
success probability, and machine constants (Sec. 3.3, Fig. 9).  This
subsystem evaluates such families wholesale, through any registered
performance backend (:mod:`repro.backends`):

* :mod:`~repro.studies.spec` — a declarative :class:`ScenarioSpec` naming a
  cartesian grid over the model's axes (including the ``backend`` axis),
  with stable point enumeration;
* :mod:`~repro.studies.executor` — a sharded, optionally multi-process
  runner whose results are byte-identical for any worker count, dispatching
  each config block through its backend's batched ``sweep``;
* :mod:`~repro.studies.results` — the columnar :class:`StudyResults` table
  with its canonical JSON artifact, core-powered aggregations, and
  cross-backend deviation analysis;
* :mod:`~repro.studies.cache` — a content-addressed :class:`StudyCache`
  that serves previously computed shards byte-identically;
* :mod:`~repro.studies.reportgen` — dominance/crossover/scaling/backend
  summary tables for reports and the CLI.
"""

from .cache import StudyCache, study_key
from .executor import DEFAULT_SHARD_SIZE, RetryPolicy, run_study, shard_ranges
from .reportgen import (
    backend_summary,
    contention_summary,
    dominance_summary,
    scaling_summary,
    study_summary,
)
from .results import ARTIFACT_SCHEMA_VERSION, RESULT_COLUMNS, StudyResults
from .spec import AXIS_ORDER, Axis, ScenarioSpec, axis_default

__all__ = [
    "AXIS_ORDER",
    "Axis",
    "ScenarioSpec",
    "axis_default",
    "RetryPolicy",
    "run_study",
    "shard_ranges",
    "DEFAULT_SHARD_SIZE",
    "StudyCache",
    "study_key",
    "StudyResults",
    "RESULT_COLUMNS",
    "ARTIFACT_SCHEMA_VERSION",
    "backend_summary",
    "contention_summary",
    "dominance_summary",
    "scaling_summary",
    "study_summary",
]
