"""The study job server: ``http.server`` over the study executor.

Stdlib only — a :class:`ThreadingHTTPServer` accepting connections, a
:class:`~repro.service.jobs.JobManager` executing studies on a bounded
worker pool, and the canonical byte-stable artifact as the one response
payload that matters.  The determinism stack underneath (byte-identical
artifacts, content-addressed shard cache, content-hash job ids) is what
makes this server boring in the best way: responses are pure functions of
the submitted grid, submission is idempotent, and "serve it from cache"
is always byte-identical to "compute it again".

Request handling is thread-per-connection (``ThreadingHTTPServer``);
everything mutable lives behind the job manager's lock.  Study execution
never happens on a request thread — requests only enqueue, poll, and
serve bytes, so a heavy study cannot stall the health endpoint.

Embedding in-process (tests, notebooks)::

    with StudyServer(cache=StudyCache(dir)) as server:
        client = StudyServiceClient(server.url)
        ...

Standalone (the CLI's ``serve`` subcommand)::

    StudyServer(host, port, cache=...).run_forever()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .. import __version__
from ..backends import DEFAULT_BACKEND, available_backends, capabilities
from ..distributed.scheduler import DEFAULT_SCHEDULER
from ..exceptions import PushRejected, ValidationError
from ..faults import SITE_HTTP_CONNECTION, SITE_HTTP_SLOW, FaultPlan
from ..studies import StudyCache
from ..studies.executor import DEFAULT_SHARD_SIZE
from .jobs import JobManager, JobState
from .journal import JobJournal
from .protocol import (
    API_VERSION,
    ERR_INVALID_JSON,
    ERR_INVALID_SPEC,
    ERR_JOB_FAILED,
    ERR_JOB_NOT_READY,
    ERR_METHOD_NOT_ALLOWED,
    ERR_NOT_DISTRIBUTED,
    ERR_NOT_FOUND,
    ERR_SHARD_REJECTED,
    ERR_UNKNOWN_BACKEND,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_STUDY,
    HEADER_CACHE_SHARDS,
    HEADER_LEASE_ID,
    HEADER_SERVED_FROM_CACHE,
    HEADER_SHARD_DIGEST,
    HEADER_SHARD_INDEX,
    HEADER_SHARD_STUDY,
    HEADER_WORKER_ID,
    JOB_ID_PATTERN,
    MAX_PUSH_BYTES,
    RETRY_AFTER_SECONDS,
    ServiceError,
    dump_body,
    error_body,
    job_links,
)

__all__ = ["StudyServer"]

#: Reject request bodies larger than this (a spec is a few KB; anything
#: bigger is a mistake or abuse, not a study).
MAX_BODY_BYTES = 1 << 20


def _parse_spec(raw: bytes):
    """Decode and validate a submitted spec; raises :class:`ServiceError`."""
    from ..studies import ScenarioSpec

    try:
        payload = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServiceError(
            ERR_INVALID_JSON, f"request body is not valid JSON: {exc}", status=400
        ) from exc
    # Distinguish "you asked for a backend nobody registered" from every
    # other way a spec can be malformed — it is the one error a client can
    # fix by consulting GET /backends.
    if isinstance(payload, dict) and isinstance(payload.get("axes"), dict):
        requested = payload["axes"].get("backend")
        if isinstance(requested, (list, tuple)):
            known = available_backends()
            unknown = sorted(
                {str(v) for v in requested if not isinstance(v, str) or v not in known}
            )
            if unknown:
                raise ServiceError(
                    ERR_UNKNOWN_BACKEND,
                    f"unknown backends {unknown}; registered backends: {list(known)}",
                    status=400,
                )
    try:
        return ScenarioSpec.from_dict(payload)
    except ValidationError as exc:
        raise ServiceError(ERR_INVALID_SPEC, str(exc), status=400) from exc


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning server's job manager."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-study-service/{__version__}"
    sys_version = ""
    #: Per-connection socket timeout (covers request reads) so an abandoned
    #: or glacial connection cannot pin a handler thread forever; the
    #: instance value comes from ``StudyServer(request_timeout=)``.
    timeout = 60.0

    def setup(self) -> None:
        self.timeout = self.server.study_server.request_timeout  # type: ignore[attr-defined]
        super().setup()

    # -- plumbing ------------------------------------------------------- #
    @property
    def manager(self) -> JobManager:
        return self.server.study_server.manager  # type: ignore[attr-defined]

    def _inject_http_fault(self) -> bool:
        """Apply any active HTTP-site fault; True when the request was eaten.

        ``http-connection`` closes the connection before a status line is
        written (the client observes a reset / empty response);
        ``http-slow`` sleeps before normal handling continues.
        """
        plan = self.server.study_server.faults  # type: ignore[attr-defined]
        if plan is None:
            return False
        rule = plan.fires_counted(SITE_HTTP_CONNECTION)
        if rule is not None:
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            return True
        rule = plan.fires_counted(SITE_HTTP_SLOW)
        if rule is not None:
            time.sleep(rule.delay_s)
        return False

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log = self.server.study_server.log  # type: ignore[attr-defined]
        if log is not None:
            log(f"{self.address_string()} - {format % args}")

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict[str, str] | None = None
    ) -> None:
        self._send_bytes(status, dump_body(payload), extra_headers)

    def _send_bytes(
        self, status: int, body: bytes, extra_headers: dict[str, str] | None = None
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, exc: ServiceError, **details) -> None:
        # 429 advertises when to come back; the client's retry loop honors it.
        extra = {"Retry-After": str(RETRY_AFTER_SECONDS)} if exc.status == 429 else None
        self._send_bytes(exc.status, dump_body(error_body(exc.code, exc.message, **details)), extra)

    # -- routing -------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self._inject_http_fault():
            return
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            return self._get_healthz()
        if path == "/backends":
            return self._get_backends()
        if path == "/studies":
            return self._get_studies()
        parts = path.strip("/").split("/")
        if parts[0] == "studies" and len(parts) == 2:
            return self._get_status(parts[1])
        if parts[0] == "studies" and len(parts) == 3 and parts[2] == "artifact":
            return self._get_artifact(parts[1])
        self._send_json(404, error_body(ERR_NOT_FOUND, f"no route for {path!r}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self._inject_http_fault():
            return
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/distributed/lease":
            return self._post_lease()
        if path == "/distributed/push":
            return self._post_push()
        if path == "/distributed/fail":
            return self._post_fail()
        if path != "/studies":
            self._send_json(404, error_body(ERR_NOT_FOUND, f"no route for {path!r}"))
            return
        raw = self._read_body()
        if raw is None:
            return
        try:
            spec = _parse_spec(raw)
            snapshot, deduplicated = self.manager.submit(spec)
        except ServiceError as exc:
            self._send_error_body(exc)
            return
        body = {
            "api_version": API_VERSION,
            "deduplicated": deduplicated,
            "links": job_links(snapshot["job_id"]),
            **snapshot,
        }
        self._send_json(200 if deduplicated else 202, body)

    def _read_body(self, limit: int = MAX_BODY_BYTES) -> bytes | None:
        """The request body, or None after a 400 was already sent."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if not 0 <= length <= limit:
            self._send_json(
                400,
                error_body(
                    ERR_INVALID_JSON,
                    f"Content-Length must be between 0 and {limit} bytes",
                ),
            )
            return None
        return self.rfile.read(length)

    # -- the distributed worker verbs ----------------------------------- #
    def _coordinator_or_409(self):
        coordinator = self.server.study_server.coordinator  # type: ignore[attr-defined]
        if coordinator is None:
            self._send_json(
                409,
                error_body(
                    ERR_NOT_DISTRIBUTED,
                    "this server has no shard coordinator; "
                    "start it with distributed dispatch enabled",
                ),
            )
        return coordinator

    def _post_lease(self) -> None:
        coordinator = self._coordinator_or_409()
        if coordinator is None:
            return
        raw = self._read_body()
        if raw is None:
            return
        try:
            payload = json.loads(raw or b"{}")
            worker_id = payload.get("worker_id", "") if isinstance(payload, dict) else ""
            lease = coordinator.lease(str(worker_id))
        except (json.JSONDecodeError, UnicodeDecodeError, ValidationError) as exc:
            self._send_json(400, error_body(ERR_INVALID_JSON, str(exc)))
            return
        self._send_json(200, {"api_version": API_VERSION, "lease": lease})

    def _post_push(self) -> None:
        coordinator = self._coordinator_or_409()
        if coordinator is None:
            return
        raw = self._read_body(limit=MAX_PUSH_BYTES)
        if raw is None:
            return
        study_id = self.headers.get(HEADER_SHARD_STUDY, "")
        if not coordinator.has_study(study_id):
            self._send_json(
                404,
                error_body(ERR_UNKNOWN_STUDY, f"no registered study {study_id!r}"),
            )
            return
        try:
            shard_index = int(self.headers.get(HEADER_SHARD_INDEX, ""))
        except ValueError:
            self._send_json(
                400,
                error_body(
                    ERR_INVALID_JSON, f"{HEADER_SHARD_INDEX} must be an integer"
                ),
            )
            return
        try:
            body = coordinator.push(
                study_id,
                shard_index,
                raw,
                self.headers.get(HEADER_SHARD_DIGEST, ""),
                worker_id=self.headers.get(HEADER_WORKER_ID, ""),
                lease_id=self.headers.get(HEADER_LEASE_ID),
            )
        except PushRejected as exc:
            self._send_json(
                409, error_body(ERR_SHARD_REJECTED, str(exc), reason=exc.reason)
            )
            return
        except ValidationError as exc:
            self._send_json(400, error_body(ERR_INVALID_JSON, str(exc)))
            return
        self._send_json(200, {"api_version": API_VERSION, **body})

    def _post_fail(self) -> None:
        coordinator = self._coordinator_or_409()
        if coordinator is None:
            return
        raw = self._read_body()
        if raw is None:
            return
        try:
            payload = json.loads(raw or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._send_json(400, error_body(ERR_INVALID_JSON, str(exc)))
            return
        lease_id = payload.get("lease_id", "") if isinstance(payload, dict) else ""
        message = payload.get("message", "") if isinstance(payload, dict) else ""
        coordinator.fail(str(lease_id), str(message) or "worker reported failure")
        self._send_json(200, {"api_version": API_VERSION, "ok": True})

    def _method_not_allowed(self) -> None:
        self._send_json(
            405,
            error_body(
                ERR_METHOD_NOT_ALLOWED, f"{self.command} is not supported on {self.path!r}"
            ),
        )

    do_PUT = do_DELETE = do_PATCH = _method_not_allowed

    # -- endpoints ------------------------------------------------------ #
    def _get_healthz(self) -> None:
        coordinator = self.server.study_server.coordinator  # type: ignore[attr-defined]
        self._send_json(
            200,
            {
                "status": "ok",
                "api_version": API_VERSION,
                "jobs": self.manager.counts(),
                "queue_capacity": self.manager.queue_capacity,
                "recovered_jobs": self.manager.recovered_jobs,
                "distributed": None if coordinator is None else coordinator.health(),
            },
        )

    def _get_studies(self) -> None:
        jobs = self.manager.list_jobs()
        self._send_json(
            200, {"api_version": API_VERSION, "count": len(jobs), "jobs": jobs}
        )

    def _get_backends(self) -> None:
        entries = []
        for name in available_backends():
            caps = capabilities(name)
            entries.append(
                {
                    "name": name,
                    "description": caps.description,
                    "rtol": caps.rtol,
                    "atol": caps.atol,
                    "supported_axes": sorted(caps.supported_axes),
                }
            )
        self._send_json(
            200, {"api_version": API_VERSION, "default": DEFAULT_BACKEND, "backends": entries}
        )

    def _lookup(self, job_id: str) -> dict | None:
        if not JOB_ID_PATTERN.match(job_id):
            return None
        return self.manager.status(job_id)

    def _get_status(self, job_id: str) -> None:
        snapshot = self._lookup(job_id)
        if snapshot is None:
            self._send_json(
                404, error_body(ERR_UNKNOWN_JOB, f"no job with id {job_id!r}")
            )
            return
        self._send_json(
            200, {"api_version": API_VERSION, "links": job_links(job_id), **snapshot}
        )

    def _get_artifact(self, job_id: str) -> None:
        found = None
        if JOB_ID_PATTERN.match(job_id):
            found = self.manager.artifact(job_id)
        if found is None:
            self._send_json(
                404, error_body(ERR_UNKNOWN_JOB, f"no job with id {job_id!r}")
            )
            return
        artifact, snapshot = found
        state = snapshot["state"]
        if state == JobState.FAILED.value:
            self._send_json(
                409,
                error_body(
                    ERR_JOB_FAILED,
                    f"job {job_id} failed; see its status error field",
                    job_error=snapshot["error"],
                ),
            )
            return
        if artifact is None:
            self._send_json(
                409,
                error_body(
                    ERR_JOB_NOT_READY,
                    f"job {job_id} is {state}; poll its status until done",
                    state=state,
                ),
            )
            return
        progress = snapshot["progress"]
        self._send_bytes(
            200,
            artifact,
            {
                "ETag": f'"{job_id}"',
                HEADER_SERVED_FROM_CACHE: "true" if snapshot["served_from_cache"] else "false",
                HEADER_CACHE_SHARDS: (
                    f"{progress['shards_from_cache']}/{progress['shards_total']}"
                ),
            },
        )


class StudyServer:
    """The assembled service: HTTP front end + job manager back end.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` picks an ephemeral port (read it back
        from :attr:`port` / :attr:`url`) — what the tests and the CI smoke
        use so parallel runs never collide.
    cache:
        A :class:`StudyCache`, a directory path to back one, or ``None``
        to serve without a shard store (jobs still deduplicate in-process
        by content-hash id).
    queue_size, job_workers, executor_workers, shard_size, vectorize:
        Forwarded to :class:`JobManager`.
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or path):
        durable job state, replayed on construction so a restarted server
        re-serves finished grids and completes interrupted ones (see
        :class:`JobManager`).
    request_timeout:
        Per-connection socket timeout in seconds, covering request reads —
        a client that connects and never sends a request cannot pin a
        handler thread.
    faults:
        Optional :class:`~repro.faults.FaultPlan` for the HTTP injection
        sites (connection reset, slow response).  Defaults to the
        ``REPRO_FAULTS`` environment hook, which is how the e2e chaos
        smoke injects faults into a stock server process.
    distributed:
        Enable the shard coordinator: jobs execute by leasing shards to
        pulled workers (the ``/distributed/*`` routes) instead of the
        in-process executor pool, with an inline drain guaranteeing
        liveness when no fleet is attached.  The artifact bytes are
        identical either way — that is the point.
    scheduler, lease_ttl_s:
        Coordinator dispatch strategy and lease lifetime (distributed
        mode only); see :class:`~repro.distributed.ShardCoordinator`.
    log:
        Optional callable receiving one line per handled request; ``None``
        keeps the server silent (the test default).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache: StudyCache | str | Path | None = None,
        queue_size: int = 64,
        job_workers: int = 2,
        executor_workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        vectorize: bool = True,
        max_retained_jobs: int = 1024,
        journal: JobJournal | str | Path | None = None,
        request_timeout: float = 60.0,
        faults: FaultPlan | None = None,
        log=None,
        distributed: bool = False,
        scheduler: str = DEFAULT_SCHEDULER,
        lease_ttl_s: float = 30.0,
    ) -> None:
        if isinstance(cache, (str, Path)):
            cache = StudyCache(cache)
        self.cache = cache
        self.log = log
        if request_timeout <= 0:
            raise ValidationError(f"request_timeout must be > 0, got {request_timeout}")
        self.request_timeout = request_timeout
        self.faults = FaultPlan.from_env() if faults is None else faults
        if distributed:
            from ..distributed import ShardCoordinator

            self.coordinator = ShardCoordinator(
                cache=cache,
                scheduler=scheduler,
                lease_ttl_s=lease_ttl_s,
                vectorize=vectorize,
            )
        else:
            self.coordinator = None
        self.manager = JobManager(
            cache=cache,
            queue_size=queue_size,
            job_workers=job_workers,
            executor_workers=executor_workers,
            shard_size=shard_size,
            vectorize=vectorize,
            max_retained_jobs=max_retained_jobs,
            journal=journal,
            coordinator=self.coordinator,
        )
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.study_server = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def start(self) -> "StudyServer":
        """Start the job workers and serve requests on a background thread."""
        self.manager.start()
        if self._serve_thread is None:
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever, name="study-http-server", daemon=True
            )
            self._serve_thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and the job workers (in that order)."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join()
            self._serve_thread = None
        self.manager.stop()

    def run_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI path)."""
        self.manager.start()
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self._httpd.server_close()
            self.manager.stop()

    def __enter__(self) -> "StudyServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
