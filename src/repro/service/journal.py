"""Durable job journal: append-only JSONL the server replays on restart.

The job table in :class:`~repro.service.jobs.JobManager` is in-memory;
without a journal, killing the server forgets every job.  With one, each
lifecycle event is appended as a single canonical-JSON line
(:func:`repro._json.canonical_line`) and fsync'd before the state change
is acknowledged, so the file survives ``kill -9``:

``{"event": "submitted", "job_id": ..., "spec": {...}, "shard_size": ..., "unix": ...}``
    A new job entered the queue (the only event carrying the spec).
``{"event": "running", "job_id": ...}``
    A worker picked the job up.
``{"event": "done", "job_id": ..., "unix": ...}`` /
``{"event": "failed", "job_id": ..., "error": {...}, "unix": ...}``
    Terminal states.  Artifact bytes are *not* journaled — they are a
    pure function of the spec, so recovery re-derives them (through the
    :class:`~repro.studies.StudyCache` this is a re-serve, not a
    recompute) and the determinism contract guarantees identical bytes.

**Replay** folds the event stream into one record per job — last state
wins, spec and submission time from the ``submitted`` event — preserving
submission order.  A job may legitimately cycle ``running``/``done``
more than once in the file (each recovery re-runs non-failed jobs and
appends fresh events); replay handles that by construction.

**Corrupt-tail tolerance.**  ``kill -9`` can tear the final line.  Reads
stop at the first unparsable line and trust everything before it; the
next append simply extends the file (a torn tail is at worst one lost
*event*, never a corrupted table — and the very same grid resubmits
idempotently under the same content-hash id anyway).
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Mapping
from pathlib import Path

from .._json import canonical_line

__all__ = ["JobJournal"]


class JobJournal:
    """An append-only JSONL event log backing one :class:`JobManager`.

    Thread-safe; appends hold a lock across write+flush+fsync so lines
    never interleave.  The file handle opens lazily on first append and
    the journal can be re-read at any time (reads go through the path,
    not the handle).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = None
        self._lock = threading.Lock()

    def append(self, record: Mapping) -> None:
        """Durably append one event (canonical JSON line, fsync'd)."""
        line = canonical_line(dict(record)).encode("utf-8")
        with self._lock:
            if self._file is None:
                self._file = open(self.path, "ab")
            self._file.write(line)
            self._file.flush()
            os.fsync(self._file.fileno())

    def load(self) -> list[dict]:
        """Every trusted event, oldest first; stops at the first corrupt line."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return []
        records: list[dict] = []
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail (or worse): trust nothing at or after it
            if not isinstance(record, dict) or "event" not in record:
                break
            records.append(record)
        return records

    @staticmethod
    def replay(records: list[dict]) -> dict[str, dict]:
        """Fold events into ``{job_id: {spec, shard_size, state, error, ...}}``.

        Jobs appear in submission order.  Events for ids never submitted
        (possible only with a hand-edited file) are ignored.
        """
        jobs: dict[str, dict] = {}
        for record in records:
            event = record.get("event")
            job_id = record.get("job_id")
            if event == "submitted":
                if not isinstance(record.get("spec"), dict):
                    continue
                jobs[job_id] = {
                    "spec": record["spec"],
                    "shard_size": record.get("shard_size"),
                    "state": "queued",
                    "error": None,
                    "submitted_unix": record.get("unix"),
                    "finished_unix": None,
                }
            elif event in ("running", "done", "failed") and job_id in jobs:
                jobs[job_id]["state"] = event if event != "running" else "running"
                if event == "failed":
                    jobs[job_id]["error"] = record.get("error")
                if event in ("done", "failed"):
                    jobs[job_id]["finished_unix"] = record.get("unix")
                else:
                    jobs[job_id]["finished_unix"] = None
        return jobs

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __repr__(self) -> str:  # pragma: no cover - debug nicety
        return f"JobJournal({str(self.path)!r})"
