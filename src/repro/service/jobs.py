"""The study job manager: a bounded queue of deterministic study runs.

A :class:`Job` is one execution of :func:`repro.studies.run_study` for one
:class:`~repro.studies.ScenarioSpec`.  Its identity *is* the study's
content address (:func:`repro.studies.cache.study_key` over the effective
grid + shard grid + column schema + code version), which buys three
properties the HTTP layer leans on:

* **idempotent submission** — the same grid submitted twice is the same
  job; the second submission attaches to the first (``deduplicated``),
  whatever state it is in, and never re-executes anything;
* **deterministic state transitions** — ``queued -> running -> done``
  or ``queued -> running -> failed``, enforced by :meth:`Job.transition`;
  a job can never move backwards or skip ``running``;
* **honest cache accounting** — per-shard progress distinguishes shards
  served from the content-addressed :class:`~repro.studies.StudyCache`
  from shards actually computed, so an artifact response can truthfully
  declare whether it was answered without re-execution.

Execution happens on a small pool of daemon worker threads consuming a
bounded :class:`queue.Queue`; a full queue rejects the submission (the
HTTP layer maps that to 429) instead of buffering unboundedly.  Finished
jobs are equally bounded: beyond ``max_retained_jobs`` the oldest-finished
entries (artifact bytes included) are evicted — with a ``StudyCache``
configured their bytes remain reproducible for free, so an evicted grid
simply resubmits as a fresh cache-served job.

With a :class:`~repro.service.journal.JobJournal` configured, every
lifecycle event is durably appended before it is acknowledged, and a
fresh manager over the same journal *recovers* the job table: failed
jobs are restored as failed (error preserved), everything else —
queued, interrupted ``running``, and finished ``done`` jobs alike — is
re-queued and re-executed.  Through a shared ``StudyCache`` that
re-execution is a byte-identical re-serve of every previously computed
shard, which is exactly how a restarted server re-serves finished grids
with identical bytes and completes the interrupted ones.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from ..exceptions import ValidationError
from ..studies import ScenarioSpec, StudyCache, run_study, shard_ranges, study_key
from ..studies.executor import DEFAULT_SHARD_SIZE
from .journal import JobJournal
from .protocol import ERR_EXECUTION, ERR_QUEUE_FULL, ServiceError

__all__ = ["Job", "JobManager", "JobState"]


class JobState(str, Enum):
    """Lifecycle of one study job (transitions only ever move rightwards)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: The legal transition edges.  Everything else is a programming error.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING}),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
}


@dataclass
class Job:
    """One study execution and its observable progress.

    Mutable fields are only touched under the owning manager's lock; the
    HTTP layer reads consistent snapshots via :meth:`snapshot`.
    """

    job_id: str
    spec: ScenarioSpec
    shard_size: int
    state: JobState = JobState.QUEUED
    shards_total: int = 0
    shards_done: int = 0
    shards_from_cache: int = 0
    artifact: bytes | None = None
    error: dict | None = None
    #: Shards landed per worker id (distributed dispatch only; cache-served
    #: shards attribute to ``"<cache>"``, inline-drained ones to
    #: ``"<coordinator>"``).  Empty for local ProcessPool execution.
    worker_shards: dict = field(default_factory=dict)
    #: Wall-clock submission/finish times (unix seconds).  Observability
    #: only — they live in status snapshots and the journal, never in the
    #: artifact, which stays free of volatile fields.
    submitted_unix: float = 0.0
    finished_unix: float | None = None

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``; illegal edges raise (never silently skip)."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ValidationError(
                f"illegal job transition {self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def shards_computed(self) -> int:
        return self.shards_done - self.shards_from_cache

    @property
    def served_from_cache(self) -> bool:
        """Whether this job's bytes were produced without executing a shard."""
        return self.state is JobState.DONE and self.shards_computed == 0

    def snapshot(self) -> dict:
        """A JSON-ready status view (no artifact bytes; those have their own route)."""
        return {
            "job_id": self.job_id,
            "name": self.spec.name,
            "state": self.state.value,
            "num_points": self.spec.num_points,
            "shard_size": self.shard_size,
            "progress": {
                "shards_done": self.shards_done,
                "shards_total": self.shards_total,
                "shards_from_cache": self.shards_from_cache,
                "workers": dict(sorted(self.worker_shards.items())),
            },
            "served_from_cache": self.served_from_cache,
            "error": self.error,
            "submitted_unix": self.submitted_unix,
            "finished_unix": self.finished_unix,
        }


class JobManager:
    """Owns the job table, the bounded queue, and the worker threads.

    Parameters
    ----------
    cache:
        Optional shard store shared by every job.  With a cache, a job
        whose grid was ever computed before (by any prior job, process, or
        server) is served byte-identically without re-executing shards.
    queue_size:
        Bound on jobs waiting to run.  A full queue rejects submissions
        with :data:`~repro.service.protocol.ERR_QUEUE_FULL`.
    job_workers:
        Worker threads executing jobs.  ``0`` starts none — submissions
        queue up but never run (used by tests to observe ``queued`` state
        and queue overflow deterministically).
    executor_workers / shard_size / vectorize:
        Passed through to :func:`repro.studies.run_study` for every job.
        ``shard_size`` is part of each job's identity (it partitions the
        Monte-Carlo streams), so one service instance uses one value.
    max_retained_jobs:
        Retention bound on *finished* jobs (done or failed).  Beyond it the
        oldest-finished jobs (artifact bytes included) are evicted from the
        in-memory table, so a long-running server cannot grow without
        bound; an evicted grid resubmits as a fresh job whose shards the
        ``StudyCache`` serves byte-identically.
    coordinator:
        Optional :class:`~repro.distributed.ShardCoordinator`.  With one,
        jobs execute by *registering* their shard grid for distributed
        dispatch instead of calling :func:`run_study` — attached workers
        pull leases and push verified shard bytes, and the job's progress
        gains per-worker attribution.  Liveness is never hostage to the
        fleet: with no workers attached (or a stalled fleet — no lease or
        landing activity for a full lease TTL) the manager drains the
        remaining shards inline, which is byte-identical by construction.
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or a path to
        back one).  Lifecycle events are durably appended, and this
        constructor *replays* any existing journal into the job table
        before the workers start: failed jobs are restored as failed,
        everything else is re-queued (recovered jobs that would overflow
        the bounded queue are left in the journal for a roomier restart).
        Recovery skips entries whose recorded job id no longer matches the
        recomputed content hash — a code-version bump retires stale
        journal entries exactly like it retires stale cache entries.
    """

    def __init__(
        self,
        cache: StudyCache | None = None,
        queue_size: int = 64,
        job_workers: int = 2,
        executor_workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        vectorize: bool = True,
        max_retained_jobs: int = 1024,
        journal: JobJournal | str | Path | None = None,
        coordinator=None,
    ) -> None:
        if queue_size < 1:
            raise ValidationError(f"queue_size must be >= 1, got {queue_size}")
        if job_workers < 0:
            raise ValidationError(f"job_workers must be >= 0, got {job_workers}")
        if max_retained_jobs < 1:
            raise ValidationError(
                f"max_retained_jobs must be >= 1, got {max_retained_jobs}"
            )
        self.cache = cache
        self.shard_size = shard_size
        self.executor_workers = executor_workers
        self.vectorize = vectorize
        self.max_retained_jobs = max_retained_jobs
        self.coordinator = coordinator
        self._queue: queue.Queue[Job | None] = queue.Queue(maxsize=queue_size)
        self._jobs: dict[str, Job] = {}
        self._finished_order: deque[str] = deque()
        self._lock = threading.RLock()
        self._threads: list[threading.Thread] = []
        self._job_workers = job_workers
        self._started = False
        self._stopping = False
        #: Total shards actually computed (not cache-served) across all jobs —
        #: what the "no re-execution" tests assert against.
        self.executed_shards = 0
        if isinstance(journal, (str, Path)):
            journal = JobJournal(journal)
        self.journal = journal
        #: Jobs rebuilt from the journal by this manager (health telemetry).
        self.recovered_jobs = 0
        if self.journal is not None:
            self._recover()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            for i in range(self._job_workers):
                thread = threading.Thread(
                    target=self._worker, name=f"study-job-worker-{i}", daemon=True
                )
                thread.start()
                self._threads.append(thread)

    def stop(self) -> None:
        """Stop the workers (idle ones exit immediately; busy ones finish
        their current job first).  Queued jobs stay queued — the backlog
        is *not* executed on the way down."""
        with self._lock:
            threads, self._threads = self._threads, []
            self._started = False
            self._stopping = True
        try:
            # Drain unstarted jobs so the sentinel puts below cannot block on
            # a full queue and no worker picks up new work (jobs stay QUEUED
            # in the table); a worker that races a job out of the queue here
            # sees the stopping flag and re-queues nothing.
            while True:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    break
            for _ in threads:
                self._queue.put(None)
            for thread in threads:
                thread.join()
        finally:
            self._stopping = False

    # ------------------------------------------------------------------ #
    # Submission / lookup
    # ------------------------------------------------------------------ #
    def submit(self, spec: ScenarioSpec) -> tuple[dict, bool]:
        """Enqueue ``spec``; returns ``(status_snapshot, deduplicated)``.

        Identical grids (same :func:`study_key`) deduplicate onto the
        existing job regardless of its state.  A full queue raises
        :class:`ServiceError` with :data:`ERR_QUEUE_FULL`.
        """
        job_id = study_key(spec, self.shard_size)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                return existing.snapshot(), True
            job = Job(
                job_id=job_id,
                spec=spec,
                shard_size=self.shard_size,
                shards_total=len(shard_ranges(spec.num_points, self.shard_size)),
                submitted_unix=time.time(),
            )
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                raise ServiceError(
                    ERR_QUEUE_FULL,
                    f"job queue is full ({self._queue.maxsize} pending); retry later",
                    status=429,
                ) from None
            self._jobs[job_id] = job
            self._journal_event(
                "submitted",
                job,
                spec=spec.to_dict(),
                shard_size=job.shard_size,
                unix=job.submitted_unix,
            )
            return job.snapshot(), False

    def status(self, job_id: str) -> dict | None:
        """Status snapshot of ``job_id``, or ``None`` if unknown."""
        with self._lock:
            job = self._jobs.get(job_id)
            return None if job is None else job.snapshot()

    def artifact(self, job_id: str) -> tuple[bytes, dict] | None:
        """``(artifact_bytes, status_snapshot)`` of ``job_id``, or ``None``.

        Only meaningful for ``done`` jobs; callers branch on the snapshot's
        state for the not-ready/failed responses.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return job.artifact, job.snapshot()

    def counts(self) -> dict[str, int]:
        """Jobs per state (the health endpoint's queue gauge)."""
        with self._lock:
            out = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                out[job.state.value] += 1
            return out

    def list_jobs(self) -> list[dict]:
        """Status snapshots of every known job, oldest submission first."""
        with self._lock:
            snapshots = [job.snapshot() for job in self._jobs.values()]
        snapshots.sort(key=lambda s: (s["submitted_unix"], s["job_id"]))
        return snapshots

    @property
    def queue_capacity(self) -> int:
        return self._queue.maxsize

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            if self._stopping:
                continue  # shutdown in progress: leave the job queued, await sentinel
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            job.transition(JobState.RUNNING)
            self._journal_event("running", job)

        def on_progress(shard_index: int, from_cache: bool, done: int, total: int) -> None:
            with self._lock:
                job.shards_done = done
                job.shards_total = total
                if from_cache:
                    job.shards_from_cache += 1
                else:
                    self.executed_shards += 1

        try:
            if self.coordinator is not None:
                results = self._run_distributed(job)
            else:
                results = run_study(
                    job.spec,
                    workers=self.executor_workers,
                    shard_size=job.shard_size,
                    vectorize=self.vectorize,
                    cache=self.cache,
                    progress=on_progress,
                )
            artifact = results.artifact_bytes()
        except Exception as exc:  # noqa: BLE001 - jobs must never kill a worker
            with self._lock:
                job.error = {"code": ERR_EXECUTION, "message": str(exc)}
                job.finished_unix = time.time()
                job.transition(JobState.FAILED)
                self._journal_event("failed", job, error=job.error, unix=job.finished_unix)
                self._retire(job)
            return
        with self._lock:
            job.artifact = artifact
            job.finished_unix = time.time()
            job.transition(JobState.DONE)
            self._journal_event("done", job, unix=job.finished_unix)
            self._retire(job)

    def _run_distributed(self, job: Job):
        """Execute one job through the shard coordinator.

        Registers the study under the job's content-address id, feeds the
        coordinator's per-shard progress (worker attribution included)
        into the job record, and waits.  If the fleet goes quiet — no
        worker ever attached, or a full lease TTL passes with no lease or
        landing activity — the remaining shards are drained inline, so a
        distributed server never hangs a job on an absent fleet; a
        straggling worker's late duplicates stay idempotent.
        """
        coordinator = self.coordinator

        def on_progress(
            shard_index: int, from_cache: bool, done: int, total: int,
            worker_id: str | None,
        ) -> None:
            with self._lock:
                job.shards_done = done
                job.shards_total = total
                if from_cache:
                    job.shards_from_cache += 1
                else:
                    self.executed_shards += 1
                owner = "<cache>" if from_cache else (worker_id or "<coordinator>")
                job.worker_shards[owner] = job.worker_shards.get(owner, 0) + 1

        coordinator.register_study(
            job.spec,
            shard_size=job.shard_size,
            study_id=job.job_id,
            progress=on_progress,
            vectorize=self.vectorize,
        )
        stall_s = max(coordinator.lease_ttl_s, 1.0)
        last_activity = None
        while True:
            try:
                return coordinator.wait(job.job_id, timeout=stall_s)
            except TimeoutError:
                snapshot = coordinator.progress_snapshot(job.job_id)
                health = coordinator.health()
                activity = (
                    snapshot["done"], health["leases_granted"], health["workers"]
                )
                if health["workers"] == 0 or activity == last_activity:
                    coordinator.drain_inline(job.job_id)
                    return coordinator.wait(job.job_id, timeout=stall_s)
                last_activity = activity

    def _retire(self, job: Job) -> None:
        """Record a finished job and evict beyond the retention bound (locked)."""
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.max_retained_jobs:
            self._jobs.pop(self._finished_order.popleft(), None)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    def _journal_event(self, event: str, job: Job, **fields) -> None:
        if self.journal is not None:
            self.journal.append({"event": event, "job_id": job.job_id, **fields})

    def _recover(self) -> None:
        """Rebuild the job table from the journal (constructor-time, unlocked).

        Failed jobs come back as failed records.  Every other journaled
        job — queued, interrupted ``running``, or ``done`` — is re-queued
        for execution: artifact bytes are never journaled, but they are a
        pure function of the spec, so re-running (through the shared
        ``StudyCache``, a pure re-serve for finished grids) reproduces
        them byte-identically.
        """
        for job_id, record in JobJournal.replay(self.journal.load()).items():
            try:
                spec = ScenarioSpec.from_dict(record["spec"])
            except ValidationError:
                continue  # e.g. a custom backend not registered in this process
            shard_size = record["shard_size"]
            if not isinstance(shard_size, int) or study_key(spec, shard_size) != job_id:
                continue  # stale code version or hand-edited journal: distrust
            job = Job(
                job_id=job_id,
                spec=spec,
                shard_size=shard_size,
                shards_total=len(shard_ranges(spec.num_points, shard_size)),
                submitted_unix=float(record["submitted_unix"] or 0.0),
            )
            if record["state"] == "failed":
                job.state = JobState.FAILED
                job.error = record["error"]
                finished = record["finished_unix"]
                job.finished_unix = None if finished is None else float(finished)
                self._jobs[job_id] = job
                self._finished_order.append(job_id)
            else:
                try:
                    self._queue.put_nowait(job)
                except queue.Full:
                    continue  # stays in the journal for a roomier restart
                self._jobs[job_id] = job
            self.recovered_jobs += 1
