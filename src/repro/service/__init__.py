"""The study service: an async job server over the study executor.

The ROADMAP's serving story, built from parts the repo already pinned
down: :func:`repro.studies.run_study` produces *byte-stable* artifacts,
the content-addressed :class:`~repro.studies.StudyCache` makes recomputing
a known grid free, and :func:`~repro.studies.cache.study_key` gives every
grid a content-hash identity.  This package puts an HTTP face on that
stack — stdlib only, no new runtime dependencies:

* :mod:`~repro.service.protocol` — routes, headers, structured error
  codes, and the :class:`ServiceError` both sides share;
* :mod:`~repro.service.jobs` — the :class:`JobManager`: a bounded queue of
  :class:`Job` records with deterministic ``queued -> running ->
  done/failed`` transitions, executed on a small worker-thread pool, with
  per-shard progress and honest cache accounting;
* :mod:`~repro.service.journal` — the :class:`JobJournal`: an append-only,
  fsync'd JSONL event log the manager replays on restart, so job state
  survives ``kill -9`` (finished grids re-serve byte-identically through
  the cache; interrupted jobs re-queue);
* :mod:`~repro.service.server` — :class:`StudyServer`, the
  ``ThreadingHTTPServer`` front end (``POST /studies``, ``GET /studies``,
  ``GET /studies/<id>``, ``GET /studies/<id>/artifact``, ``GET
  /backends``, ``GET /healthz``);
* :mod:`~repro.service.client` — :class:`StudyServiceClient`, the
  ``urllib``-based client the ``cli submit`` subcommand drives, with
  bounded retry/backoff on transient failures (safe because job ids are
  content hashes — a retried submission deduplicates, never re-executes).

The load-bearing property, asserted end to end by ``tests/test_service.py``
and smoked by ``scripts/ci_check.sh``: an HTTP-served artifact is
**byte-identical** to a direct ``run_study(...).save(...)`` of the same
spec, and a repeated submission is answered from the job table / shard
cache without re-executing anything (the
``X-Study-Served-From-Cache`` header says so truthfully).
"""

from .client import ArtifactResponse, StudyServiceClient
from .jobs import Job, JobManager, JobState
from .journal import JobJournal
from .protocol import API_VERSION, ServiceError
from .server import StudyServer

__all__ = [
    "API_VERSION",
    "ArtifactResponse",
    "Job",
    "JobJournal",
    "JobManager",
    "JobState",
    "ServiceError",
    "StudyServer",
    "StudyServiceClient",
]
