"""The study service's wire protocol: routes, headers, and error bodies.

One module both sides import, so the server's responses and the client's
expectations can never drift apart — and so tests can assert against the
same constants the implementation uses.

**Endpoints** (all bodies are JSON):

========  ===========================  ==========================================
method    path                         meaning
========  ===========================  ==========================================
POST      ``/studies``                 submit a :class:`~repro.studies.ScenarioSpec`
                                       payload; 202 with the job id (200 when the
                                       identical grid is already a known job)
GET       ``/studies``                 list every known job (state + timestamps),
                                       oldest submission first — the view that
                                       makes journal recovery observable
GET       ``/studies/<id>``            job status + per-shard progress
GET       ``/studies/<id>/artifact``   the canonical byte-stable results artifact
GET       ``/backends``                the performance-backend registry
GET       ``/healthz``                 liveness + job-queue counters (plus the
                                       coordinator's fleet/lease gauges when
                                       distributed dispatch is enabled)
POST      ``/distributed/lease``       worker pull: one shard lease descriptor,
                                       or ``{"lease": null}`` when idle
POST      ``/distributed/push``        worker push: raw shard bytes (the
                                       ``X-Shard-*`` headers carry identity and
                                       digest); 409 ``shard-rejected`` on a
                                       failed verification, which requeues
POST      ``/distributed/fail``        cooperative failure report for a lease
========  ===========================  ==========================================

The three ``/distributed`` routes exist only on a coordinator-enabled
server (``cli coordinate`` / ``StudyServer(distributed=True)``); a plain
job server answers them with 409 ``not-distributed``.  Push bodies are
raw structured-array shard bytes, not JSON — their size bound is
:data:`MAX_PUSH_BYTES`, separate from the spec-sized default body limit.

**Backpressure is advertised.**  A 429 (``queue-full``) response carries
``Retry-After: <seconds>`` (:data:`RETRY_AFTER_SECONDS`); the client's
bounded retry loop honors it before its own backoff schedule.

**Job ids are content addresses.**  A job id is
:func:`repro.studies.cache.study_key` — the sha256 of the spec's effective
grid, the shard grid, the column schema, and the code version.  Identical
grids map to the same job by construction (submission is idempotent), and
an artifact response can be cached forever under its id.

**Errors are structured.**  Every non-2xx response body is::

    {"error": {"code": "<machine-readable-slug>", "message": "<human text>"}}

(plus optional detail fields), with the code drawn from the ``ERR_*``
constants below.  Clients dispatch on the code, never on message text.
"""

from __future__ import annotations

import re

from .._json import canonical_line

__all__ = [
    "API_VERSION",
    "RETRY_AFTER_SECONDS",
    "HEADER_CACHE_SHARDS",
    "HEADER_SERVED_FROM_CACHE",
    "ERR_INVALID_JSON",
    "ERR_INVALID_SPEC",
    "ERR_UNKNOWN_BACKEND",
    "ERR_UNKNOWN_JOB",
    "ERR_JOB_NOT_READY",
    "ERR_JOB_FAILED",
    "ERR_QUEUE_FULL",
    "ERR_NOT_FOUND",
    "ERR_METHOD_NOT_ALLOWED",
    "ERR_EXECUTION",
    "ERR_CONNECTION",
    "ERR_TIMEOUT",
    "ERR_SHARD_REJECTED",
    "ERR_UNKNOWN_STUDY",
    "ERR_NOT_DISTRIBUTED",
    "HEADER_SHARD_STUDY",
    "HEADER_SHARD_INDEX",
    "HEADER_SHARD_DIGEST",
    "HEADER_LEASE_ID",
    "HEADER_WORKER_ID",
    "MAX_PUSH_BYTES",
    "JOB_ID_PATTERN",
    "ServiceError",
    "dump_body",
    "error_body",
    "job_links",
]

API_VERSION = 1

#: Seconds a 429 response tells the client to wait (the Retry-After header).
RETRY_AFTER_SECONDS = 1

#: ``true`` on an artifact response whose job executed zero shards — every
#: shard was served from the content-addressed :class:`StudyCache` (or the
#: request deduplicated onto an already-completed job), i.e. the bytes were
#: answered without re-execution.
HEADER_SERVED_FROM_CACHE = "X-Study-Served-From-Cache"

#: ``"<cache-served>/<total>"`` shard accounting for the artifact's job.
HEADER_CACHE_SHARDS = "X-Study-Cache-Shards"

# Error codes (4xx unless noted).
ERR_INVALID_JSON = "invalid-json"            # 400: body is not JSON
ERR_INVALID_SPEC = "invalid-spec"            # 400: JSON is not a valid spec
ERR_UNKNOWN_BACKEND = "unknown-backend"      # 400: backend axis names nobody registered
ERR_UNKNOWN_JOB = "unknown-job"              # 404: no such job id
ERR_JOB_NOT_READY = "job-not-ready"          # 409: artifact requested before done
ERR_JOB_FAILED = "job-failed"                # 409: artifact of a failed job
ERR_QUEUE_FULL = "queue-full"                # 429: bounded job queue is full
ERR_NOT_FOUND = "not-found"                  # 404: no such route
ERR_METHOD_NOT_ALLOWED = "method-not-allowed"  # 405
ERR_EXECUTION = "execution-error"            # job-status error field: run_study raised
ERR_CONNECTION = "connection-failed"         # client side: server unreachable
ERR_TIMEOUT = "client-timeout"               # client side: wait() deadline expired
ERR_SHARD_REJECTED = "shard-rejected"        # 409: push failed hash/size verification
ERR_UNKNOWN_STUDY = "unknown-study"          # 404: push/fail names no registered study
ERR_NOT_DISTRIBUTED = "not-distributed"      # 409: /distributed/* on a plain server

#: Identity and verification headers of a raw-bytes shard push.
HEADER_SHARD_STUDY = "X-Shard-Study"
HEADER_SHARD_INDEX = "X-Shard-Index"
HEADER_SHARD_DIGEST = "X-Shard-Digest"
HEADER_LEASE_ID = "X-Lease-Id"
HEADER_WORKER_ID = "X-Worker-Id"

#: Body bound for /distributed/push — raw shard bytes, not a spec.  The
#: largest legal shard is DEFAULT_SHARD_SIZE rows of the results dtype
#: (well under a MB), but custom shard sizes get generous headroom.
MAX_PUSH_BYTES = 64 << 20

#: Job ids are full hex sha256 digests (see :func:`repro.studies.cache.study_key`).
JOB_ID_PATTERN = re.compile(r"^[0-9a-f]{64}$")


class ServiceError(Exception):
    """A structured study-service error (server-detected or client-side).

    Carries the machine-readable ``code`` (an ``ERR_*`` constant), the
    human ``message``, and the HTTP ``status`` (0 for client-side errors
    that never reached the server, e.g. connection failures).
    ``retry_after`` is the server's Retry-After hint in seconds, when the
    response carried one (429 does).
    """

    def __init__(
        self,
        code: str,
        message: str,
        status: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.status = status
        self.retry_after = retry_after


def error_body(code: str, message: str, **details) -> dict:
    """The canonical error-response payload."""
    body = {"error": {"code": code, "message": message}}
    if details:
        body["error"].update(details)
    return body


def dump_body(payload: dict) -> bytes:
    """Serialize a response/request body (canonical JSON, one line)."""
    return canonical_line(payload).encode("utf-8")


def job_links(job_id: str) -> dict:
    """The hypermedia links a submission response advertises."""
    return {
        "status": f"/studies/{job_id}",
        "artifact": f"/studies/{job_id}/artifact",
    }
