"""Stdlib client for the study job service.

A thin, dependency-free wrapper over ``urllib.request`` speaking the wire
protocol of :mod:`repro.service.protocol`: submit a spec, poll its job,
fetch the canonical artifact.  Every structured error the server returns
is raised as :class:`~repro.service.protocol.ServiceError` carrying the
machine-readable code, so callers dispatch on ``exc.code`` instead of
parsing message text; transport failures raise the same type with the
client-side ``connection-failed`` code.

The blocking convenience :meth:`StudyServiceClient.run` is submit + wait +
fetch in one call::

    client = StudyServiceClient("http://127.0.0.1:8321")
    artifact = client.run(spec)            # ArtifactResponse
    results = artifact.results()           # parsed StudyResults
    artifact.served_from_cache             # True iff no shard was executed
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from ..studies import ScenarioSpec, StudyResults
from .protocol import (
    ERR_CONNECTION,
    ERR_TIMEOUT,
    HEADER_CACHE_SHARDS,
    HEADER_SERVED_FROM_CACHE,
    ServiceError,
)

__all__ = ["ArtifactResponse", "StudyServiceClient"]

#: Job states that will never change again — polling can stop.
_TERMINAL_STATES = frozenset({"done", "failed"})


@dataclass(frozen=True)
class ArtifactResponse:
    """One fetched artifact: the canonical bytes plus the cache accounting."""

    job_id: str
    body: bytes
    served_from_cache: bool
    cache_shards: str
    etag: str

    def results(self) -> StudyResults:
        """The artifact parsed back into a :class:`StudyResults`."""
        return StudyResults.from_dict(json.loads(self.body))


class StudyServiceClient:
    """A client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running :class:`~repro.service.StudyServer`.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, payload: dict | None = None):
        """``(status, headers, body_bytes)`` of one exchange; 4xx/5xx raise."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                error = json.loads(body)["error"]
                code, message = error["code"], error["message"]
            except (json.JSONDecodeError, KeyError, TypeError):
                code, message = "http-error", body.decode("utf-8", "replace").strip()
            raise ServiceError(code, message, status=exc.code) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                ERR_CONNECTION, f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc
        except (TimeoutError, http.client.HTTPException, OSError) as exc:
            # urlopen only wraps *connect*-phase failures in URLError; a
            # socket that times out or drops mid-response raises raw
            # socket/http.client errors.  Same structured type either way.
            raise ServiceError(
                ERR_CONNECTION, f"transport failure talking to {self.base_url}: {exc!r}"
            ) from exc

    def _get_json(self, path: str) -> dict:
        _, _, body = self._request("GET", path)
        return json.loads(body)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def backends(self) -> dict:
        """The server's performance-backend registry listing."""
        return self._get_json("/backends")

    def submit(self, spec: ScenarioSpec | dict) -> dict:
        """Submit a spec (instance or payload dict); returns the job snapshot.

        The snapshot's ``deduplicated`` field is ``True`` when the server
        already knew this grid and attached the submission to the existing
        job instead of enqueueing a new one.
        """
        payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        _, _, body = self._request("POST", "/studies", payload)
        return json.loads(body)

    def status(self, job_id: str) -> dict:
        return self._get_json(f"/studies/{job_id}")

    def artifact(self, job_id: str) -> ArtifactResponse:
        """Fetch the canonical artifact of a ``done`` job."""
        _, headers, body = self._request("GET", f"/studies/{job_id}/artifact")
        return ArtifactResponse(
            job_id=job_id,
            body=body,
            served_from_cache=headers.get(HEADER_SERVED_FROM_CACHE) == "true",
            cache_shards=headers.get(HEADER_CACHE_SHARDS, ""),
            etag=headers.get("ETag", ""),
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(
        self, job_id: str, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its snapshot.

        Raises :class:`ServiceError` with the client-side ``client-timeout``
        code when the deadline expires first (the job keeps running server
        side — a later :meth:`wait` can pick it back up).
        """
        deadline = time.monotonic() + timeout
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in _TERMINAL_STATES:
                return snapshot
            if time.monotonic() >= deadline:
                raise ServiceError(
                    ERR_TIMEOUT,
                    f"job {job_id} still {snapshot['state']} after {timeout:g}s",
                )
            time.sleep(poll_interval)

    def run(
        self, spec: ScenarioSpec | dict, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> ArtifactResponse:
        """Submit, wait, and fetch in one blocking call.

        A failed job raises :class:`ServiceError` with the server's
        recorded execution error.
        """
        submitted = self.submit(spec)
        snapshot = self.wait(submitted["job_id"], timeout, poll_interval)
        if snapshot["state"] == "failed":
            error = snapshot.get("error") or {}
            raise ServiceError(
                error.get("code", "execution-error"),
                error.get("message", "study execution failed"),
            )
        return self.artifact(snapshot["job_id"])
