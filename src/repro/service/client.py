"""Stdlib client for the study job service.

A thin, dependency-free wrapper over ``urllib.request`` speaking the wire
protocol of :mod:`repro.service.protocol`: submit a spec, poll its job,
fetch the canonical artifact.  Every structured error the server returns
is raised as :class:`~repro.service.protocol.ServiceError` carrying the
machine-readable code, so callers dispatch on ``exc.code`` instead of
parsing message text; transport failures raise the same type with the
client-side ``connection-failed`` code.

Transient failures are retried with bounded exponential backoff:
connection failures, 5xx responses, and 429 (honoring the server's
``Retry-After`` hint).  Other 4xx responses are *never* retried — the
request itself is wrong, and repeating it cannot help.  Retrying a
submission is always safe because job ids are content hashes: re-sending
the same spec lands on the same job (idempotent by construction), so the
client cannot double-execute a study by retrying.

The blocking convenience :meth:`StudyServiceClient.run` is submit + wait +
fetch in one call::

    client = StudyServiceClient("http://127.0.0.1:8321")
    artifact = client.run(spec)            # ArtifactResponse
    results = artifact.results()           # parsed StudyResults
    artifact.served_from_cache             # True iff no shard was executed
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from ..studies import ScenarioSpec, StudyResults
from .protocol import (
    ERR_CONNECTION,
    ERR_TIMEOUT,
    HEADER_CACHE_SHARDS,
    HEADER_SERVED_FROM_CACHE,
    ServiceError,
)

__all__ = ["ArtifactResponse", "StudyServiceClient"]

#: Job states that will never change again — polling can stop.
_TERMINAL_STATES = frozenset({"done", "failed"})

#: HTTP statuses worth retrying: server-side trouble (5xx) and explicit
#: backpressure (429).  No other 4xx ever qualifies.
_RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class ArtifactResponse:
    """One fetched artifact: the canonical bytes plus the cache accounting."""

    job_id: str
    body: bytes
    served_from_cache: bool
    cache_shards: str
    etag: str

    def results(self) -> StudyResults:
        """The artifact parsed back into a :class:`StudyResults`."""
        return StudyResults.from_dict(json.loads(self.body))


class StudyServiceClient:
    """A client bound to one service base URL.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running :class:`~repro.service.StudyServer`.
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Transient-failure retries per request (on top of the first
        attempt).  ``0`` disables retrying.
    backoff:
        Base delay of the exponential retry schedule
        (``backoff * 2**attempt``, capped at ``backoff_cap``); a 429's
        ``Retry-After`` hint takes precedence when larger.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0 or backoff_cap < 0:
            raise ValueError("backoff delays must be >= 0")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _retry_delay(self, attempt: int, exc: ServiceError) -> float:
        delay = min(self.backoff * (2.0 ** attempt), self.backoff_cap)
        if exc.retry_after is not None:
            delay = max(delay, exc.retry_after)
        return delay

    def _request(self, method: str, path: str, payload: dict | None = None):
        """``(status, headers, body_bytes)`` of one exchange; 4xx/5xx raise.

        Connection failures, 5xx, and 429 are retried up to ``retries``
        times with exponential backoff — safe even for POST, because job
        ids are content hashes (resubmission deduplicates server-side).
        Any other 4xx raises immediately.
        """
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                retryable = exc.code == ERR_CONNECTION or exc.status in _RETRYABLE_STATUSES
                if not retryable or attempt >= self.retries:
                    raise
                delay = self._retry_delay(attempt, exc)
                if delay > 0:
                    time.sleep(delay)

    def _request_once(self, method: str, path: str, payload: dict | None = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                error = json.loads(body)["error"]
                code, message = error["code"], error["message"]
            except (json.JSONDecodeError, KeyError, TypeError):
                code, message = "http-error", body.decode("utf-8", "replace").strip()
            try:
                retry_after = float(exc.headers.get("Retry-After"))
            except (TypeError, ValueError):
                retry_after = None
            raise ServiceError(
                code, message, status=exc.code, retry_after=retry_after
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                ERR_CONNECTION, f"cannot reach {self.base_url}: {exc.reason}"
            ) from exc
        except (TimeoutError, http.client.HTTPException, OSError) as exc:
            # urlopen only wraps *connect*-phase failures in URLError; a
            # socket that times out or drops mid-response raises raw
            # socket/http.client errors.  Same structured type either way.
            raise ServiceError(
                ERR_CONNECTION, f"transport failure talking to {self.base_url}: {exc!r}"
            ) from exc

    def _get_json(self, path: str) -> dict:
        _, _, body = self._request("GET", path)
        return json.loads(body)

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._get_json("/healthz")

    def backends(self) -> dict:
        """The server's performance-backend registry listing."""
        return self._get_json("/backends")

    def submit(self, spec: ScenarioSpec | dict) -> dict:
        """Submit a spec (instance or payload dict); returns the job snapshot.

        The snapshot's ``deduplicated`` field is ``True`` when the server
        already knew this grid and attached the submission to the existing
        job instead of enqueueing a new one.
        """
        payload = spec.to_dict() if isinstance(spec, ScenarioSpec) else spec
        _, _, body = self._request("POST", "/studies", payload)
        return json.loads(body)

    def status(self, job_id: str) -> dict:
        return self._get_json(f"/studies/{job_id}")

    def list_studies(self) -> dict:
        """Every job the server knows (state + timestamps), oldest first."""
        return self._get_json("/studies")

    def artifact(self, job_id: str) -> ArtifactResponse:
        """Fetch the canonical artifact of a ``done`` job."""
        _, headers, body = self._request("GET", f"/studies/{job_id}/artifact")
        return ArtifactResponse(
            job_id=job_id,
            body=body,
            served_from_cache=headers.get(HEADER_SERVED_FROM_CACHE) == "true",
            cache_shards=headers.get(HEADER_CACHE_SHARDS, ""),
            etag=headers.get("ETag", ""),
        )

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 1.0,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its snapshot.

        Polling starts at ``poll_interval`` (low first-poll latency for
        short jobs) and backs off geometrically to ``max_poll_interval``,
        so waiting on a long study doesn't hammer the server.  Raises
        :class:`ServiceError` with the client-side ``client-timeout`` code
        when the deadline expires first (the job keeps running server
        side — a later :meth:`wait` can pick it back up).
        """
        deadline = time.monotonic() + timeout
        interval = poll_interval
        while True:
            snapshot = self.status(job_id)
            if snapshot["state"] in _TERMINAL_STATES:
                return snapshot
            now = time.monotonic()
            if now >= deadline:
                raise ServiceError(
                    ERR_TIMEOUT,
                    f"job {job_id} still {snapshot['state']} after {timeout:g}s",
                )
            time.sleep(min(interval, max(deadline - now, 0.0)))
            interval = min(interval * 2.0, max_poll_interval)

    def run(
        self, spec: ScenarioSpec | dict, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> ArtifactResponse:
        """Submit, wait, and fetch in one blocking call.

        A failed job raises :class:`ServiceError` with the server's
        recorded execution error.
        """
        submitted = self.submit(spec)
        snapshot = self.wait(submitted["job_id"], timeout, poll_interval)
        if snapshot["state"] == "failed":
            error = snapshot.get("error") or {}
            raise ServiceError(
                error.get("code", "execution-error"),
                error.get("message", "study execution failed"),
            )
        return self.artifact(snapshot["job_id"])
