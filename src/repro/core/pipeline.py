"""The end-to-end split-execution performance model.

Composes the three stage models into the paper's application model
(Sec. 3.2): time-to-solution, stage breakdown, bottleneck analysis, and the
bridge into the discrete-event runtime (a :class:`RequestProfile` for the
Fig. 1/2 simulations).

The ``embedding_mode`` knob implements the paper's closing discussion: with
``"offline"`` embedding, the minor-embedding computation moves off the
critical path into a precomputed lookup table, leaving only a graph-lookup
cost (charged as ``LPS^2`` comparisons — the documented stand-in for the
graph-isomorphism check the paper envisions the table needing).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..exceptions import ValidationError
from ..runtime.layers import RequestProfile
from .machine_params import HostMachineParams
from .stage1 import Stage1ArrayBreakdown, Stage1Breakdown, Stage1Model
from .stage2 import Stage2Breakdown, Stage2Model
from .stage3 import Stage3ArrayBreakdown, Stage3Breakdown, Stage3Model

__all__ = ["StageTimings", "SweepArrays", "SplitExecutionModel"]

_EMBEDDING_MODES = ("online", "offline")


@dataclass(frozen=True)
class StageTimings:
    """Stage-resolved prediction for one problem instance."""

    lps: int
    accuracy: float
    success: float
    stage1: Stage1Breakdown
    stage2: Stage2Breakdown
    stage3: Stage3Breakdown
    embedding_mode: str = "online"

    @property
    def stage1_seconds(self) -> float:
        return self.stage1.total

    @property
    def stage2_seconds(self) -> float:
        return self.stage2.total

    @property
    def stage3_seconds(self) -> float:
        return self.stage3.total

    @property
    def total_seconds(self) -> float:
        return self.stage1.total + self.stage2.total + self.stage3.total

    @property
    def dominant_stage(self) -> str:
        """Which stage dominates the time-to-solution."""
        times = {
            "stage1": self.stage1.total,
            "stage2": self.stage2.total,
            "stage3": self.stage3.total,
        }
        return max(times, key=times.get)  # type: ignore[arg-type]

    @property
    def quantum_fraction(self) -> float:
        """Fraction of the total spent in quantum execution (Stage 2)."""
        total = self.total_seconds
        return self.stage2.total / total if total > 0 else 0.0

    def stage_fractions(self) -> dict[str, float]:
        total = self.total_seconds
        if total <= 0:
            return {"stage1": 0.0, "stage2": 0.0, "stage3": 0.0}
        return {
            "stage1": self.stage1.total / total,
            "stage2": self.stage2.total / total,
            "stage3": self.stage3.total / total,
        }


@dataclass(frozen=True)
class SweepArrays:
    """Struct-of-arrays predictions across a whole range of problem sizes.

    The vectorized counterpart of ``[StageTimings, ...]`` returned by
    :meth:`SplitExecutionModel.sweep`: every per-point quantity is an
    ndarray aligned with ``lps``, computed with the same floating-point
    operation sequence as the scalar path, so
    ``sweep_arrays(ns).total_seconds[i] == sweep(ns)[i].total_seconds``
    exactly.  Stage 2 depends only on ``(accuracy, success)`` and is a
    single shared scalar breakdown.
    """

    lps: np.ndarray
    accuracy: float
    success: float
    stage1: Stage1ArrayBreakdown
    stage2: Stage2Breakdown
    stage3: Stage3ArrayBreakdown
    embedding_mode: str = "online"

    @property
    def stage1_seconds(self) -> np.ndarray:
        return self.stage1.total

    @property
    def stage2_seconds(self) -> float:
        return self.stage2.total

    @property
    def stage3_seconds(self) -> np.ndarray:
        return self.stage3.total

    @property
    def total_seconds(self) -> np.ndarray:
        return self.stage1.total + self.stage2.total + self.stage3.total

    @property
    def quantum_fraction(self) -> np.ndarray:
        """Fraction of the total spent in quantum execution (Stage 2)."""
        total = self.total_seconds
        out = np.zeros_like(total)
        np.divide(self.stage2.total, total, out=out, where=total > 0)
        return out

    def dominant_stage(self) -> np.ndarray:
        """Per-point dominating stage, with the scalar path's tie-breaking
        (earlier stages win ties)."""
        s1, s3 = self.stage1.total, self.stage3.total
        s2 = self.stage2.total
        return np.where(
            s3 > np.maximum(s1, s2),
            "stage3",
            np.where(s2 > s1, "stage2", "stage1"),
        )

    def __len__(self) -> int:
        return int(self.lps.shape[0])


@dataclass(frozen=True)
class SplitExecutionModel:
    """The composed three-stage performance model.

    Parameters
    ----------
    stage1, stage2, stage3:
        The stage models (paper Figs. 6-8 defaults).
    embedding_mode:
        ``"online"`` — the embedding is computed inside the request (the
        paper's measured configuration, whose bottleneck Fig. 9 exposes);
        ``"offline"`` — the embedding comes from a precomputed lookup
        table and only the lookup cost remains.
    """

    stage1: Stage1Model = field(default_factory=Stage1Model)
    stage2: Stage2Model = field(default_factory=Stage2Model)
    stage3: Stage3Model = field(default_factory=Stage3Model)
    embedding_mode: str = "online"

    def __post_init__(self) -> None:
        if self.embedding_mode not in _EMBEDDING_MODES:
            raise ValidationError(
                f"embedding_mode must be one of {_EMBEDDING_MODES}, "
                f"got {self.embedding_mode!r}"
            )

    # ------------------------------------------------------------------ #
    # Derived models
    # ------------------------------------------------------------------ #
    def with_overrides(
        self,
        embedding_mode: str | None = None,
        host: HostMachineParams | None = None,
        anneal_us: float | None = None,
        **host_overrides: float,
    ) -> "SplitExecutionModel":
        """A derived model with selected operating constants replaced.

        ``host`` swaps the conventional-host rates wholesale (applied to both
        Stage 1 and Stage 3); keyword ``host_overrides`` replace individual
        :class:`HostMachineParams` fields on top of the current (or given)
        host, e.g. ``with_overrides(clock_hz=3.2e9)``.  ``anneal_us``
        re-times the QPU annealing duration.  This is the single knob-turning
        entry point shared by the sensitivity analysis and the scenario-study
        executor, so every "what if the machine were different" path builds
        models the same way.
        """
        model = self
        if embedding_mode is not None:
            model = replace(model, embedding_mode=embedding_mode)
        if host is not None or host_overrides:
            new_host = host if host is not None else model.stage1.host
            if host_overrides:
                new_host = replace(new_host, **host_overrides)
            model = replace(
                model,
                stage1=replace(model.stage1, host=new_host),
                stage3=replace(model.stage3, host=new_host),
            )
        if anneal_us is not None:
            model = replace(model, stage2=model.stage2.with_anneal_time(anneal_us))
        return model

    # ------------------------------------------------------------------ #
    # Predictions
    # ------------------------------------------------------------------ #
    def _stage1_breakdown(self, lps: int) -> Stage1Breakdown:
        b = self.stage1.breakdown(lps)
        if self.embedding_mode == "online":
            return b
        # Offline: replace the embedding computation with a table lookup
        # charged LPS^2 comparison flops (graph-signature matching).
        lookup_seconds = float(lps) ** 2 / self.stage1.host.flops_sp
        return replace(b, embedding_flops=lookup_seconds)

    def time_to_solution(
        self, lps: int, accuracy: float = 0.99, success: float = 0.7
    ) -> StageTimings:
        """Predict the stage-resolved time-to-solution for one problem.

        Parameters
        ----------
        lps:
            Logical problem size (spins in the logical Hamiltonian).
        accuracy:
            Target ensemble accuracy ``p_a`` (fraction, e.g. 0.99).
        success:
            Characteristic single-run success probability ``p_s``.
        """
        return StageTimings(
            lps=lps,
            accuracy=accuracy,
            success=success,
            stage1=self._stage1_breakdown(lps),
            stage2=self.stage2.breakdown(accuracy, success),
            stage3=self.stage3.breakdown(lps, accuracy, success),
            embedding_mode=self.embedding_mode,
        )

    def sweep(
        self,
        lps_values,
        accuracy: float = 0.99,
        success: float = 0.7,
    ) -> list[StageTimings]:
        """Predictions across a range of problem sizes (the Fig. 9 x-axes).

        For large scans prefer :meth:`sweep_arrays`, which produces the same
        numbers (bit for bit) in struct-of-arrays form without per-point
        Python objects.
        """
        return [self.time_to_solution(int(n), accuracy, success) for n in lps_values]

    def _stage1_breakdown_arrays(self, lps: np.ndarray) -> Stage1ArrayBreakdown:
        b = self.stage1.breakdown_arrays(lps)
        if self.embedding_mode == "online":
            return b
        # Offline: replace the embedding computation with a table lookup
        # charged LPS^2 comparison flops (graph-signature matching).
        lookup_seconds = lps.astype(np.float64) ** 2 / self.stage1.host.flops_sp
        return replace(b, embedding_flops=lookup_seconds)

    def sweep_arrays(
        self,
        lps_values,
        accuracy: float = 0.99,
        success: float = 0.7,
    ) -> SweepArrays:
        """Vectorized :meth:`sweep`: one struct-of-arrays result for the scan.

        This is the fast path for Fig. 9-style scans over thousands of LPS
        operating points: Stage 1 and Stage 3 evaluate as whole-array
        expressions and Stage 2 (independent of LPS) is computed once.
        Every element matches the corresponding scalar
        :meth:`time_to_solution` exactly.
        """
        lps = np.asarray(lps_values)
        if lps.ndim != 1:
            raise ValidationError(f"lps_values must be 1-D, got shape {lps.shape}")
        if not np.issubdtype(lps.dtype, np.integer):
            # Mirror the scalar path's int(n) truncation.
            lps = lps.astype(np.intp)
        return SweepArrays(
            lps=lps,
            accuracy=accuracy,
            success=success,
            stage1=self._stage1_breakdown_arrays(lps),
            stage2=self.stage2.breakdown(accuracy, success),
            stage3=self.stage3.breakdown_arrays(lps, accuracy, success),
            embedding_mode=self.embedding_mode,
        )

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #
    def bottleneck(self, lps: int, accuracy: float = 0.99, success: float = 0.7) -> str:
        """The dominating stage at this operating point."""
        return self.time_to_solution(lps, accuracy, success).dominant_stage

    def required_embedding_speedup(
        self, lps: int, accuracy: float = 0.99, success: float = 0.7
    ) -> float:
        """Speedup of the classical translation needed to become QPU-limited.

        The paper concludes "the pre-processing overhead for split-execution
        must be reduced by many orders of magnitude in order to become
        processor limited"; this computes the exact factor at a given
        operating point (translation time / quantum execution time).
        """
        t = self.time_to_solution(lps, accuracy, success)
        if t.stage2.total <= 0:
            raise ValidationError("quantum execution time is zero; speedup undefined")
        return t.stage1.classical_translation / t.stage2.total

    # ------------------------------------------------------------------ #
    # Runtime bridge
    # ------------------------------------------------------------------ #
    def request_profile(
        self,
        lps: int,
        accuracy: float = 0.99,
        success: float = 0.7,
        network_latency: float = 0.0,
    ) -> RequestProfile:
        """Stage durations packaged for the discrete-event runtime (Fig. 2)."""
        t = self.time_to_solution(lps, accuracy, success)
        payload_bytes = 4.0 * (lps * lps)  # the dense logical problem
        transfer = payload_bytes / self.stage1.host.pcie_bandwidth_bytes_per_s
        return RequestProfile(
            ising_generation=t.stage1.ising_generation + t.stage1.parameter_setting,
            embedding=t.stage1.embedding_flops
            + t.stage1.input_loads
            + t.stage1.output_stores
            + t.stage1.intracomm,
            processor_init=t.stage1.processor_initialize,
            quantum_execution=t.stage2.total,
            postprocessing=t.stage3.total,
            network_latency=network_latency,
            payload_transfer=transfer,
        )
