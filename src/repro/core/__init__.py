"""The paper's primary contribution: split-execution performance models.

Closed-form implementations of the Stage 1-3 application models
(Figs. 6-8), the Eq.-6 repetition planner, the composed
:class:`SplitExecutionModel` pipeline with bottleneck analysis, scaling and
crossover studies, calibration against measured CMR timings, an
ASPEN-evaluated backend cross-validating the closed forms, and report
formatting for the benchmark harness.
"""

from .aspen_backend import AspenStageModels
from .calibration import (
    calibrate_embed_rate,
    measure_cmr_timings,
    model_measured_ratios,
)
from .machine_params import XEON_E5_2680, HostMachineParams
from .pipeline import SplitExecutionModel, StageTimings, SweepArrays
from .repetition import (
    achieved_accuracy,
    required_repetitions,
    required_success_probability,
)
from .report import format_seconds, format_series, format_table
from .scaling import (
    crossover_index,
    crossover_point,
    loglog_slope,
    series,
    stage_dominance_table,
)
from .sensitivity import elasticity, elasticity_series, model_elasticities
from .stage1 import Stage1ArrayBreakdown, Stage1Breakdown, Stage1Model
from .stage2 import Stage2Breakdown, Stage2Model
from .stage3 import Stage3ArrayBreakdown, Stage3Breakdown, Stage3Model

__all__ = [
    "required_repetitions",
    "achieved_accuracy",
    "required_success_probability",
    "HostMachineParams",
    "XEON_E5_2680",
    "Stage1Model",
    "Stage1Breakdown",
    "Stage1ArrayBreakdown",
    "Stage2Model",
    "Stage2Breakdown",
    "Stage3Model",
    "Stage3Breakdown",
    "Stage3ArrayBreakdown",
    "SplitExecutionModel",
    "StageTimings",
    "SweepArrays",
    "AspenStageModels",
    "series",
    "loglog_slope",
    "crossover_point",
    "crossover_index",
    "stage_dominance_table",
    "elasticity",
    "elasticity_series",
    "model_elasticities",
    "measure_cmr_timings",
    "calibrate_embed_rate",
    "model_measured_ratios",
    "format_seconds",
    "format_table",
    "format_series",
]
