"""Stage timings computed through the ASPEN evaluator on the paper listings.

The closed-form models in :mod:`repro.core.stage1`-``stage3`` and this
ASPEN-evaluated backend are two independent implementations of the same
performance models; the test suite asserts they agree to floating-point
precision, which pins the closed forms to the paper's actual artifacts
(Figs. 5-8).

Scalar entry points walk the expression tree per call; the ``*_array``
entry points go through the :mod:`repro.aspen.compiler` lowering pass —
one vectorized closure per (stage, constant params), cached — with a
conservative fallback: if a listing cannot be lowered
(:class:`~repro.aspen.compiler.AspenLoweringError`, or any other ASPEN
error at compile time), the array entry point silently degrades to the
per-point tree walk, which defines the semantics.  Either way the array
results are bit-identical to the scalar loop.
"""

from __future__ import annotations

import numpy as np

from ..aspen import AspenEvaluator, EvaluationReport, load_paper_models
from ..exceptions import AspenError, ValidationError

__all__ = ["AspenStageModels"]

_CPU_SOCKET = "intel_xeon_e5_2680"
_QPU_SOCKET = "dwave_vesuvius_20"

#: Sentinel distinguishing "not compiled yet" from "compilation failed,
#: use the tree-walking fallback" in the compiled-closure cache.
_FALLBACK = None


class AspenStageModels:
    """Evaluates the bundled Stage 1-3 listings on the Fig.-5 machine."""

    def __init__(self) -> None:
        self._registry = load_paper_models()
        self._machine = self._registry.machine("SimpleNode")
        self._evaluator = AspenEvaluator(self._machine)
        self._stage1 = self._registry.application("Stage1")
        self._stage2 = self._registry.application("Stage2")
        self._stage3 = self._registry.application("Stage3")
        # Compiled LPS-sweep closures (or _FALLBACK), keyed per stage by
        # the constant parameter overrides baked into the closure.
        self._compiled: dict[tuple, object] = {}

    # ------------------------------------------------------------------ #
    def stage1_report(self, lps: int) -> EvaluationReport:
        """Full Stage-1 evaluation report at problem size ``lps``."""
        if lps < 0:
            raise ValidationError(f"lps must be non-negative, got {lps}")
        return self._evaluator.evaluate(
            self._stage1, socket=_CPU_SOCKET, params={"LPS": float(lps)}
        )

    def stage1_seconds(self, lps: int) -> float:
        """Stage-1 total seconds (Fig. 9(a) solid line)."""
        return self.stage1_report(lps).total_seconds

    def stage1_seconds_array(self, lps: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`stage1_seconds` over an array of problem sizes.

        Bit-identical to the scalar loop; uses one compiled closure when the
        listing lowers, the per-point tree walk otherwise.
        """
        if np.any(np.asarray(lps) < 0):
            raise ValidationError("lps values must be non-negative")
        fn = self._compiled_sweep("stage1", self._stage1, _CPU_SOCKET, {})
        if fn is not _FALLBACK:
            return fn(LPS=lps)
        return np.array(
            [self.stage1_seconds(int(n)) for n in np.asarray(lps)], dtype=np.float64
        )

    # ------------------------------------------------------------------ #
    def stage2_report(self, accuracy_percent: float, success: float) -> EvaluationReport:
        """Stage-2 evaluation; note the listing takes accuracy as a percentage."""
        if not 0.0 <= accuracy_percent < 100.0:
            raise ValidationError(
                f"accuracy_percent must lie in [0, 100), got {accuracy_percent}"
            )
        if not 0.0 < success < 1.0:
            raise ValidationError(f"success must lie in (0, 1), got {success}")
        return self._evaluator.evaluate(
            self._stage2,
            socket=_QPU_SOCKET,
            params={"Accuracy": float(accuracy_percent), "Success": float(success)},
        )

    def stage2_seconds(self, accuracy_percent: float, success: float) -> float:
        """Stage-2 total seconds (Fig. 9(b))."""
        return self.stage2_report(accuracy_percent, success).total_seconds

    # ------------------------------------------------------------------ #
    def stage3_report(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> EvaluationReport:
        """Stage-3 evaluation (listing defaults: Success 0.75, Accuracy 0.99)."""
        if lps < 0:
            raise ValidationError(f"lps must be non-negative, got {lps}")
        params: dict[str, float] = {"LPS": float(lps)}
        if accuracy is not None:
            params["Accuracy"] = float(accuracy)
        if success is not None:
            params["Success"] = float(success)
        return self._evaluator.evaluate(self._stage3, socket=_CPU_SOCKET, params=params)

    def stage3_seconds(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> float:
        """Stage-3 total seconds (Fig. 9(c))."""
        return self.stage3_report(lps, accuracy, success).total_seconds

    def stage3_seconds_array(
        self,
        lps: np.ndarray,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`stage3_seconds` over an array of problem sizes.

        ``accuracy``/``success`` are constant across the sweep, so they are
        baked into the compiled closure (one closure per distinct pair,
        cached).  Bit-identical to the scalar loop, with the same
        tree-walking fallback as :meth:`stage1_seconds_array`.
        """
        if np.any(np.asarray(lps) < 0):
            raise ValidationError("lps values must be non-negative")
        params: dict[str, float] = {}
        if accuracy is not None:
            params["Accuracy"] = float(accuracy)
        if success is not None:
            params["Success"] = float(success)
        fn = self._compiled_sweep("stage3", self._stage3, _CPU_SOCKET, params)
        if fn is not _FALLBACK:
            return fn(LPS=lps)
        return np.array(
            [self.stage3_seconds(int(n), accuracy, success) for n in np.asarray(lps)],
            dtype=np.float64,
        )

    # ------------------------------------------------------------------ #
    def _compiled_sweep(self, stage, app, socket, params):
        """Compiled LPS closure for ``stage`` + ``params``, or ``_FALLBACK``."""
        key = (stage, tuple(sorted(params.items())))
        if key not in self._compiled:
            try:
                self._compiled[key] = self._evaluator.compile_sweep(
                    app, socket, axes=("LPS",), params=params
                )
            except AspenError:
                self._compiled[key] = _FALLBACK
        return self._compiled[key]
