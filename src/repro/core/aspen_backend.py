"""Stage timings computed through the ASPEN evaluator on the paper listings.

The closed-form models in :mod:`repro.core.stage1`-``stage3`` and this
ASPEN-evaluated backend are two independent implementations of the same
performance models; the test suite asserts they agree to floating-point
precision, which pins the closed forms to the paper's actual artifacts
(Figs. 5-8).
"""

from __future__ import annotations

from ..aspen import AspenEvaluator, EvaluationReport, load_paper_models
from ..exceptions import ValidationError

__all__ = ["AspenStageModels"]

_CPU_SOCKET = "intel_xeon_e5_2680"
_QPU_SOCKET = "dwave_vesuvius_20"


class AspenStageModels:
    """Evaluates the bundled Stage 1-3 listings on the Fig.-5 machine."""

    def __init__(self) -> None:
        self._registry = load_paper_models()
        self._machine = self._registry.machine("SimpleNode")
        self._evaluator = AspenEvaluator(self._machine)
        self._stage1 = self._registry.application("Stage1")
        self._stage2 = self._registry.application("Stage2")
        self._stage3 = self._registry.application("Stage3")

    # ------------------------------------------------------------------ #
    def stage1_report(self, lps: int) -> EvaluationReport:
        """Full Stage-1 evaluation report at problem size ``lps``."""
        if lps < 0:
            raise ValidationError(f"lps must be non-negative, got {lps}")
        return self._evaluator.evaluate(
            self._stage1, socket=_CPU_SOCKET, params={"LPS": float(lps)}
        )

    def stage1_seconds(self, lps: int) -> float:
        """Stage-1 total seconds (Fig. 9(a) solid line)."""
        return self.stage1_report(lps).total_seconds

    # ------------------------------------------------------------------ #
    def stage2_report(self, accuracy_percent: float, success: float) -> EvaluationReport:
        """Stage-2 evaluation; note the listing takes accuracy as a percentage."""
        if not 0.0 <= accuracy_percent < 100.0:
            raise ValidationError(
                f"accuracy_percent must lie in [0, 100), got {accuracy_percent}"
            )
        if not 0.0 < success < 1.0:
            raise ValidationError(f"success must lie in (0, 1), got {success}")
        return self._evaluator.evaluate(
            self._stage2,
            socket=_QPU_SOCKET,
            params={"Accuracy": float(accuracy_percent), "Success": float(success)},
        )

    def stage2_seconds(self, accuracy_percent: float, success: float) -> float:
        """Stage-2 total seconds (Fig. 9(b))."""
        return self.stage2_report(accuracy_percent, success).total_seconds

    # ------------------------------------------------------------------ #
    def stage3_report(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> EvaluationReport:
        """Stage-3 evaluation (listing defaults: Success 0.75, Accuracy 0.99)."""
        if lps < 0:
            raise ValidationError(f"lps must be non-negative, got {lps}")
        params: dict[str, float] = {"LPS": float(lps)}
        if accuracy is not None:
            params["Accuracy"] = float(accuracy)
        if success is not None:
            params["Success"] = float(success)
        return self._evaluator.evaluate(self._stage3, socket=_CPU_SOCKET, params=params)

    def stage3_seconds(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> float:
        """Stage-3 total seconds (Fig. 9(c))."""
        return self.stage3_report(lps, accuracy, success).total_seconds
