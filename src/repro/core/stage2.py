"""Stage 2: quantum execution (paper Fig. 7) in closed form.

The QPU performs ``s`` annealing runs — the Eq.-6 repetition count for the
requested accuracy ``p_a`` given the characteristic single-run success
probability ``p_s`` — each charged the annealing duration through the
``QuOps`` resource, plus the readout (320 us) and thermalization (5 us)
constants.

Two accounting conventions are supported:

* ``per_read=False`` (default, **listing-faithful**): readout and
  thermalization are charged once per Stage-2 call, exactly as the Fig.-7
  listing's ``mainblock3``/``mainblock4`` do;
* ``per_read=True`` (**device-accurate**): every repetition pays the full
  anneal-read-thermalize cycle, as the physical pipeline does.  The
  difference is an ablation the benchmark suite quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ValidationError
from ..hardware.timing import DW2_TIMING, DWaveTimingModel
from .repetition import required_repetitions

__all__ = ["Stage2Breakdown", "Stage2Model"]


@dataclass(frozen=True)
class Stage2Breakdown:
    """Per-contribution seconds of one Stage-2 evaluation."""

    repetitions: int
    anneal: float
    readout: float
    thermalization: float

    @property
    def total(self) -> float:
        return self.anneal + self.readout + self.thermalization


@dataclass(frozen=True)
class Stage2Model:
    """Closed-form Stage-2 timing model.

    Parameters
    ----------
    timing:
        QPU timing constants (anneal/readout/thermalization durations).
    per_read:
        Accounting convention; see the module docstring.
    """

    timing: DWaveTimingModel = field(default_factory=lambda: DW2_TIMING)
    per_read: bool = False

    def repetitions(self, accuracy: float, success: float) -> int:
        """Eq. (6): annealing runs needed for the target accuracy."""
        return required_repetitions(accuracy, success)

    def breakdown(self, accuracy: float, success: float) -> Stage2Breakdown:
        """Evaluate every Stage-2 contribution."""
        s = self.repetitions(accuracy, success)
        cycles = s if self.per_read else 1
        return Stage2Breakdown(
            repetitions=s,
            anneal=self.timing.quops_seconds(s),
            readout=cycles * self.timing.readout_us * 1e-6,
            thermalization=cycles * self.timing.thermalization_us * 1e-6,
        )

    def seconds(self, accuracy: float, success: float) -> float:
        """Total Stage-2 time."""
        return self.breakdown(accuracy, success).total

    def with_anneal_time(self, anneal_us: float) -> "Stage2Model":
        """A copy with a different annealing duration (user program option)."""
        if anneal_us < 0:
            raise ValidationError(f"anneal_us must be non-negative, got {anneal_us}")
        return Stage2Model(
            timing=self.timing.with_anneal_time(anneal_us), per_read=self.per_read
        )
