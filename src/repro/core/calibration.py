"""Calibration of the Stage-1 model against measured embedding timings.

Fig. 9(a) overlays the ASPEN Stage-1 prediction with *experimentally
measured* timings of the Cai-Macready-Roy heuristic on complete input
graphs, reporting agreement "within a factor of 4 … except in the region
n < 10, which it overestimates".  This module reproduces that comparison
against the library's own CMR implementation:

* :func:`measure_cmr_timings` — wall-clock CMR embedding times for
  ``K_n`` into the working hardware graph (the paper's dashed line);
* :func:`calibrate_embed_rate` — least-squares (in log space) fit of the
  single free constant, the effective embedding flop rate;
* :func:`model_measured_ratios` — the per-size over/under-estimation
  factors that the Fig.-9(a) claim is about.
"""

from __future__ import annotations

import math
import time
from dataclasses import replace

import networkx as nx
import numpy as np

from .._rng import as_rng
from ..embedding.cmr import CmrParams, find_embedding_cmr
from ..exceptions import ValidationError
from ..hardware.chimera import DW2X, ChimeraTopology
from .stage1 import Stage1Model

__all__ = [
    "measure_cmr_timings",
    "calibrate_embed_rate",
    "model_measured_ratios",
]


def measure_cmr_timings(
    sizes,
    topology: ChimeraTopology = DW2X,
    params: CmrParams | None = None,
    repeats: int = 1,
    rng: np.random.Generator | int | None = 0,
) -> dict[int, float]:
    """Wall-clock seconds to CMR-embed ``K_n`` for each ``n`` in ``sizes``.

    Returns the median over ``repeats`` runs per size.  Mirrors the
    experimental series of Fig. 9(a): complete input graphs into the
    ``C(12, 12, 4)`` hardware graph.
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    gen = as_rng(rng)
    hardware = topology.graph()
    out: dict[int, float] = {}
    for n in sizes:
        n = int(n)
        source = nx.complete_graph(n)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            find_embedding_cmr(source, hardware, params=params, rng=gen)
            times.append(time.perf_counter() - t0)
        out[n] = float(np.median(times))
    return out


def calibrate_embed_rate(
    measured: dict[int, float],
    model: Stage1Model | None = None,
    min_size: int = 10,
) -> Stage1Model:
    """Fit the Stage-1 embedding rate to measured timings.

    The worst-case operation count is fixed by the paper's formula; the one
    free constant is the effective flop rate.  The fit minimizes the mean
    squared *log* ratio over sizes ``>= min_size`` (the paper notes the
    model intentionally overestimates below ``n = 10``, so small sizes are
    excluded from the fit, as its comparison region suggests).

    Returns a copy of the model with ``embed_rate_scale`` set.
    """
    base = model or Stage1Model()
    pairs = [
        (n, t)
        for n, t in measured.items()
        if n >= min_size and math.isfinite(t) and t > 0
    ]
    if not pairs:
        raise ValidationError(
            f"no measured sizes >= {min_size} with positive finite timings "
            "available for calibration"
        )
    log_ratios = []
    for n, t_measured in pairs:
        ops = base.embedding_ops(n)
        if ops <= 0:
            continue
        # rate that would make the model match this measurement exactly
        log_ratios.append(np.log(ops / t_measured))
    if not log_ratios:
        # np.mean([]) would be NaN, silently poisoning embed_rate_scale.
        raise ValidationError(
            "calibration is degenerate: every usable measured size has a "
            "non-positive model operation count (embedding_ops <= 0), so no "
            "embedding rate can be fitted"
        )
    rate = float(np.exp(np.mean(log_ratios)))
    scale = rate / base.host.flops_sp_simd
    if not (math.isfinite(scale) and scale > 0):
        raise ValidationError(
            f"calibration produced a non-finite or non-positive "
            f"embed_rate_scale ({scale!r}); check the measured timings"
        )
    return replace(base, embed_rate_scale=scale)


def model_measured_ratios(
    measured: dict[int, float],
    model: Stage1Model | None = None,
    embedding_only: bool = True,
) -> dict[int, float]:
    """Per-size ``model / measured`` factors (Fig. 9(a)'s agreement claim).

    ``embedding_only=True`` compares just the embedding term (what the
    measurement times); otherwise the full Stage-1 total including the
    constant processor initialization.
    """
    m = model or Stage1Model()
    out: dict[int, float] = {}
    for n, t_measured in sorted(measured.items()):
        if t_measured <= 0:
            continue
        predicted = (
            m.breakdown(n).embedding_flops if embedding_only else m.seconds(n)
        )
        out[n] = predicted / t_measured
    return out
