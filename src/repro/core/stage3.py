"""Stage 3: classical post-processing (paper Fig. 8) in closed form.

The readout ensemble — ``Results`` states of ``LPS`` spins each — is
heap-sorted by energy to identify the lowest state and the multiplicity of
each value: ``SortOps = Results * ln(Results)`` scalar (``sp``) flops, plus
loading the ensemble (``Results * 4 * LPS`` bytes) and storing the sorted
index.  The contribution is nearly linear in the problem size and
negligible next to Stage 1 (Fig. 9(c)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ValidationError
from .machine_params import XEON_E5_2680, HostMachineParams
from .repetition import required_repetitions

__all__ = ["Stage3Breakdown", "Stage3ArrayBreakdown", "Stage3Model"]

_ELEMENT_BYTES = 4.0


@dataclass(frozen=True)
class Stage3Breakdown:
    """Per-contribution seconds of one Stage-3 evaluation."""

    results: int
    sort_flops: float
    loads: float
    stores: float

    @property
    def total(self) -> float:
        return self.sort_flops + self.loads + self.stores


@dataclass(frozen=True)
class Stage3ArrayBreakdown:
    """Stage-3 contributions for a whole array of problem sizes at once.

    The ensemble size and sort cost depend only on ``(accuracy, success)``,
    so they are scalars shared across the ``lps`` axis; only the ensemble
    load time varies with the problem size.  Element-wise identical to the
    scalar :class:`Stage3Breakdown` (same floating-point operation order).
    """

    lps: np.ndarray
    results: int
    sort_flops: np.ndarray
    loads: np.ndarray
    stores: np.ndarray

    @property
    def total(self) -> np.ndarray:
        return self.sort_flops + self.loads + self.stores


@dataclass(frozen=True)
class Stage3Model:
    """Closed-form Stage-3 timing model.

    Parameters
    ----------
    host:
        Conventional-host rates.
    success, accuracy:
        The listing's defaults (0.75 and 0.99) determining the default
        ensemble size ``Results``; both can be overridden per call.
    """

    host: HostMachineParams = field(default_factory=lambda: XEON_E5_2680)
    success: float = 0.75
    accuracy: float = 0.99

    def results(self, accuracy: float | None = None, success: float | None = None) -> int:
        """Ensemble size: the Eq.-6 repetition count (paper Fig. 8)."""
        return required_repetitions(
            self.accuracy if accuracy is None else accuracy,
            self.success if success is None else success,
        )

    def sort_ops(self, results: int) -> float:
        """``SortOps = Results * ln(Results)`` (heapsort)."""
        if results < 0:
            raise ValidationError(f"results must be non-negative, got {results}")
        return results * math.log(results) if results > 1 else 0.0

    def breakdown(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> Stage3Breakdown:
        """Evaluate every Stage-3 contribution for problem size ``lps``."""
        if lps < 0:
            raise ValidationError(f"problem size must be non-negative, got {lps}")
        r = self.results(accuracy, success)
        return Stage3Breakdown(
            results=r,
            sort_flops=self.sort_ops(r) / self.host.flops_sp,
            loads=self.host.memory_seconds(r * _ELEMENT_BYTES * lps),
            stores=self.host.memory_seconds(r * 1.0),
        )

    def breakdown_arrays(
        self,
        lps: np.ndarray,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> Stage3ArrayBreakdown:
        """Vectorized :meth:`breakdown` over an integer array of problem sizes.

        Element ``i`` reproduces ``breakdown(lps[i], accuracy, success)``
        exactly.
        """
        lps = np.asarray(lps)
        if not np.issubdtype(lps.dtype, np.integer):
            raise ValidationError(f"lps array must be integer-typed, got {lps.dtype}")
        if lps.size and np.min(lps) < 0:
            raise ValidationError("problem sizes must be non-negative")
        r = self.results(accuracy, success)
        sort_seconds = self.sort_ops(r) / self.host.flops_sp
        return Stage3ArrayBreakdown(
            lps=lps,
            results=r,
            sort_flops=np.broadcast_to(sort_seconds, lps.shape),
            loads=self.host.memory_seconds(r * _ELEMENT_BYTES * lps.astype(np.float64)),
            stores=np.broadcast_to(self.host.memory_seconds(r * 1.0), lps.shape),
        )

    def seconds(
        self,
        lps: int,
        accuracy: float | None = None,
        success: float | None = None,
    ) -> float:
        """Total Stage-3 time for problem size ``lps``."""
        return self.breakdown(lps, accuracy, success).total
