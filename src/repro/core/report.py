"""Plain-text report rendering for benches and examples.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting consistent everywhere.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from ..exceptions import ValidationError

__all__ = ["format_seconds", "format_table", "format_series"]

_UNITS = (
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
)


def format_seconds(value: float, digits: int = 3) -> str:
    """Engineering-style rendering of a duration (``1.23 ms``, ``45.6 s``)."""
    if value < 0:
        raise ValidationError(f"durations must be non-negative, got {value}")
    if value == 0:
        return "0 s"
    if math.isinf(value):
        return "inf"
    for scale, unit in _UNITS:
        if value >= scale:
            return f"{value / scale:.{digits}g} {unit}"
    return f"{value / 1e-9:.{digits}g} ns"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(xs: Sequence[object], ys: Sequence[float], x_name: str, y_name: str) -> str:
    """Two-column table for an (x, y) series — one paper curve."""
    if len(xs) != len(ys):
        raise ValidationError("series lengths differ")
    return format_table(
        [x_name, y_name], [[x, format_seconds(float(y))] for x, y in zip(xs, ys)]
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
