"""Stage 1: classical pre-processing (paper Fig. 6) in closed form.

Stage 1 charges, for a logical problem of size ``LPS = n``:

* ``Ising = n^2`` flops (``sp, fmad, simd``) to build the logical Ising
  model from the QUBO (Eqs. 4-5);
* ``ParameterSetting = n^3`` flops (``sp, fmad, simd``) — the paper's
  ``O(n^3)`` addition bound for setting the embedded parameters;
* ``EmbeddingOps = (EG + NG ln NG) * (2 EH) * NH * NG`` flops
  (``sp, simd``) — the worst-case Cai-Macready-Roy cost, with
  ``NH = n``, ``EH = n(n-1)/2`` (complete input graph) and the
  ``M = N = 12``, ``L = 4`` Chimera constants;
* loads/stores of the input and embedded problem arrays, a PCIe ``copyout``
  of the embedded problem, and the constant ``ProcessorInitialize``
  electronic-control cost (319 573 us).

The closed form matches the bundled ASPEN listing exactly (the test suite
asserts equality against the evaluator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..embedding.cmr import cmr_embedding_ops
from ..exceptions import ValidationError
from ..hardware.chimera import chimera_edge_count, chimera_node_count
from ..hardware.timing import DW2_TIMING, DWaveTimingModel
from .machine_params import XEON_E5_2680, HostMachineParams

__all__ = ["Stage1Breakdown", "Stage1ArrayBreakdown", "Stage1Model"]

_INPUT_ELEMENT_BYTES = 4.0  # single-precision values, as in the listing


@dataclass(frozen=True)
class Stage1Breakdown:
    """Per-contribution seconds of one Stage-1 evaluation.

    Every field is in *seconds* — including ``embedding_flops``, whose name
    is a historical misnomer: it stores the embedding *time*
    (``embedding_ops / embed_rate``), not an operation count.  The field
    name is frozen because it doubles as a stage-term identifier in study
    artifacts and golden fixtures; prefer the honest
    :attr:`embedding_seconds` alias in new code.
    """

    ising_generation: float
    parameter_setting: float
    embedding_flops: float
    input_loads: float
    output_stores: float
    intracomm: float
    processor_initialize: float

    @property
    def embedding_seconds(self) -> float:
        """Honest alias for ``embedding_flops`` (which stores seconds)."""
        return self.embedding_flops

    @property
    def total(self) -> float:
        return (
            self.ising_generation
            + self.parameter_setting
            + self.embedding_flops
            + self.input_loads
            + self.output_stores
            + self.intracomm
            + self.processor_initialize
        )

    @property
    def classical_translation(self) -> float:
        """Everything except the constant hardware initialization."""
        return self.total - self.processor_initialize


@dataclass(frozen=True)
class Stage1ArrayBreakdown:
    """Stage-1 contributions for a whole array of problem sizes at once.

    The struct-of-arrays counterpart of :class:`Stage1Breakdown`: every field
    is an ndarray aligned with the ``lps`` axis, and every element is
    computed with the same floating-point operation sequence as the scalar
    path, so ``breakdown_arrays(lps)[i] == breakdown(lps[i])`` exactly.
    """

    lps: np.ndarray
    ising_generation: np.ndarray
    parameter_setting: np.ndarray
    embedding_flops: np.ndarray
    input_loads: np.ndarray
    output_stores: np.ndarray
    intracomm: np.ndarray
    processor_initialize: np.ndarray

    @property
    def embedding_seconds(self) -> np.ndarray:
        """Honest alias for ``embedding_flops`` (which stores seconds)."""
        return self.embedding_flops

    @property
    def total(self) -> np.ndarray:
        return (
            self.ising_generation
            + self.parameter_setting
            + self.embedding_flops
            + self.input_loads
            + self.output_stores
            + self.intracomm
            + self.processor_initialize
        )

    @property
    def classical_translation(self) -> np.ndarray:
        """Everything except the constant hardware initialization."""
        return self.total - self.processor_initialize


@dataclass(frozen=True)
class Stage1Model:
    """Closed-form Stage-1 timing model.

    Parameters
    ----------
    m, n, l:
        Chimera lattice dimensions (paper: 12, 12, 4).
    host:
        Conventional-host rates (Xeon E5-2680 by default).
    timing:
        QPU timing constants supplying ``ProcessorInitialize``.
    embed_rate_scale:
        Calibration factor on the embedding flop rate (see
        :mod:`repro.core.calibration`); 1.0 reproduces the raw machine model.
    """

    m: int = 12
    n: int = 12
    l: int = 4
    host: HostMachineParams = field(default_factory=lambda: XEON_E5_2680)
    timing: DWaveTimingModel = field(default_factory=lambda: DW2_TIMING)
    embed_rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.l) < 1:
            raise ValidationError("Chimera dimensions must be positive")
        if not (math.isfinite(self.embed_rate_scale) and self.embed_rate_scale > 0):
            raise ValidationError(
                f"embed_rate_scale must be positive and finite, "
                f"got {self.embed_rate_scale!r}"
            )

    # -- graph-size parameters (the listing's NG / EG / NH / EH) --------- #
    @property
    def hardware_nodes(self) -> int:
        return chimera_node_count(self.m, self.n, self.l)

    @property
    def hardware_edges(self) -> int:
        return chimera_edge_count(self.m, self.n, self.l)

    @staticmethod
    def logical_nodes(lps: int) -> int:
        return int(lps)

    @staticmethod
    def logical_edges(lps: int) -> int:
        """Complete input graph: ``EH = n(n-1)/2`` (the worst case assumed)."""
        return lps * (lps - 1) // 2

    # -- operation counts -------------------------------------------------- #
    def ising_generation_ops(self, lps: int) -> float:
        """``Ising = LPS^2`` flops."""
        return float(lps) ** 2

    def parameter_setting_ops(self, lps: int) -> float:
        """``ParameterSetting = LPS^3`` flops."""
        return float(lps) ** 3

    def embedding_ops(self, lps: int) -> float:
        """Worst-case CMR operation count (Fig. 6)."""
        return cmr_embedding_ops(
            nh=self.logical_nodes(lps),
            eh=self.logical_edges(lps),
            ng=self.hardware_nodes,
            eg=self.hardware_edges,
        )

    # -- timing ------------------------------------------------------------ #
    def breakdown(self, lps: int) -> Stage1Breakdown:
        """Evaluate every Stage-1 contribution for problem size ``lps``."""
        if lps < 0:
            raise ValidationError(f"problem size must be non-negative, got {lps}")
        nh = self.logical_nodes(lps)
        eh = self.logical_edges(lps)
        eg = self.hardware_edges

        embed_rate = self.host.flops_sp_simd * self.embed_rate_scale
        return Stage1Breakdown(
            ising_generation=self.ising_generation_ops(lps) / self.host.flops_sp_fmad_simd,
            parameter_setting=self.parameter_setting_ops(lps) / self.host.flops_sp_fmad_simd,
            embedding_flops=self.embedding_ops(lps) / embed_rate,
            input_loads=self.host.memory_seconds(eh * _INPUT_ELEMENT_BYTES),
            output_stores=self.host.memory_seconds(
                nh * _INPUT_ELEMENT_BYTES + eg * _INPUT_ELEMENT_BYTES
            ),
            intracomm=self.host.pcie_seconds(eg * _INPUT_ELEMENT_BYTES),
            processor_initialize=self.timing.processor_initialize_s,
        )

    def breakdown_arrays(self, lps: np.ndarray) -> Stage1ArrayBreakdown:
        """Vectorized :meth:`breakdown` over an integer array of problem sizes.

        Element ``i`` reproduces ``breakdown(lps[i])`` exactly (same
        floating-point operation sequence); this is the fast path behind
        ``SplitExecutionModel.sweep_arrays`` for Fig. 9-style scans over
        thousands of LPS points.
        """
        lps = np.asarray(lps)
        if not np.issubdtype(lps.dtype, np.integer):
            raise ValidationError(f"lps array must be integer-typed, got {lps.dtype}")
        if lps.size and np.min(lps) < 0:
            raise ValidationError("problem sizes must be non-negative")
        # Widen before the lps*(lps-1) product: a narrow input dtype (int32
        # and below) would silently wrap for lps >= 2^16ish.
        lps64 = lps.astype(np.int64)
        nh = lps64.astype(np.float64)
        eh = (lps64 * (lps64 - 1) // 2).astype(np.float64)
        ng = self.hardware_nodes
        eg = self.hardware_edges

        # Worst-case CMR operation count, mirroring cmr_embedding_ops term
        # by term so scalar and array paths round identically.
        log_ng = float(np.log(ng)) if ng > 1 else 0.0
        embedding_ops = (eg + ng * log_ng) * (2.0 * eh) * nh * ng

        embed_rate = self.host.flops_sp_simd * self.embed_rate_scale
        return Stage1ArrayBreakdown(
            lps=lps,
            ising_generation=nh**2 / self.host.flops_sp_fmad_simd,
            parameter_setting=nh**3 / self.host.flops_sp_fmad_simd,
            embedding_flops=embedding_ops / embed_rate,
            input_loads=self.host.memory_seconds(eh * _INPUT_ELEMENT_BYTES),
            output_stores=self.host.memory_seconds(
                nh * _INPUT_ELEMENT_BYTES + eg * _INPUT_ELEMENT_BYTES
            ),
            intracomm=np.broadcast_to(
                self.host.pcie_seconds(eg * _INPUT_ELEMENT_BYTES), lps.shape
            ),
            processor_initialize=np.broadcast_to(
                self.timing.processor_initialize_s, lps.shape
            ),
        )

    def seconds(self, lps: int) -> float:
        """Total Stage-1 time for problem size ``lps``."""
        return self.breakdown(lps).total

    def embedded_graph_size(self, lps: int) -> int:
        """The paper's worst-case assumption: the embedded graph has ``LPS^2`` nodes."""
        return int(lps) ** 2

    def dominant_term(self, lps: int) -> str:
        """Name of the largest contribution at size ``lps``."""
        b = self.breakdown(lps)
        terms = {
            "ising_generation": b.ising_generation,
            "parameter_setting": b.parameter_setting,
            "embedding_flops": b.embedding_flops,
            "input_loads": b.input_loads,
            "output_stores": b.output_stores,
            "intracomm": b.intracomm,
            "processor_initialize": b.processor_initialize,
        }
        return max(terms, key=terms.get)  # type: ignore[arg-type]

    def crossover_size(self) -> int:
        """Smallest ``lps`` at which embedding flops exceed the constant init cost.

        Below this size Stage 1 is dominated by the fixed 0.32 s electronic
        programming; above it, by the embedding computation — the knee
        visible in Fig. 9(a).
        """
        lps = 1
        while lps < 10_000:
            b = self.breakdown(lps)
            if b.embedding_flops > b.processor_initialize:
                return lps
            lps += 1
        raise ValidationError("no crossover found below lps = 10000")  # pragma: no cover
