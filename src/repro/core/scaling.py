"""Scaling studies: series sweeps, log-log exponents, crossover finding.

The paper's headline analysis is about *scaling* — "how the time-to-solution
varies with the size of the problem" (Sec. 3.3).  These helpers extract the
quantities that analysis rests on: stage-time series over problem size, the
empirical polynomial order of a series, and crossover points between
competing cost terms.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from .pipeline import SplitExecutionModel

__all__ = [
    "series",
    "loglog_slope",
    "crossover_point",
    "crossover_index",
    "stage_dominance_table",
]


def series(fn: Callable[[int], float], xs: Sequence[int]) -> np.ndarray:
    """Evaluate ``fn`` over ``xs`` into a float array."""
    return np.asarray([fn(int(x)) for x in xs], dtype=np.float64)


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log(y)`` against ``log(x)``.

    The empirical polynomial order of a scaling curve; e.g. the Stage-1
    embedding term has asymptotic slope 3 in the problem size.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.size < 2:
        raise ValidationError("need at least two matching samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValidationError("log-log slope requires positive samples")
    lx, ly = np.log(x), np.log(y)
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)


def crossover_point(
    f: Callable[[int], float],
    g: Callable[[int], float],
    lo: int = 1,
    hi: int = 10_000,
) -> int | None:
    """Smallest integer ``x`` in ``[lo, hi]`` with ``f(x) >= g(x)``.

    Assumes ``f - g`` is eventually non-decreasing (true for the polynomial-
    vs-constant comparisons used here); returns ``None`` if no crossover
    occurs in range.
    """
    if lo > hi:
        raise ValidationError(f"empty search range [{lo}, {hi}]")
    if f(lo) >= g(lo):
        return lo
    if f(hi) < g(hi):
        return None
    a, b = lo, hi  # invariant: f(a) < g(a), f(b) >= g(b)
    while b - a > 1:
        mid = (a + b) // 2
        if f(mid) >= g(mid):
            b = mid
        else:
            a = mid
    return b


def crossover_index(f_values, g_values) -> int | None:
    """Index of the first sample with ``f >= g`` in two aligned series.

    The sampled-data counterpart of :func:`crossover_point` for curves that
    already exist as arrays (a study-result slice rather than a callable);
    returns ``None`` when ``f`` stays below ``g`` across the whole series.
    """
    f = np.asarray(f_values, dtype=np.float64)
    g = np.asarray(g_values, dtype=np.float64)
    if f.shape != g.shape or f.ndim != 1:
        raise ValidationError(
            f"need two aligned 1-D series, got shapes {f.shape} and {g.shape}"
        )
    hits = np.flatnonzero(f >= g)
    return int(hits[0]) if hits.size else None


def stage_dominance_table(
    model: SplitExecutionModel,
    lps_values: Sequence[int],
    accuracy: float = 0.99,
    success: float = 0.7,
) -> list[dict[str, float | int | str]]:
    """Rows of stage times, fractions, and the dominant stage per size.

    The machine-readable form of the paper's central claim (Sec. 3.3): the
    application bottleneck lies in Stage 1, not in quantum execution.
    """
    rows: list[dict[str, float | int | str]] = []
    for lps in lps_values:
        t = model.time_to_solution(int(lps), accuracy, success)
        rows.append(
            {
                "lps": int(lps),
                "stage1_s": t.stage1_seconds,
                "stage2_s": t.stage2_seconds,
                "stage3_s": t.stage3_seconds,
                "total_s": t.total_seconds,
                "dominant": t.dominant_stage,
                "quantum_fraction": t.quantum_fraction,
                "stage1_over_stage2": (
                    t.stage1_seconds / t.stage2_seconds
                    if t.stage2_seconds > 0
                    else float("inf")
                ),
            }
        )
    return rows
