"""Parameter-sensitivity analysis of the split-execution model.

The paper's abstract claims "the primary time cost is independent of
quantum processor behavior".  This module makes that statement quantitative:
the *elasticity* of the total time-to-solution with respect to a machine or
program parameter,

    elasticity = (dT / T) / (dx / x),

estimated by central finite differences in log space.  An elasticity of -1
means doubling the parameter halves the total; 0 means the parameter is
irrelevant at that operating point.  The paper's claim is then simply:
the elasticity with respect to every QPU-side constant (anneal duration,
readout, success probability) is ~0, while CPU-side rates carry ~-1.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from .pipeline import SplitExecutionModel

__all__ = ["elasticity", "elasticity_series", "model_elasticities"]


def elasticity(
    fn: Callable[[float], float],
    x0: float,
    rel_step: float = 0.05,
) -> float:
    """Central-difference elasticity of ``fn`` at ``x0``.

    ``(d log fn / d log x)`` estimated with multiplicative steps
    ``x0 * (1 +/- rel_step)``.
    """
    if x0 <= 0:
        raise ValidationError(f"elasticity needs a positive base point, got {x0}")
    if not 0 < rel_step < 1:
        raise ValidationError(f"rel_step must lie in (0, 1), got {rel_step}")
    import math

    hi = fn(x0 * (1 + rel_step))
    lo = fn(x0 * (1 - rel_step))
    if hi <= 0 or lo <= 0:
        raise ValidationError("fn must be positive near the base point")
    return (math.log(hi) - math.log(lo)) / (
        math.log(1 + rel_step) - math.log(1 - rel_step)
    )


def elasticity_series(xs: Sequence[float], ys: Sequence[float]) -> np.ndarray:
    """Pointwise elasticity ``d log y / d log x`` along a sampled curve.

    The grid-based counterpart of :func:`elasticity` for data that already
    exists as ``(x, y)`` samples — a study-result slice along one axis
    rather than a callable model.  Interior points use the central
    log-space difference; the two endpoints use one-sided differences, so
    the output aligns with the input.  Requires at least two strictly
    positive samples with strictly increasing ``x``.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or x.size < 2:
        raise ValidationError("need at least two matching (x, y) samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValidationError("elasticity requires positive samples")
    if np.any(np.diff(x) <= 0):
        raise ValidationError("x samples must be strictly increasing")
    return np.gradient(np.log(y), np.log(x))


def model_elasticities(
    model: SplitExecutionModel | None = None,
    lps: int = 50,
    accuracy: float = 0.99,
    success: float = 0.7,
) -> dict[str, float]:
    """Elasticity of total time-to-solution w.r.t. every tunable constant.

    Returns ``{parameter_name: elasticity}`` for the CPU clock, memory and
    PCIe bandwidths, the QPU anneal duration, and the characteristic
    success probability, all evaluated at the given operating point.
    """
    base = model or SplitExecutionModel()

    def total_with_clock(clock: float) -> float:
        m = base.with_overrides(clock_hz=clock)
        return m.time_to_solution(lps, accuracy, success).total_seconds

    def total_with_membw(bw: float) -> float:
        m = base.with_overrides(memory_bandwidth_bytes_per_s=bw)
        return m.time_to_solution(lps, accuracy, success).total_seconds

    def total_with_pcie(bw: float) -> float:
        m = base.with_overrides(pcie_bandwidth_bytes_per_s=bw)
        return m.time_to_solution(lps, accuracy, success).total_seconds

    def total_with_anneal(anneal_us: float) -> float:
        m = base.with_overrides(anneal_us=anneal_us)
        return m.time_to_solution(lps, accuracy, success).total_seconds

    def total_with_success(ps: float) -> float:
        return base.time_to_solution(lps, accuracy, min(ps, 0.999999)).total_seconds

    host = base.stage1.host
    return {
        "cpu_clock_hz": elasticity(total_with_clock, host.clock_hz),
        "memory_bandwidth": elasticity(total_with_membw, host.memory_bandwidth_bytes_per_s),
        "pcie_bandwidth": elasticity(total_with_pcie, host.pcie_bandwidth_bytes_per_s),
        "anneal_duration_us": elasticity(total_with_anneal, base.stage2.timing.anneal_us),
        "success_probability": elasticity(total_with_success, success),
    }
