"""The repetition planner: paper Eq. (6).

The QPU is a probabilistic processor; if a single run finds the ground
state with characteristic probability ``p_s``, then reaching a target
solution accuracy ``p_a`` (probability that at least one of ``s`` runs
succeeded) requires

    s >= log(1 - p_a) / log(1 - p_s).

These helpers implement the formula, its inverse forms, and the Monte-Carlo
validation hook used by the benchmark suite.
"""

from __future__ import annotations

import math

from ..exceptions import ValidationError

__all__ = [
    "required_repetitions",
    "achieved_accuracy",
    "required_success_probability",
]


def _check_prob(name: str, value: float, lo_open: bool, hi_open: bool) -> None:
    lo_ok = value > 0.0 if lo_open else value >= 0.0
    hi_ok = value < 1.0 if hi_open else value <= 1.0
    if not (lo_ok and hi_ok):
        lo = "(" if lo_open else "["
        hi = ")" if hi_open else "]"
        raise ValidationError(f"{name} must lie in {lo}0, 1{hi}, got {value}")


def required_repetitions(accuracy: float, success: float) -> int:
    """Minimum number of annealing runs to reach the target accuracy (Eq. 6).

    Parameters
    ----------
    accuracy:
        Desired probability ``p_a`` in ``[0, 1)`` that the ensemble contains
        the ground state.
    success:
        Characteristic single-run success probability ``p_s`` in ``(0, 1]``.

    Returns
    -------
    int
        ``ceil(log(1 - p_a) / log(1 - p_s))``; 0 when ``accuracy == 0``,
        1 when ``success == 1`` and ``accuracy > 0``.
    """
    _check_prob("accuracy", accuracy, lo_open=False, hi_open=True)
    _check_prob("success", success, lo_open=True, hi_open=False)
    if accuracy == 0.0:
        return 0
    if success == 1.0:
        return 1
    s = math.log(1.0 - accuracy) / math.log(1.0 - success)
    return int(math.ceil(s - 1e-12))


def achieved_accuracy(repetitions: int, success: float) -> float:
    """Accuracy delivered by ``s`` runs: ``1 - (1 - p_s)^s`` (inverse of Eq. 6)."""
    if repetitions < 0:
        raise ValidationError(f"repetitions must be non-negative, got {repetitions}")
    _check_prob("success", success, lo_open=True, hi_open=False)
    return 1.0 - (1.0 - success) ** repetitions


def required_success_probability(accuracy: float, repetitions: int) -> float:
    """Smallest ``p_s`` for which ``s`` runs reach the target accuracy."""
    _check_prob("accuracy", accuracy, lo_open=False, hi_open=True)
    if repetitions < 1:
        if accuracy == 0.0:
            return 0.0
        raise ValidationError("cannot reach a positive accuracy with zero repetitions")
    return 1.0 - (1.0 - accuracy) ** (1.0 / repetitions)
