"""Machine-rate constants shared by the closed-form stage models.

These mirror the bundled ASPEN machine files exactly (see
``repro/aspen/models/``); the test suite cross-validates the closed-form
stage models against the ASPEN evaluator, so any change here must be made
in the ``.aspen`` sources too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = ["HostMachineParams", "XEON_E5_2680"]


@dataclass(frozen=True)
class HostMachineParams:
    """Aggregate rates of the conventional host (CPU socket + DRAM + PCIe)."""

    clock_hz: float = 2.7e9
    simd_sp_lanes: int = 8
    fmad_factor: float = 2.0
    memory_bandwidth_bytes_per_s: float = 8.528e9 * 4
    pcie_bandwidth_bytes_per_s: float = 6e9
    pcie_latency_s: float = 10e-6

    def __post_init__(self) -> None:
        for name in (
            "clock_hz",
            "memory_bandwidth_bytes_per_s",
            "pcie_bandwidth_bytes_per_s",
        ):
            if getattr(self, name) <= 0:
                raise ValidationError(f"{name} must be positive")
        if self.simd_sp_lanes < 1 or self.fmad_factor < 1:
            raise ValidationError("simd_sp_lanes and fmad_factor must be >= 1")
        if self.pcie_latency_s < 0:
            raise ValidationError("pcie_latency_s must be non-negative")

    # -- effective flop rates for the paper's trait combinations --------- #
    @property
    def flops_sp(self) -> float:
        """Scalar single-precision rate (clause ``as sp``)."""
        return self.clock_hz

    @property
    def flops_sp_simd(self) -> float:
        """Vectorized single-precision rate (clause ``as sp, simd``)."""
        return self.clock_hz * self.simd_sp_lanes

    @property
    def flops_sp_fmad_simd(self) -> float:
        """Vectorized FMA single-precision rate (clause ``as sp, fmad, simd``)."""
        return self.clock_hz * self.simd_sp_lanes * self.fmad_factor

    # -- data movement ---------------------------------------------------- #
    def memory_seconds(self, num_bytes):
        """Time to stream ``num_bytes`` through main memory.

        Accepts a scalar or an ndarray of byte counts (the array form backs
        the vectorized Fig. 9 sweeps); the return type matches the input.
        """
        if np.any(np.asarray(num_bytes) < 0):
            raise ValidationError("byte counts must be non-negative")
        return num_bytes / self.memory_bandwidth_bytes_per_s

    def pcie_seconds(self, num_bytes):
        """Latency plus transfer time for one PCIe crossing (scalar or ndarray)."""
        if np.any(np.asarray(num_bytes) < 0):
            raise ValidationError("byte counts must be non-negative")
        return self.pcie_latency_s + num_bytes / self.pcie_bandwidth_bytes_per_s


#: The Intel Xeon E5-2680 host of the paper's Fig. 5 machine model.
XEON_E5_2680 = HostMachineParams()
