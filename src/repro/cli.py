"""Command-line interface: ``python -m repro.cli <command>``.

Nine commands cover the everyday uses of the library:

* ``predict`` — stage-resolved time-to-solution from the performance models
  (the paper's Fig. 9 numbers for one operating point);
* ``solve``   — run a random problem through the simulated device end to end;
* ``embed``   — minor-embed a random graph and report chain statistics;
* ``fig9``    — print the three Fig. 9 series from the ASPEN artifacts;
* ``study``   — evaluate a declarative parameter-space study (a whole grid
  of operating points) through the sharded executor, write the results
  artifact, and print the dominance/scaling summary;
* ``serve``   — run the study job service (:mod:`repro.service`): an HTTP
  server accepting spec submissions and serving byte-stable artifacts;
* ``submit``  — send a study to a running service, wait for it, and write
  the served artifact (byte-identical to a local ``study`` of the same
  spec);
* ``coordinate`` — ``serve`` with distributed shard dispatch: submitted
  studies are leased shard-by-shard to pulled ``worker`` processes (with
  an inline-drain liveness fallback), and the artifact stays
  byte-identical to every other topology;
* ``worker``  — one shard worker pulling leases from a ``coordinate``
  server, evaluating them through the backend registry, and pushing
  content-hash-verified shard bytes back.

``predict``, ``fig9``, and ``study`` accept ``--backend``: any name from
the performance-backend registry (:mod:`repro.backends`) — for ``study``
a comma list forming a grid axis, so one command sweeps the closed forms,
the ASPEN listings, and the DES runtime side by side.  ``study --cache``
and ``serve --cache`` point at a content-addressed shard store that
repeated runs (local or served) reuse.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Split-execution performance models (Humble et al., 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("predict", help="stage-resolved time-to-solution")
    p.add_argument("--lps", type=int, default=50, help="logical problem size")
    p.add_argument("--accuracy", type=float, default=0.99, help="target accuracy pa")
    p.add_argument("--success", type=float, default=0.7, help="single-run success ps")
    p.add_argument(
        "--embedding-mode",
        choices=("online", "offline"),
        default="online",
        help="inline CMR embedding vs precomputed lookup table",
    )
    p.add_argument(
        "--backend",
        type=str,
        default="closed_form",
        help="performance backend (registry name: closed_form, aspen, des, "
        "calibrated, learned, ...)",
    )

    p = sub.add_parser("solve", help="solve an Ising problem on the simulated QPU")
    p.add_argument("--file", type=str, default=None,
                   help="COO problem file (see repro.qubo.io); random problem if omitted")
    p.add_argument("--spins", type=int, default=8, help="random-problem size")
    p.add_argument("--reads", type=int, default=100, help="annealing reads")
    p.add_argument("--cells", type=int, default=4, help="Chimera lattice is cells x cells")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("embed", help="CMR-embed a random graph and report statistics")
    p.add_argument("--vertices", type=int, default=16)
    p.add_argument("--density", type=float, default=0.3, help="edge probability")
    p.add_argument("--cells", type=int, default=12, help="Chimera lattice is cells x cells")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("fig9", help="print the Fig. 9 series from the ASPEN models")
    p.add_argument("--max-lps", type=int, default=100)
    p.add_argument(
        "--backend",
        type=str,
        default="aspen",
        help="performance backend evaluating the series (default: the ASPEN "
        "artifacts; closed_form/des use the library defaults pa=0.99, ps=0.7)",
    )

    p = sub.add_parser(
        "study",
        help="evaluate a parameter-space study over the performance models",
        description="Evaluate a cartesian grid of operating points through the "
        "sharded study executor.  Describe the grid either with a JSON spec "
        "file (--spec) or inline axis flags; axis flags accept comma lists "
        "(0.9,0.99) and, for --lps, start:stop[:step] ranges.",
    )
    _add_spec_flags(p)
    p.add_argument("--workers", type=int, default=1, help="executor process count")
    p.add_argument("--shard-size", type=int, default=None,
                   help="points per shard (fixes the shard grid; see DESIGN.md)")
    p.add_argument("--scalar", action="store_true",
                   help="force the scalar reference loop instead of sweep_arrays")
    p.add_argument("--out", type=str, default=None,
                   help="write the results artifact JSON here")
    p.add_argument("--cache", type=str, default=None,
                   help="content-addressed shard cache directory; repeated "
                   "studies over the same grid reuse stored shards")
    p.add_argument("--no-summary", action="store_true", help="skip the summary tables")

    p = sub.add_parser(
        "serve",
        help="run the study job service (HTTP server over the study executor)",
        description="Serve POST /studies, GET /studies/<id>[/artifact], "
        "GET /backends, and GET /healthz on a ThreadingHTTPServer.  Served "
        "artifacts are byte-identical to a local `study` run of the same "
        "spec; identical grids deduplicate onto one content-hash job id.",
    )
    _add_serve_flags(p)

    p = sub.add_parser(
        "coordinate",
        help="run the study service with distributed shard dispatch",
        description="A `serve` whose jobs are executed by leasing shards to "
        "pulled `worker` processes over POST /distributed/lease|push|fail.  "
        "Leases expire and requeue (a SIGKILLed worker costs nothing but "
        "time), pushed bytes are verified against their content hash before "
        "acceptance, and with no workers attached shards drain inline — the "
        "served artifact is byte-identical in every topology.",
    )
    _add_serve_flags(p)
    p.add_argument("--scheduler", type=str, default="static",
                   choices=("static", "work-stealing", "size-aware"),
                   help="default shard dispatch strategy (a spec pinning its "
                   "scheduler axis to one value overrides this per study)")
    p.add_argument("--lease-ttl", type=float, default=30.0,
                   help="seconds a shard lease lives before the coordinator "
                   "requeues it (the crash-recovery clock)")

    p = sub.add_parser(
        "worker",
        help="run one shard worker against a `coordinate` server",
        description="Pull shard leases from a coordinator, evaluate them "
        "through the backend registry, and push content-hash-verified shard "
        "bytes back.  Workers are stateless between pulls; run as many as "
        "you like, kill any of them freely.",
    )
    p.add_argument("--coordinator", type=str, required=True,
                   help="base URL of the coordinator (e.g. http://127.0.0.1:8321)")
    p.add_argument("--id", type=str, default=None,
                   help="worker identity for attribution (default: worker-<pid>)")
    p.add_argument("--poll", type=float, default=0.2,
                   help="seconds between empty lease pulls")
    p.add_argument("--max-idle", type=float, default=None,
                   help="exit after this many idle seconds (default: run until "
                   "the coordinator goes away)")
    p.add_argument("--max-shards", type=int, default=None,
                   help="exit after completing this many shards")

    p = sub.add_parser(
        "submit",
        help="submit a study to a running service and fetch its artifact",
        description="Send a ScenarioSpec (same --spec/axis flags as `study`) "
        "to a study service, poll the job until it finishes, and write the "
        "served artifact — byte-identical to running `study` locally.",
    )
    p.add_argument("--url", type=str, required=True,
                   help="base URL of the service (e.g. http://127.0.0.1:8321)")
    _add_spec_flags(p)
    p.add_argument("--out", type=str, default=None,
                   help="write the served artifact JSON here")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the job before giving up")
    p.add_argument("--poll", type=float, default=0.1,
                   help="initial status poll interval in seconds (backs off to ~1s)")
    p.add_argument("--retries", type=int, default=2,
                   help="transient-failure retries per request (connection resets, "
                   "5xx, 429); safe because job ids are content hashes")

    return parser


def _add_serve_flags(p: argparse.ArgumentParser) -> None:
    """The server-shaping flags shared by ``serve`` and ``coordinate``."""
    p.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8321,
                   help="bind port (0 picks an ephemeral port and prints it)")
    p.add_argument("--cache", type=str, default=None,
                   help="content-addressed shard cache directory shared by all jobs")
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded job-queue capacity (full queue rejects with 429)")
    p.add_argument("--job-workers", type=int, default=2,
                   help="worker threads executing queued studies")
    p.add_argument("--executor-workers", type=int, default=1,
                   help="run_study process count per job")
    p.add_argument("--shard-size", type=int, default=None,
                   help="points per shard for every served job (part of job identity)")
    p.add_argument("--journal", type=str, default=None,
                   help="append-only JSONL job journal; a restarted server replays "
                   "it to re-serve finished grids and complete interrupted jobs")
    p.add_argument("--quiet", action="store_true", help="suppress per-request log lines")


def _add_spec_flags(p: argparse.ArgumentParser) -> None:
    """The ScenarioSpec-shaping flags shared by ``study`` and ``submit``."""
    p.add_argument("--spec", type=str, default=None, help="JSON ScenarioSpec file")
    p.add_argument("--name", type=str, default=None, help="study label for the artifact")
    p.add_argument("--lps", type=str, default=None,
                   help="LPS axis: comma list or start:stop[:step] range (e.g. 1:101)")
    p.add_argument("--accuracy", type=str, default=None, help="accuracy axis (comma list)")
    p.add_argument("--success", type=str, default=None, help="success axis (comma list)")
    p.add_argument("--embedding-mode", type=str, default=None,
                   help="embedding-mode axis: online, offline, or online,offline")
    p.add_argument("--backend", type=str, default=None,
                   help="backend axis: comma list of registry names "
                   "(e.g. closed_form,aspen,des,calibrated,learned)")
    p.add_argument("--scheduler", type=str, default=None,
                   help="scheduler axis: comma list of dispatch strategies "
                   "(static, work-stealing, size-aware); adds the simulated "
                   "per-shard latency/steal columns for each strategy")
    p.add_argument("--queue-policy", type=str, default=None,
                   help="queue-policy axis: comma list of annealer queue "
                   "disciplines (fifo, priority, round-robin); contended-"
                   "traffic axes need the des backend")
    p.add_argument("--sessions", type=str, default=None,
                   help="sessions axis: comma list of concurrent closed-"
                   "population session counts (des backend)")
    p.add_argument("--arrival-rate", type=str, default=None,
                   help="arrival-rate axis: comma list of open Poisson "
                   "arrival rates in requests/s (des backend)")
    p.add_argument("--anneal-us", type=str, default=None,
                   help="QPU anneal-duration axis in us (comma list)")
    p.add_argument("--clock-hz", type=str, default=None, help="host clock axis (comma list)")
    p.add_argument("--mc-trials", type=int, default=None,
                   help="Monte-Carlo ensembles per point (0 disables the column)")
    p.add_argument("--seed", type=int, default=None, help="root seed for the MC streams")


def _cmd_predict(args: argparse.Namespace) -> int:
    from .core import SplitExecutionModel, format_seconds
    from .exceptions import ValidationError

    if args.backend == "closed_form":
        # The closed forms expose the full per-contribution breakdown.
        model = SplitExecutionModel(embedding_mode=args.embedding_mode)
        t = model.time_to_solution(args.lps, args.accuracy, args.success)
        print(f"split-execution prediction (LPS={args.lps}, pa={args.accuracy}, "
              f"ps={args.success}, embedding={args.embedding_mode}):")
        print(f"  stage 1 (classical pre-processing): {format_seconds(t.stage1_seconds)}")
        print(f"    - embedding computation : {format_seconds(t.stage1.embedding_flops)}")
        print(f"    - processor programming : {format_seconds(t.stage1.processor_initialize)}")
        print(f"  stage 2 (quantum execution, {t.stage2.repetitions} reads): "
              f"{format_seconds(t.stage2_seconds)}")
        print(f"  stage 3 (post-processing)         : {format_seconds(t.stage3_seconds)}")
        print(f"  total                             : {format_seconds(t.total_seconds)}")
        print(f"  dominant stage                    : {t.dominant_stage}")
        if t.stage2_seconds > 0:
            print(f"  quantum fraction                  : {t.quantum_fraction:.3e}")
        return 0

    # Any other registered backend: the shared stage-total surface.
    from . import backends

    try:
        backend = backends.get(args.backend)
        t = backend.evaluate(
            backends.full_point(
                lps=args.lps,
                accuracy=args.accuracy,
                success=args.success,
                embedding_mode=args.embedding_mode,
            )
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"split-execution prediction (LPS={args.lps}, pa={args.accuracy}, "
          f"ps={args.success}, embedding={args.embedding_mode}, "
          f"backend={args.backend}):")
    print(f"  stage 1 (classical pre-processing): {format_seconds(t.stage1_s)}")
    print(f"  stage 2 (quantum execution, {t.repetitions} reads): "
          f"{format_seconds(t.stage2_s)}")
    print(f"  stage 3 (post-processing)         : {format_seconds(t.stage3_s)}")
    print(f"  total                             : {format_seconds(t.total_seconds)}")
    print(f"  dominant stage                    : {t.dominant_stage}")
    if t.stage2_s > 0:
        print(f"  quantum fraction                  : {t.quantum_fraction:.3e}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from .annealer import DWaveDevice, ExactSolver
    from .core import format_seconds
    from .hardware import ChimeraTopology
    from .qubo import Qubo, load_problem, qubo_to_ising, random_ising

    if args.file:
        loaded = load_problem(args.file)
        problem = qubo_to_ising(loaded) if isinstance(loaded, Qubo) else loaded
        origin = f"loaded from {args.file}"
    else:
        problem = random_ising(args.spins, rng=args.seed)
        origin = "random Ising"
    device = DWaveDevice(topology=ChimeraTopology(args.cells, args.cells, 4))
    t0 = time.perf_counter()
    result = device.solve_ising(problem, num_reads=args.reads, rng=args.seed)
    wall = time.perf_counter() - t0
    print(f"problem: {origin}, {problem.num_spins} spins")
    print(f"best energy found : {result.best_energy:.6g}")
    if problem.num_spins <= 20:
        exact = ExactSolver().ground_energy(problem)
        gap = result.best_energy - exact
        print(f"exact ground      : {exact:.6g}  (gap {gap:.3g})")
    emb = result.embedded.embedding
    print(f"embedding         : {emb.num_physical} qubits, max chain {emb.max_chain_length}")
    print(f"chain breaks      : {result.chain_break_fraction:.2%}")
    print(f"device-model time : {format_seconds(result.timing.total_s)}")
    print(f"wall-clock time   : {format_seconds(wall)}")
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    import networkx as nx

    from .core import format_seconds
    from .embedding import find_embedding_cmr, verify_embedding
    from .hardware import ChimeraTopology

    graph = nx.gnp_random_graph(args.vertices, args.density, seed=args.seed)
    topo = ChimeraTopology(args.cells, args.cells, 4)
    hardware = topo.graph()
    t0 = time.perf_counter()
    emb, diag = find_embedding_cmr(graph, hardware, rng=args.seed, return_diagnostics=True)
    wall = time.perf_counter() - t0
    verify_embedding(emb, graph, hardware)
    print(f"source: G({args.vertices}, {args.density}) with {graph.number_of_edges()} edges")
    print(f"target: C({args.cells},{args.cells},4) with {topo.num_qubits} qubits")
    print(f"embedding found in {format_seconds(wall)} "
          f"({diag.tries} tries, {diag.evaluations} vertex-model evaluations)")
    print(f"  physical qubits : {emb.num_physical}")
    print(f"  max chain       : {emb.max_chain_length}")
    print(f"  mean chain      : {emb.num_physical / max(emb.num_logical, 1):.2f}")
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    from .core import format_seconds, format_table
    from .exceptions import ValidationError

    sizes = [n for n in (1, 2, 5, 10, 20, 30, 50, 75, 100) if n <= args.max_lps]
    accuracies = (50.0, 90.0, 99.0, 99.9, 99.99)

    if args.backend == "aspen":
        # The paper's artifacts, evaluated with the listings' own defaults
        # (Stage 3 uses the Fig.-8 listing's Success=0.75).
        from .core import AspenStageModels

        aspen = AspenStageModels()
        stage13_rows = [
            [n, format_seconds(aspen.stage1_seconds(n)),
             format_seconds(aspen.stage3_seconds(n))] for n in sizes
        ]
        stage2_rows = [
            [f"{a}%", format_seconds(aspen.stage2_seconds(a, 0.7))] for a in accuracies
        ]
    else:
        from . import backends

        try:
            backend = backends.get(args.backend)
            stage13_rows = []
            for n in sizes:
                t = backend.evaluate(backends.full_point(lps=n))
                stage13_rows.append(
                    [n, format_seconds(t.stage1_s), format_seconds(t.stage3_s)]
                )
            stage2_rows = []
            for a in accuracies:
                t = backend.evaluate(backends.full_point(accuracy=a / 100.0))
                stage2_rows.append([f"{a}%", format_seconds(t.stage2_s)])
        except ValidationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"backend: {args.backend}")
        print()

    print(format_table(
        ["LPS", "stage 1", "stage 3"],
        stage13_rows,
        title="Fig. 9(a)/(c): stage 1 and stage 3 vs problem size",
    ))
    print()
    print(format_table(
        ["accuracy", "stage 2 (ps=0.7)"],
        stage2_rows,
        title="Fig. 9(b): stage 2 vs accuracy",
    ))
    return 0


class _StudyArgError(Exception):
    """A user-input error in the study command (reported as 'error: ...', exit 2)."""


def _parse_lps_axis(text: str) -> list[int]:
    """``start:stop[:step]`` range (half-open, like Python) or comma list."""
    try:
        if ":" in text:
            parts = text.split(":")
            if len(parts) not in (2, 3):
                raise _StudyArgError(
                    f"bad --lps range {text!r}; expected start:stop[:step]"
                )
            start, stop = int(parts[0]), int(parts[1])
            step = int(parts[2]) if len(parts) == 3 else 1
            if step < 1 or stop < start:
                raise _StudyArgError(f"bad --lps range {text!r}")
            return list(range(start, stop, step))
        return [int(v) for v in text.split(",") if v]
    except ValueError as exc:
        raise _StudyArgError(f"bad --lps value {text!r}: {exc}") from exc


def _parse_float_axis(flag: str, text: str) -> list[float]:
    try:
        return [float(v) for v in text.split(",") if v]
    except ValueError as exc:
        raise _StudyArgError(f"bad {flag} value {text!r}: {exc}") from exc


def _build_study_spec(args: argparse.Namespace):
    from .exceptions import ValidationError
    from .studies import ScenarioSpec

    if args.spec:
        try:
            payload = ScenarioSpec.from_file(args.spec).to_dict()
        except OSError as exc:
            raise _StudyArgError(f"cannot read spec file {args.spec}: {exc}") from exc
        except ValidationError as exc:
            raise _StudyArgError(str(exc)) from exc
    else:
        payload = {"name": "study", "axes": {}, "mc_trials": 0, "seed": 0}
    axes = payload["axes"]
    # Inline flags refine (or fully define) the spec.
    if args.lps is not None:
        axes["lps"] = _parse_lps_axis(args.lps)
    if args.accuracy is not None:
        axes["accuracy"] = _parse_float_axis("--accuracy", args.accuracy)
    if args.success is not None:
        axes["success"] = _parse_float_axis("--success", args.success)
    if args.embedding_mode is not None:
        axes["embedding_mode"] = [v for v in args.embedding_mode.split(",") if v]
    if args.backend is not None:
        axes["backend"] = [v for v in args.backend.split(",") if v]
    if args.scheduler is not None:
        axes["scheduler"] = [v for v in args.scheduler.split(",") if v]
    if args.queue_policy is not None:
        axes["queue_policy"] = [v for v in args.queue_policy.split(",") if v]
    if args.sessions is not None:
        try:
            axes["sessions"] = [int(v) for v in args.sessions.split(",") if v]
        except ValueError as exc:
            raise _StudyArgError(f"bad --sessions value {args.sessions!r}: {exc}") from exc
    if args.arrival_rate is not None:
        axes["arrival_rate"] = _parse_float_axis("--arrival-rate", args.arrival_rate)
    if args.anneal_us is not None:
        axes["anneal_us"] = _parse_float_axis("--anneal-us", args.anneal_us)
    if args.clock_hz is not None:
        axes["clock_hz"] = _parse_float_axis("--clock-hz", args.clock_hz)
    if args.name is not None:
        payload["name"] = args.name
    if args.mc_trials is not None:
        payload["mc_trials"] = args.mc_trials
    if args.seed is not None:
        payload["seed"] = args.seed
    if not axes and not args.spec:
        # A spec file with empty axes is a valid single-point study; with
        # neither file nor flags there is nothing to run.
        raise _StudyArgError("no axes given; pass --spec or at least one axis flag")
    try:
        return ScenarioSpec.from_dict(payload)
    except ValidationError as exc:
        raise _StudyArgError(str(exc)) from exc


def _cmd_study(args: argparse.Namespace) -> int:
    from .exceptions import ValidationError
    from .studies import StudyCache, run_study, study_summary
    from .studies.executor import DEFAULT_SHARD_SIZE

    shard_size = DEFAULT_SHARD_SIZE if args.shard_size is None else args.shard_size
    cache = StudyCache(args.cache) if args.cache else None
    try:
        spec = _build_study_spec(args)
        t0 = time.perf_counter()
        results = run_study(
            spec,
            workers=args.workers,
            shard_size=shard_size,
            vectorize=not args.scalar,
            cache=cache,
        )
    except (_StudyArgError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - t0

    if not args.no_summary:
        print(study_summary(results))
        print()
    print(f"evaluated {results.num_points} points "
          f"(workers={args.workers}, shard_size={shard_size}, "
          f"{'scalar' if args.scalar else 'vectorized'})")
    if cache is not None:
        print(f"cache: served {cache.hits}/{cache.requests} shards from cache")
    print(f"elapsed: {wall:.3f} s")
    if args.out:
        path = results.save(args.out)
        print(f"wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace, distributed: bool = False) -> int:
    from .backends import available_backends
    from .service import StudyServer
    from .studies.executor import DEFAULT_SHARD_SIZE

    server = StudyServer(
        host=args.host,
        port=args.port,
        cache=args.cache,
        queue_size=args.queue_size,
        job_workers=args.job_workers,
        executor_workers=args.executor_workers,
        shard_size=DEFAULT_SHARD_SIZE if args.shard_size is None else args.shard_size,
        journal=args.journal,
        log=None if args.quiet else lambda line: print(line, file=sys.stderr, flush=True),
        distributed=distributed,
        scheduler=getattr(args, "scheduler", None) or "static",
        lease_ttl_s=getattr(args, "lease_ttl", 30.0),
    )
    # Flushed eagerly so wrappers (the CI smoke) can scrape the bound port
    # even when stdout is a pipe.
    role = "shard coordinator" if distributed else "study service"
    print(f"{role} listening on {server.url}", flush=True)
    print(f"  backends: {', '.join(available_backends())}", flush=True)
    print(f"  cache: {args.cache if args.cache else 'none (in-process job dedup only)'}",
          flush=True)
    print(f"  queue: {args.queue_size} jobs, {args.job_workers} workers", flush=True)
    if distributed:
        print(f"  dispatch: {server.coordinator.default_scheduler.name} scheduling, "
              f"{server.coordinator.lease_ttl_s:g}s lease TTL", flush=True)
    if args.journal:
        print(f"  journal: {args.journal} "
              f"({server.manager.recovered_jobs} job(s) recovered)", flush=True)
    server.run_forever()
    return 0


def _cmd_coordinate(args: argparse.Namespace) -> int:
    return _cmd_serve(args, distributed=True)


def _cmd_worker(args: argparse.Namespace) -> int:
    from .distributed.worker import HttpCoordinatorTransport, ShardWorker
    from .exceptions import DistributedError

    worker = ShardWorker(
        HttpCoordinatorTransport(args.coordinator),
        worker_id=args.id,
        poll_s=args.poll,
        max_idle_s=args.max_idle,
        exit_on_death=True,  # injected deaths look like SIGKILL, as intended
    )
    print(f"worker {worker.worker_id} pulling from {args.coordinator}", flush=True)
    try:
        stats = worker.run(max_shards=args.max_shards)
    except KeyboardInterrupt:
        stats = worker.stats
    except DistributedError as exc:
        # The coordinator going away is this process's natural end of life,
        # not a crash: report and exit cleanly.
        print(f"coordinator gone: {exc}", file=sys.stderr, flush=True)
        stats = worker.stats
    print(f"worker {worker.worker_id} done: "
          f"{stats.shards_completed} shard(s) over {stats.pulls} pull(s), "
          f"{stats.eval_failures} eval failure(s), "
          f"{stats.pull_faults + stats.push_faults} transport fault(s)", flush=True)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceError, StudyServiceClient

    client = StudyServiceClient(args.url, retries=args.retries)
    try:
        spec = _build_study_spec(args)
    except _StudyArgError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        submitted = client.submit(spec)
        job_id = submitted["job_id"]
        print(f"submitted {spec.name!r} to {args.url}: job {job_id}")
        if submitted["deduplicated"]:
            print("job: deduplicated (grid already known to the service)")
        print(f"grid: {submitted['num_points']} points, "
              f"{submitted['progress']['shards_total']} shard(s)")
        snapshot = client.wait(job_id, timeout=args.timeout, poll_interval=args.poll)
        progress = snapshot["progress"]
        print(f"state: {snapshot['state']} ({progress['shards_done']}/"
              f"{progress['shards_total']} shards, "
              f"{progress['shards_from_cache']} from cache)")
        if snapshot["state"] == "failed":
            error = snapshot.get("error") or {}
            print(f"error: [{error.get('code')}] {error.get('message')}", file=sys.stderr)
            return 1
        artifact = client.artifact(job_id)
    except ServiceError as exc:
        print(f"error: [{exc.code}] {exc.message}", file=sys.stderr)
        return 2
    print(f"artifact: {len(artifact.body)} bytes, "
          f"served-from-cache={'true' if artifact.served_from_cache else 'false'}")
    if args.out:
        from pathlib import Path

        Path(args.out).write_bytes(artifact.body)
        print(f"wrote {args.out}")
    return 0


_COMMANDS = {
    "predict": _cmd_predict,
    "solve": _cmd_solve,
    "embed": _cmd_embed,
    "fig9": _cmd_fig9,
    "study": _cmd_study,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "coordinate": _cmd_coordinate,
    "worker": _cmd_worker,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
