"""The shard worker: pull a lease, evaluate, push verified bytes.

A :class:`ShardWorker` is the distributed counterpart of one ProcessPool
worker: it runs the *same* top-level ``_run_shard`` the pool path runs,
so the bytes it pushes are the bytes a local run would have written.
Everything study-specific arrives in the lease descriptor (spec payload,
shard range, shard_size, vectorize flag, coordinator-owned attempt
number); the worker holds no state between pulls beyond its identity.

Transport is pluggable: hand it a :class:`ShardCoordinator` directly
(in-process topology tests) or an :class:`HttpCoordinatorTransport`
(the ``cli worker`` process path).  Both expose the same three verbs —
``lease`` / ``push`` / ``fail`` — and both can fail, which is where the
``worker-pull`` / ``worker-push`` fault sites and the executor's
:class:`~repro.studies.executor.RetryPolicy` backoff come in: transport
faults are retried with seeded-jitter exponential backoff, evaluation
errors are reported via ``fail`` (immediate requeue), and an injected
``worker-death`` abandons the loop outright — silently, so the
coordinator's lease deadline (not worker goodwill) is what recovers the
shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import urllib.error
import urllib.request
from collections.abc import Callable
from dataclasses import dataclass

from .._json import canonical_line
from .._rng import spawn_stream
from ..exceptions import DistributedError, PushRejected, ValidationError
from ..faults import (
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
    SITE_WORKER_PULL,
    SITE_WORKER_PUSH,
    FaultInjected,
    FaultPlan,
)
from ..studies.executor import _WORKER_DEATH_EXIT, RetryPolicy, _run_shard

__all__ = ["ShardWorker", "WorkerStats", "HttpCoordinatorTransport"]

#: Spawn-key domain for worker transport-backoff jitter — distinct from
#: the executor's MC (one component) and backoff (``_BACKOFF_DOMAIN``)
#: stream families, so worker retries can never perturb either.
_TRANSPORT_DOMAIN = 0x90BB


@dataclass
class WorkerStats:
    """One worker loop's lifetime accounting."""

    pulls: int = 0              # lease requests that reached the coordinator
    empty_pulls: int = 0        # pulls answered "no work"
    shards_completed: int = 0   # accepted pushes (duplicates included)
    duplicate_pushes: int = 0   # accepted pushes that were already landed
    pull_faults: int = 0        # injected/real pull transport failures absorbed
    push_faults: int = 0        # injected/real push transport failures absorbed
    eval_failures: int = 0      # evaluation errors reported via fail()
    died: bool = False          # the loop ended via an injected worker death

    def as_dict(self) -> dict:
        return {
            "pulls": self.pulls,
            "empty_pulls": self.empty_pulls,
            "shards_completed": self.shards_completed,
            "duplicate_pushes": self.duplicate_pushes,
            "pull_faults": self.pull_faults,
            "push_faults": self.push_faults,
            "eval_failures": self.eval_failures,
            "died": self.died,
        }


class HttpCoordinatorTransport:
    """The lease/push/fail verbs over the study service's HTTP protocol.

    Raises :class:`DistributedError` for transport-level failures (the
    worker's retry loop absorbs those), :class:`PushRejected` for a 409
    ``shard-rejected`` verification failure, and :class:`ValidationError`
    for protocol misuse (unknown study, not a coordinator).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- verbs ---------------------------------------------------------- #
    def lease(self, worker_id: str) -> dict | None:
        body = self._post_json(
            "/distributed/lease", canonical_line({"worker_id": worker_id}).encode()
        )
        return body.get("lease")

    def push(
        self,
        study_id: str,
        shard_index: int,
        data: bytes,
        digest: str,
        worker_id: str = "",
        lease_id: str | None = None,
    ) -> dict:
        from ..service.protocol import (
            HEADER_LEASE_ID,
            HEADER_SHARD_DIGEST,
            HEADER_SHARD_INDEX,
            HEADER_SHARD_STUDY,
            HEADER_WORKER_ID,
        )

        headers = {
            "Content-Type": "application/octet-stream",
            HEADER_SHARD_STUDY: study_id,
            HEADER_SHARD_INDEX: str(shard_index),
            HEADER_SHARD_DIGEST: digest,
            HEADER_WORKER_ID: worker_id,
        }
        if lease_id is not None:
            headers[HEADER_LEASE_ID] = lease_id
        return self._post_json("/distributed/push", data, headers)

    def fail(self, lease_id: str, message: str = "worker reported failure") -> None:
        self._post_json(
            "/distributed/fail",
            canonical_line({"lease_id": lease_id, "message": message}).encode(),
        )

    # -- plumbing ------------------------------------------------------- #
    def _post_json(
        self, path: str, data: bytes, headers: dict[str, str] | None = None
    ) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            payload = self._error_payload(exc)
            code = payload.get("code", "")
            if code == "shard-rejected":
                raise PushRejected(
                    payload.get("reason", "rejected"), payload.get("message", str(exc))
                ) from exc
            if exc.code in (404, 409, 400):
                raise ValidationError(
                    f"coordinator rejected {path}: "
                    f"[{code or exc.code}] {payload.get('message', exc.reason)}"
                ) from exc
            raise DistributedError(
                f"coordinator error on {path}: HTTP {exc.code} {exc.reason}"
            ) from exc
        except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as exc:
            raise DistributedError(
                f"coordinator unreachable on {path}: {exc}"
            ) from exc

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict:
        try:
            return json.loads(exc.read() or b"{}").get("error", {})
        except (json.JSONDecodeError, OSError):  # pragma: no cover - defensive
            return {}


class ShardWorker:
    """The pull/evaluate/push loop over one coordinator transport.

    Parameters
    ----------
    transport:
        A :class:`~repro.distributed.coordinator.ShardCoordinator` or an
        :class:`HttpCoordinatorTransport` — anything with the three verbs.
    worker_id:
        Identity reported to the coordinator (attribution + slot
        assignment).  Defaults to ``worker-<pid>``.
    faults:
        Optional :class:`FaultPlan`; defaults to the ``REPRO_FAULTS``
        environment hook, which is how a stock ``cli worker`` process is
        chaos-tested.  Sites honored here: ``worker-pull`` /
        ``worker-push`` (transport, retried), ``shard-eval`` (reported
        via ``fail``), ``worker-death`` (abandon — or ``os._exit`` in
        process mode, the real SIGKILL-shaped death).
    retry:
        Backoff budget for consecutive transport failures of one verb.
    poll_s:
        Sleep between empty pulls.
    max_idle_s:
        Exit the loop after this long without work (``None`` = spin
        until stopped or the coordinator goes away).
    exit_on_death:
        When true (the CLI process mode), an injected worker death calls
        ``os._exit`` — indistinguishable from SIGKILL to the coordinator.
        In-process tests leave it false: the loop just returns.
    """

    def __init__(
        self,
        transport,
        worker_id: str | None = None,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        poll_s: float = 0.05,
        max_idle_s: float | None = None,
        exit_on_death: bool = False,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if poll_s < 0:
            raise ValidationError(f"poll_s must be >= 0, got {poll_s}")
        self.transport = transport
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.faults = FaultPlan.from_env() if faults is None else faults
        self.retry = RetryPolicy() if retry is None else retry
        self.poll_s = poll_s
        self.max_idle_s = max_idle_s
        self.exit_on_death = exit_on_death
        self.stats = WorkerStats()
        self._clock = clock
        self._sleep = sleep
        self._pull_seq = 0
        # Jitter stream for transport backoff: keyed on nothing study-
        # specific (delays shape timing, never bytes).
        self._rng = spawn_stream(0, _TRANSPORT_DOMAIN)

    # ------------------------------------------------------------------ #
    def run(self, max_shards: int | None = None, stop=None) -> WorkerStats:
        """Pull and evaluate shards until idle/stop/death; returns stats.

        ``stop`` is an optional ``threading.Event``-like object checked
        between shards.  Raises :class:`DistributedError` only when the
        transport stays down through the whole retry budget.
        """
        completed = 0
        last_work = self._clock()
        while True:
            if stop is not None and stop.is_set():
                return self.stats
            if max_shards is not None and completed >= max_shards:
                return self.stats
            lease = self._pull()
            if lease is None:
                self.stats.empty_pulls += 1
                if (
                    self.max_idle_s is not None
                    and self._clock() - last_work > self.max_idle_s
                ):
                    return self.stats
                if self.poll_s > 0:
                    self._sleep(self.poll_s)
                continue
            last_work = self._clock()
            if not self._execute(lease):
                return self.stats  # injected death: abandon the lease silently
            completed += 1

    # ------------------------------------------------------------------ #
    def _pull(self) -> dict | None:
        """One lease request under the worker-pull fault site + retries."""
        self._pull_seq += 1
        for attempt in range(self.retry.max_attempts):
            try:
                if (
                    self.faults is not None
                    and self.faults.fires_counted(SITE_WORKER_PULL) is not None
                ):
                    raise FaultInjected(
                        f"injected worker-pull failure (pull {self._pull_seq})"
                    )
                body = self.transport.lease(self.worker_id)
            except (FaultInjected, DistributedError) as exc:
                self.stats.pull_faults += 1
                if attempt + 1 >= self.retry.max_attempts:
                    raise DistributedError(
                        f"lease pull failed after {attempt + 1} attempts: {exc}"
                    ) from exc
                self._backoff(attempt)
            else:
                self.stats.pulls += 1
                return body
        raise AssertionError("unreachable")  # pragma: no cover

    def _execute(self, lease: dict) -> bool:
        """Evaluate one lease and push it; False = die (abandon lease)."""
        k = int(lease["shard_index"])
        attempt = int(lease.get("attempt", 0))
        if self.faults is not None:
            if self.faults.fires(SITE_WORKER_DEATH, key=k, attempt=attempt) is not None:
                self.stats.died = True
                if self.exit_on_death:
                    os._exit(_WORKER_DEATH_EXIT)
                return False
            if self.faults.fires(SITE_SHARD_EVAL, key=k, attempt=attempt) is not None:
                self.stats.eval_failures += 1
                self._fail(lease, f"injected shard-eval failure (attempt {attempt})")
                return True
        try:
            shard = _run_shard(
                lease["spec"],
                k,
                int(lease["start"]),
                int(lease["stop"]),
                int(lease["shard_size"]),
                bool(lease.get("vectorize", True)),
            )
        except Exception as exc:  # noqa: BLE001 - report, don't crash the loop
            self.stats.eval_failures += 1
            self._fail(lease, f"evaluation raised: {exc!r}")
            return True
        data = shard.tobytes()
        digest = hashlib.sha256(data).hexdigest()
        self._push(lease, data, digest)
        return True

    def _push(self, lease: dict, data: bytes, digest: str) -> None:
        """One shard push under the worker-push fault site + retries."""
        k = int(lease["shard_index"])
        for attempt in range(self.retry.max_attempts):
            try:
                if (
                    self.faults is not None
                    and self.faults.fires_counted(SITE_WORKER_PUSH, key=k) is not None
                ):
                    raise FaultInjected(f"injected worker-push failure (shard {k})")
                body = self.transport.push(
                    lease["study_id"],
                    k,
                    data,
                    digest,
                    worker_id=self.worker_id,
                    lease_id=lease.get("lease_id"),
                )
            except (FaultInjected, DistributedError) as exc:
                self.stats.push_faults += 1
                if attempt + 1 >= self.retry.max_attempts:
                    raise DistributedError(
                        f"shard {k} push failed after {attempt + 1} attempts: {exc}"
                    ) from exc
                self._backoff(attempt)
            except PushRejected:
                # Verification failed coordinator-side; the shard is
                # requeued there — nothing useful to retry with the same
                # bytes, so surface it (tests inject this deliberately).
                raise
            else:
                self.stats.shards_completed += 1
                if body.get("duplicate"):
                    self.stats.duplicate_pushes += 1
                return

    def _fail(self, lease: dict, message: str) -> None:
        lease_id = lease.get("lease_id")
        if lease_id is None:
            return
        try:
            self.transport.fail(lease_id, message)
        except DistributedError:
            pass  # the lease deadline recovers the shard without us

    def _backoff(self, attempt: int) -> None:
        delay = self.retry.delay(self._rng, attempt)
        if delay > 0:
            self._sleep(delay)
