"""Pluggable shard-scheduling strategies and their deterministic model.

Two consumers share the same :class:`Scheduler` objects:

* the live :class:`~repro.distributed.coordinator.ShardCoordinator`,
  which asks the strategy which pending shard to lease to the worker
  slot that just went idle;
* the study executor, which fills the ``sched_latency_s`` /
  ``sched_steals`` result columns by *simulating* the strategy over the
  study's real shard grid (:func:`shard_schedule`).

The simulation — not wall-clock measurement — is what keeps the
topology-independence invariant intact: the columns are a pure function
of (spec, shard_size, strategy), computable shard-locally, so artifacts
stay byte-identical whether the study ran inline, on a ProcessPool, or
across N remote workers.  It is classic list scheduling over a nominal
:data:`SIM_WORKERS`-slot fleet with per-shard costs from
:func:`shard_costs` (point counts weighted by fixed per-backend cost
constants), in the spirit of the splitting-strategy comparisons for
or-parallel Prolog (PAPERS.md): the *relative* behavior of static
partitioning vs self-scheduling vs LPT is what a study compares, not
absolute seconds.

Strategies
----------
``static``
    Contiguous block ownership: shard ``k`` belongs to slot
    ``k * num_slots // num_shards``.  An idle slot takes its own lowest
    pending shard first and only crosses ownership (a *steal*) when its
    block is drained — the fault-tolerance escape hatch that lets a
    surviving worker finish a dead worker's block.
``work-stealing``
    Pure self-scheduling: every idle slot takes the globally lowest
    pending shard.  Any shard landing off its static home slot counts
    as a steal, so the steal column measures how far dispatch drifted
    from the static partition.
``size-aware``
    Longest-processing-time-first: idle slots take the largest-cost
    pending shard (ties to the lowest index).  Distinguishable from the
    others only when shard costs vary — e.g. a swept ``backend`` axis
    mixing closed-form and DES shards.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..studies.spec import ScenarioSpec

__all__ = [
    "DEFAULT_SCHEDULER",
    "SCHEDULER_NAMES",
    "SIM_WORKERS",
    "ScheduleTrace",
    "Scheduler",
    "available_schedulers",
    "get_scheduler",
    "preferred_slot",
    "shard_costs",
    "shard_schedule",
    "simulate_schedule",
]

#: Nominal worker fleet the result columns are simulated against.  Fixed
#: by contract — it is part of the artifact's meaning (like a model
#: constant), never the live worker count, which would break byte
#: identity across topologies.
SIM_WORKERS = 4

#: Modeled seconds per grid point at unit backend weight.  Only the
#: *ratios* between strategies matter to a study; the absolute scale
#: just keeps the column in recognizable units.
NOMINAL_POINT_SECONDS = 1e-6

#: Relative per-point evaluation cost by backend, from the measured
#: sweep-throughput gap between the vectorized closed form, the ASPEN
#: tree-walker, and the DES event loop (BENCH_PERF.json).  Unknown
#: backends cost 1.0.  Values are part of the artifact contract: change
#: them and every cached shard correctly invalidates via the results
#: schema version.
NOMINAL_BACKEND_COST = {
    "closed_form": 1.0,
    "aspen": 4.0,
    "des": 16.0,
}

MAX_SCHEDULER_NAME_LENGTH = 16


def preferred_slot(shard_index: int, num_shards: int, num_slots: int) -> int:
    """The slot that statically owns ``shard_index``: balanced contiguous blocks."""
    if num_shards <= 0:
        raise ValidationError(f"num_shards must be positive, got {num_shards}")
    if num_slots <= 0:
        raise ValidationError(f"num_slots must be positive, got {num_slots}")
    if not 0 <= shard_index < num_shards:
        raise ValidationError(
            f"shard index {shard_index} out of range for {num_shards} shards"
        )
    return shard_index * num_slots // num_shards


@runtime_checkable
class Scheduler(Protocol):
    """The strategy contract: pick the next shard for an idle slot.

    ``select`` must be a pure function of its arguments — the coordinator
    and the simulation both call it, and byte-stable artifacts depend on
    the two agreeing.  ``pending`` is always a non-empty ascending
    sequence of shard indices; ``costs`` has one modeled cost per shard
    of the whole grid (not just pending ones).
    """

    name: str

    def select(
        self,
        pending: Sequence[int],
        slot: int,
        num_slots: int,
        costs: Sequence[float],
    ) -> int:
        """Return the shard index (an element of ``pending``) to run next."""
        ...


class StaticScheduler:
    """Own contiguous block first; cross ownership only when drained."""

    name = "static"

    def select(self, pending, slot, num_slots, costs):
        num_shards = len(costs)
        for k in pending:
            if preferred_slot(k, num_shards, num_slots) == slot:
                return k
        return pending[0]


class WorkStealingScheduler:
    """Self-scheduling: globally lowest pending shard, regardless of owner."""

    name = "work-stealing"

    def select(self, pending, slot, num_slots, costs):
        return pending[0]


class SizeAwareScheduler:
    """LPT: largest modeled cost first, ties to the lowest shard index."""

    name = "size-aware"

    def select(self, pending, slot, num_slots, costs):
        return max(pending, key=lambda k: (costs[k], -k))


_SCHEDULERS: dict[str, Scheduler] = {
    s.name: s for s in (StaticScheduler(), WorkStealingScheduler(), SizeAwareScheduler())
}

SCHEDULER_NAMES = tuple(_SCHEDULERS)
DEFAULT_SCHEDULER = "static"


def available_schedulers() -> tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return SCHEDULER_NAMES


def get_scheduler(name: str) -> Scheduler:
    """Look up a strategy by name (the spec-axis values)."""
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise ValidationError(
            f"unknown scheduler {name!r}; available: {SCHEDULER_NAMES}"
        ) from None


@dataclass(frozen=True)
class ScheduleTrace:
    """One simulated dispatch of a shard grid under one strategy.

    Index ``k`` of each tuple describes shard ``k``: its modeled
    completion time, the slot that ran it, and whether taking it crossed
    the static ownership partition (a steal).
    """

    finish_s: tuple[float, ...]
    slot: tuple[int, ...]
    stolen: tuple[bool, ...]

    @property
    def makespan_s(self) -> float:
        return max(self.finish_s) if self.finish_s else 0.0

    @property
    def total_steals(self) -> int:
        return sum(self.stolen)


def shard_costs(spec: "ScenarioSpec", shard_size: int) -> list[float]:
    """Modeled evaluation cost (seconds) of every shard of ``spec``'s grid.

    Cost = points in the shard weighted by :data:`NOMINAL_BACKEND_COST`.
    ``backend`` is the outermost axis, so each backend owns one
    contiguous block of ``num_points / num_backends`` points and a
    shard's cost is a few interval intersections — O(shards x backends)
    regardless of grid size.
    """
    if shard_size <= 0:
        raise ValidationError(f"shard_size must be positive, got {shard_size}")
    num_points = spec.num_points
    backends = spec.backend_values
    block = num_points // len(backends)
    costs: list[float] = []
    for start in range(0, num_points, shard_size):
        stop = min(start + shard_size, num_points)
        cost = 0.0
        for b, backend in enumerate(backends):
            overlap = min(stop, (b + 1) * block) - max(start, b * block)
            if overlap > 0:
                cost += overlap * NOMINAL_BACKEND_COST.get(backend, 1.0)
        costs.append(cost * NOMINAL_POINT_SECONDS)
    return costs


def simulate_schedule(
    costs: Sequence[float],
    num_workers: int,
    scheduler: Scheduler | str,
) -> ScheduleTrace:
    """Deterministic list-scheduling of ``costs`` over ``num_workers`` slots.

    Slots start at time 0; the earliest-idle slot (ties to the lowest
    slot) repeatedly asks the strategy for its next shard.  Pure float
    arithmetic over a fixed event order — bit-identical everywhere.
    """
    if isinstance(scheduler, str):
        scheduler = get_scheduler(scheduler)
    if num_workers <= 0:
        raise ValidationError(f"num_workers must be positive, got {num_workers}")
    num_shards = len(costs)
    finish = [0.0] * num_shards
    slot_of = [0] * num_shards
    stolen = [False] * num_shards
    clocks = [0.0] * num_workers
    pending = list(range(num_shards))
    while pending:
        slot = min(range(num_workers), key=lambda s: (clocks[s], s))
        k = scheduler.select(pending, slot, num_workers, costs)
        pending.remove(k)
        clocks[slot] += costs[k]
        finish[k] = clocks[slot]
        slot_of[k] = slot
        stolen[k] = preferred_slot(k, num_shards, num_workers) != slot
    return ScheduleTrace(
        finish_s=tuple(finish), slot=tuple(slot_of), stolen=tuple(stolen)
    )


#: Memo for :func:`shard_schedule` — a study re-simulates once per
#: (grid, shard_size, strategy) per process instead of once per shard.
_TRACE_CACHE: dict[tuple[str, int, str], ScheduleTrace] = {}
_TRACE_CACHE_MAX = 64
_TRACE_LOCK = threading.Lock()


def shard_schedule(
    spec: "ScenarioSpec", shard_size: int, scheduler_name: str
) -> ScheduleTrace:
    """The memoized trace the result columns are read from.

    Keyed on the spec's *cache identity* (grid + MC parameters, name
    excluded) so a relabelled study reuses the trace exactly as it
    reuses cached shards.
    """
    from .._json import canonical_line

    identity = canonical_line(spec.cache_identity())
    key = (identity, int(shard_size), scheduler_name)
    with _TRACE_LOCK:
        trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace
    trace = simulate_schedule(
        shard_costs(spec, shard_size), SIM_WORKERS, scheduler_name
    )
    with _TRACE_LOCK:
        if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace
