"""The shard coordinator: lease bookkeeping for distributed studies.

A :class:`ShardCoordinator` owns the authoritative state of every
registered study: which shards are pending, which are leased out (and
until when), which have landed.  Workers interact through three verbs —

``lease(worker_id)``
    Hand the calling worker one shard descriptor, chosen by the study's
    :class:`~repro.distributed.scheduler.Scheduler` strategy.  The lease
    carries a deadline: a worker that never comes back (crash, SIGKILL,
    network partition) simply lets the deadline pass and the shard is
    *requeued* with its attempt number bumped — the coordinator-owned
    analogue of the executor's parent-owned retry attempts, so fault
    schedules converge across worker respawns.
``push(study_id, shard_index, data, digest, ...)``
    Deliver computed shard bytes.  The payload is verified before
    acceptance — recomputed sha256 against the worker's digest, byte
    length against the shard's row count — and a failed check requeues
    the shard (:class:`~repro.exceptions.PushRejected`).  Pushing an
    already-landed shard is an idempotent accept: late duplicates from a
    slow worker whose lease expired are harmless by design, because both
    copies are byte-identical by the executor's determinism contract.
``fail(lease_id, message)``
    A cooperative worker reporting an evaluation error; the shard
    requeues immediately instead of waiting out the deadline.

Accepted shards land in the study table *and* the shared
:class:`~repro.studies.cache.StudyCache` — the cache stays the single
store, so a distributed run leaves behind exactly the entries a local
``run_study`` would, and artifacts are byte-identical regardless of
topology.  :meth:`drain_inline` completes unclaimed shards in-process,
which is both the 0-worker execution path and the liveness fallback when
every worker is gone.

The coordinator never computes shards itself (outside ``drain_inline``)
and holds no wall-clock state in results: all timing lives in leases and
stats, outside the artifact.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import PushRejected, ShardError, ValidationError
from ..faults import FaultPlan, FaultStats
from ..studies.cache import StudyCache, study_key
from ..studies.executor import (
    DEFAULT_SHARD_SIZE,
    _attempt_shard,
    _load_shard_tolerant,
    _store_shard_tolerant,
    shard_ranges,
    RetryPolicy,
)
from ..studies.results import StudyResults, empty_table, table_dtype
from ..studies.spec import ScenarioSpec
from .._rng import spawn_stream
from ..studies.executor import _BACKOFF_DOMAIN
from .scheduler import (
    DEFAULT_SCHEDULER,
    Scheduler,
    get_scheduler,
    preferred_slot,
    shard_costs,
)

__all__ = ["ShardCoordinator", "CoordinatorStats", "DistProgress"]

#: Per-shard progress feed of a coordinated study:
#: ``progress(shard_index, from_cache, done, total, worker_id)`` —
#: the executor's ProgressCallback plus the worker attribution
#: (``None`` for cache-served and inline-drained shards).
DistProgress = Callable[[int, bool, int, int, "str | None"], None]


@dataclass
class CoordinatorStats:
    """Dispatch telemetry — deliberately *outside* the artifact bytes."""

    leases_granted: int = 0
    steals: int = 0               # leases dispatched off their static home slot
    requeues: int = 0             # shards put back in the queue (any path)
    worker_failures: int = 0      # cooperative fail() reports
    duplicate_pushes: int = 0     # idempotent re-accepts of landed shards
    rejected_pushes: int = 0      # hash/size verification failures
    inline_shards: int = 0        # shards completed by drain_inline
    cache_served_shards: int = 0  # shards served by the registration pre-pass

    def as_dict(self) -> dict:
        return {
            "leases_granted": self.leases_granted,
            "steals": self.steals,
            "requeues": self.requeues,
            "worker_failures": self.worker_failures,
            "duplicate_pushes": self.duplicate_pushes,
            "rejected_pushes": self.rejected_pushes,
            "inline_shards": self.inline_shards,
            "cache_served_shards": self.cache_served_shards,
        }


@dataclass
class _Lease:
    lease_id: str
    study_id: str
    shard_index: int
    worker_id: str
    attempt: int
    deadline: float  # coordinator-clock absolute time


@dataclass
class _Study:
    spec: ScenarioSpec
    payload: dict
    shard_size: int
    vectorize: bool
    scheduler: Scheduler
    ranges: list
    costs: list
    table: np.ndarray
    pending: list          # ascending shard indices awaiting dispatch
    progress: "DistProgress | None"
    leased: dict = field(default_factory=dict)    # shard_index -> lease_id
    done: set = field(default_factory=set)
    attempts: dict = field(default_factory=dict)  # shard_index -> int
    errors: dict = field(default_factory=dict)    # shard_index -> [str]
    worker_shards: dict = field(default_factory=dict)  # worker_id -> count
    event: threading.Event = field(default_factory=threading.Event)
    error: "ShardError | None" = None

    @property
    def total(self) -> int:
        return len(self.ranges)

    @property
    def complete(self) -> bool:
        return len(self.done) == self.total


class ShardCoordinator:
    """Thread-safe lease table over any number of registered studies.

    Parameters
    ----------
    cache:
        Optional shared :class:`StudyCache`.  Registration pre-serves
        cached shards; accepted pushes are stored, so the cache remains
        the single store across topologies.
    scheduler:
        Default dispatch strategy (name or :class:`Scheduler`).  A study
        whose spec pins the ``scheduler`` axis to one non-default value
        is dispatched with *that* strategy instead — the axis means what
        it says when the study actually runs distributed.
    lease_ttl_s:
        Lease lifetime.  An unexpired lease blocks re-dispatch of its
        shard; expiry requeues it with the attempt number bumped.
    max_requeues:
        Per-shard budget of requeues/failures before the study is
        declared failed (mirrors ``RetryPolicy.max_attempts`` in spirit:
        faults must converge, not spin forever).
    clock:
        Injectable monotonic clock — tests drive lease expiry
        deterministically instead of sleeping.
    """

    def __init__(
        self,
        cache: StudyCache | None = None,
        scheduler: Scheduler | str = DEFAULT_SCHEDULER,
        lease_ttl_s: float = 30.0,
        vectorize: bool = True,
        max_requeues: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl_s <= 0:
            raise ValidationError(f"lease_ttl_s must be positive, got {lease_ttl_s}")
        if max_requeues < 1:
            raise ValidationError(f"max_requeues must be >= 1, got {max_requeues}")
        self.cache = cache
        self.default_scheduler = (
            get_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.lease_ttl_s = float(lease_ttl_s)
        self.vectorize = bool(vectorize)
        self.max_requeues = int(max_requeues)
        self.stats = CoordinatorStats()
        self._clock = clock
        self._lock = threading.RLock()
        self._studies: dict[str, _Study] = {}
        self._order: list[str] = []            # registration order (dispatch FIFO)
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, int] = {}     # worker_id -> slot (arrival order)
        self._lease_seq = 0

    # ------------------------------------------------------------------ #
    # Registration / completion
    # ------------------------------------------------------------------ #
    def register_study(
        self,
        spec: ScenarioSpec,
        shard_size: int = DEFAULT_SHARD_SIZE,
        study_id: str | None = None,
        scheduler: Scheduler | str | None = None,
        progress: DistProgress | None = None,
        vectorize: bool | None = None,
    ) -> str:
        """Enqueue a study's shard grid for dispatch; returns its id.

        The id defaults to the study's content address
        (:func:`~repro.studies.cache.study_key`) — the same identity the
        job server dedups on.  Re-registering an id whose study is still
        in flight is rejected (the caller already dedups identical
        submissions); a *settled* study — complete or failed — is
        replaced, which is how an evicted-then-resubmitted job reruns.
        """
        study_id = study_key(spec, shard_size) if study_id is None else study_id
        ranges = shard_ranges(spec.num_points, shard_size)
        if scheduler is None:
            axis = spec.axis_values("scheduler")
            strategy = get_scheduler(axis[0]) if len(axis) == 1 else self.default_scheduler
        elif isinstance(scheduler, str):
            strategy = get_scheduler(scheduler)
        else:
            strategy = scheduler
        study = _Study(
            spec=spec,
            payload=spec.to_dict(),
            shard_size=int(shard_size),
            vectorize=self.vectorize if vectorize is None else bool(vectorize),
            scheduler=strategy,
            ranges=ranges,
            costs=shard_costs(spec, shard_size),
            table=empty_table(spec.num_points),
            pending=list(range(len(ranges))),
            progress=progress,
        )
        with self._lock:
            existing = self._studies.get(study_id)
            if existing is not None:
                if not (existing.complete or existing.error is not None):
                    raise ValidationError(
                        f"study {study_id!r} is already registered and active"
                    )
                self._order.remove(study_id)
            self._studies[study_id] = study
            self._order.append(study_id)
        # Cache pre-pass outside the lock: landed shards never re-dispatch.
        if self.cache is not None:
            faults_stats = FaultStats()  # pre-pass tolerance only; not reported
            for k, (start, stop) in enumerate(ranges):
                cached = _load_shard_tolerant(
                    self.cache, None, faults_stats, spec, study.shard_size, k
                )
                if cached is None:
                    continue
                with self._lock:
                    if k in study.done:
                        continue
                    study.table[start:stop] = cached
                    study.done.add(k)
                    study.pending.remove(k)
                    self.stats.cache_served_shards += 1
                    done, total = len(study.done), study.total
                if progress is not None:
                    progress(k, True, done, total, None)
            with self._lock:
                if study.complete:
                    study.event.set()
        return study_id

    def wait(self, study_id: str, timeout: float | None = None) -> StudyResults:
        """Block until the study completes; raises its ShardError on failure.

        Polls so lease expiry advances even when no worker traffic is
        arriving (the all-workers-dead case must still converge to a
        requeue, then to a requeue-budget failure or an inline drain).
        """
        study = self._study(study_id)
        deadline = None if timeout is None else self._clock() + timeout
        while True:
            if study.event.wait(timeout=0.05):
                break
            with self._lock:
                self._expire()
            if deadline is not None and self._clock() > deadline:
                raise TimeoutError(
                    f"study {study_id} incomplete after {timeout}s "
                    f"({len(study.done)}/{study.total} shards)"
                )
        if study.error is not None:
            raise study.error
        return self.results(study_id)

    def results(self, study_id: str) -> StudyResults:
        """The completed study's results (ValidationError while incomplete)."""
        study = self._study(study_id)
        with self._lock:
            if study.error is not None:
                raise study.error
            if not study.complete:
                raise ValidationError(
                    f"study {study_id} is incomplete "
                    f"({len(study.done)}/{study.total} shards)"
                )
            return StudyResults(spec=study.spec, table=study.table.copy())

    # ------------------------------------------------------------------ #
    # The worker-facing verbs
    # ------------------------------------------------------------------ #
    def lease(self, worker_id: str) -> dict | None:
        """One shard descriptor for ``worker_id``, or None when idle.

        The descriptor is self-describing — spec payload, shard range,
        shard_size, vectorize flag, coordinator-owned attempt number —
        everything ``_run_shard`` needs, so workers hold no per-study
        state between pulls.
        """
        if not worker_id:
            raise ValidationError("worker_id must be non-empty")
        with self._lock:
            self._expire()
            slot = self._workers.setdefault(worker_id, len(self._workers))
            num_slots = len(self._workers)
            for study_id in self._order:
                study = self._studies[study_id]
                if study.error is not None or not study.pending:
                    continue
                k = study.scheduler.select(
                    study.pending, slot, num_slots, study.costs
                )
                study.pending.remove(k)
                stolen = preferred_slot(k, study.total, num_slots) != slot
                self._lease_seq += 1
                lease = _Lease(
                    lease_id=f"lease-{self._lease_seq:08d}",
                    study_id=study_id,
                    shard_index=k,
                    worker_id=worker_id,
                    attempt=study.attempts.get(k, 0),
                    deadline=self._clock() + self.lease_ttl_s,
                )
                study.leased[k] = lease.lease_id
                self._leases[lease.lease_id] = lease
                self.stats.leases_granted += 1
                if stolen:
                    self.stats.steals += 1
                start, stop = study.ranges[k]
                return {
                    "lease_id": lease.lease_id,
                    "study_id": study_id,
                    "shard_index": k,
                    "start": start,
                    "stop": stop,
                    "shard_size": study.shard_size,
                    "vectorize": study.vectorize,
                    "attempt": lease.attempt,
                    "ttl_s": self.lease_ttl_s,
                    "spec": study.payload,
                }
            return None

    def push(
        self,
        study_id: str,
        shard_index: int,
        data: bytes,
        digest: str,
        worker_id: str = "",
        lease_id: str | None = None,
    ) -> dict:
        """Verify and land one computed shard; idempotent for landed shards."""
        study = self._study(study_id)
        with self._lock:
            if not 0 <= shard_index < study.total:
                raise ValidationError(
                    f"shard index {shard_index} out of range for "
                    f"{study.total} shards"
                )
            if shard_index in study.done:
                self.stats.duplicate_pushes += 1
                self._release(study, shard_index, lease_id)
                return self._accepted(study, duplicate=True)
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                self._reject(study, shard_index, lease_id)
                raise PushRejected(
                    "hash-mismatch",
                    f"shard {shard_index} payload hashes to {actual[:12]}..., "
                    f"push declared {str(digest)[:12]}...; shard requeued",
                )
            start, stop = study.ranges[shard_index]
            expected = (stop - start) * table_dtype().itemsize
            if len(data) != expected:
                self._reject(study, shard_index, lease_id)
                raise PushRejected(
                    "wrong-size",
                    f"shard {shard_index} payload is {len(data)} bytes, "
                    f"expected {expected}; shard requeued",
                )
            shard = np.frombuffer(data, dtype=table_dtype()).copy()
            study.table[start:stop] = shard
            study.done.add(shard_index)
            self._release(study, shard_index, lease_id)
            if worker_id:
                study.worker_shards[worker_id] = (
                    study.worker_shards.get(worker_id, 0) + 1
                )
            done, total = len(study.done), study.total
            progress = study.progress
            if study.complete:
                study.event.set()
        if self.cache is not None:
            _store_shard_tolerant(
                self.cache, None, FaultStats(), study.spec,
                study.shard_size, shard_index, shard,
            )
        if progress is not None:
            progress(shard_index, False, done, total, worker_id or None)
        return self._accepted(study, duplicate=False)

    def fail(self, lease_id: str, message: str = "worker reported failure") -> None:
        """Cooperative failure report: requeue the lease's shard now."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return  # already expired/landed; nothing to do
            self.stats.worker_failures += 1
            self._requeue(lease, f"worker {lease.worker_id}: {message}")

    # ------------------------------------------------------------------ #
    # Inline completion (0 workers / liveness fallback)
    # ------------------------------------------------------------------ #
    def drain_inline(
        self,
        study_id: str,
        faults: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        """Complete every still-pending shard in-process.

        With no workers attached this *is* the execution path (and lands
        byte-identical results, since it runs the same ``_run_shard``).
        With workers attached it races them benignly: landed shards are
        skipped, duplicates are idempotent.
        """
        study = self._study(study_id)
        plan = FaultPlan.from_env() if faults is None else faults
        plan_payload = plan.to_dict() if plan is not None else None
        policy = RetryPolicy() if retry is None else retry
        stats = FaultStats()
        rngs: dict[int, np.random.Generator] = {}
        while True:
            with self._lock:
                self._expire()
                if study.error is not None:
                    raise study.error
                if not study.pending:
                    break
                k = study.pending.pop(0)
            rngs.setdefault(k, spawn_stream(study.spec.seed, _BACKOFF_DOMAIN, k))
            shard = _attempt_shard(
                study.payload, study.ranges, study.shard_size, k,
                study.vectorize, plan_payload, policy, stats,
                {k: study.attempts.get(k, 0)},
                {k: list(study.errors.get(k, []))},
                rngs,
            )
            with self._lock:
                if k in study.done:
                    continue
                start, stop = study.ranges[k]
                study.table[start:stop] = shard
                study.done.add(k)
                self.stats.inline_shards += 1
                done, total = len(study.done), study.total
                progress = study.progress
                if study.complete:
                    study.event.set()
            if self.cache is not None:
                _store_shard_tolerant(
                    self.cache, None, FaultStats(), study.spec,
                    study.shard_size, k, shard,
                )
            if progress is not None:
                progress(k, False, done, total, None)

    def run_study(
        self,
        spec: ScenarioSpec,
        shard_size: int = DEFAULT_SHARD_SIZE,
        timeout: float | None = None,
        **register_kwargs,
    ) -> StudyResults:
        """Register, let attached workers (if any) drain it, and wait.

        With no workers attached this degenerates to an inline run —
        the 0-worker topology of the byte-identity contract.
        """
        study_id = self.register_study(spec, shard_size, **register_kwargs)
        with self._lock:
            has_workers = bool(self._workers)
        if not has_workers:
            self.drain_inline(study_id)
        return self.wait(study_id, timeout=timeout)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The /healthz payload fragment: fleet + lease + requeue state."""
        with self._lock:
            self._expire()
            active = sum(
                1
                for s in self._studies.values()
                if not s.complete and s.error is None
            )
            return {
                "workers": len(self._workers),
                "outstanding_leases": len(self._leases),
                "studies_registered": len(self._studies),
                "studies_active": active,
                "scheduler": self.default_scheduler.name,
                **self.stats.as_dict(),
            }

    def has_study(self, study_id: str) -> bool:
        """Whether ``study_id`` names a registered study (any state)."""
        with self._lock:
            return study_id in self._studies

    def worker_shards(self, study_id: str) -> dict[str, int]:
        """Per-worker shard attribution of one study (telemetry, not bytes)."""
        with self._lock:
            return dict(self._study(study_id).worker_shards)

    def progress_snapshot(self, study_id: str) -> dict:
        study = self._study(study_id)
        with self._lock:
            return {
                "done": len(study.done),
                "total": study.total,
                "pending": len(study.pending),
                "leased": len(study.leased),
                "workers": dict(study.worker_shards),
            }

    # ------------------------------------------------------------------ #
    # Internals (call with the lock held)
    # ------------------------------------------------------------------ #
    def _study(self, study_id: str) -> _Study:
        with self._lock:
            try:
                return self._studies[study_id]
            except KeyError:
                raise ValidationError(f"unknown study {study_id!r}") from None

    def _accepted(self, study: _Study, duplicate: bool) -> dict:
        return {
            "accepted": True,
            "duplicate": duplicate,
            "done": len(study.done),
            "total": study.total,
        }

    def _release(self, study: _Study, shard_index: int, lease_id: str | None) -> None:
        """Drop the lease covering a landed/duplicate shard, if any."""
        held = study.leased.pop(shard_index, None)
        if held is not None:
            self._leases.pop(held, None)
        elif lease_id is not None:
            self._leases.pop(lease_id, None)

    def _reject(self, study: _Study, shard_index: int, lease_id: str | None) -> None:
        """Account a failed verification and requeue the shard."""
        self.stats.rejected_pushes += 1
        held = study.leased.pop(shard_index, None)
        lease = self._leases.pop(held or lease_id or "", None)
        if lease is not None:
            self._requeue(lease, "push rejected by verification")
        elif shard_index not in study.pending and shard_index not in study.done:
            # No live lease to charge (it already expired, or the push never
            # held one) but the shard is off the queue: re-enqueue through
            # the same attempt accounting, so corrupt pushes consume the
            # requeue budget instead of retrying forever.
            self._requeue_shard(
                study,
                shard_index,
                study.attempts.get(shard_index, 0),
                "push rejected by verification (no live lease)",
            )

    def _requeue(self, lease: _Lease, reason: str) -> None:
        """Put an abandoned/failed lease's shard back in its study's queue."""
        study = self._studies[lease.study_id]
        study.leased.pop(lease.shard_index, None)
        if lease.shard_index in study.done:
            return
        self._requeue_shard(study, lease.shard_index, lease.attempt, reason)

    def _requeue_shard(
        self, study: _Study, shard_index: int, attempt: int, reason: str
    ) -> None:
        """Shared requeue accounting: every path that puts a shard back in
        the queue — lease expiry, cooperative ``fail()``, push rejection —
        bumps the ``requeues`` gauge and consumes the requeue budget here."""
        self.stats.requeues += 1
        attempts = study.attempts.get(shard_index, 0) + 1
        study.attempts[shard_index] = attempts
        study.errors.setdefault(shard_index, []).append(
            f"attempt {attempt}: {reason}"
        )
        if attempts > self.max_requeues:
            study.error = ShardError(shard_index, study.errors[shard_index])
            study.event.set()
            return
        study.pending.append(shard_index)
        study.pending.sort()

    def _expire(self) -> None:
        """Requeue every lease whose deadline has passed."""
        now = self._clock()
        for lease_id in [
            lid for lid, lease in self._leases.items() if lease.deadline < now
        ]:
            lease = self._leases.pop(lease_id)
            self._requeue(
                lease,
                f"lease {lease.lease_id} expired on worker {lease.worker_id}",
            )
