"""Distributed shard execution: coordinator, workers, scheduling strategies.

The executor's shard grid is fixed by ``shard_size`` alone, every shard
is content-addressed in the :class:`~repro.studies.cache.StudyCache`,
and artifacts are byte-stable — so a shard is already a self-describing
unit of *remote* work.  This package adds the execution tier that farms
those shards out:

* :class:`~repro.distributed.coordinator.ShardCoordinator` — owns the
  pending/leased/done state of registered studies, hands out shard
  leases with deadlines (requeue-on-expiry: a killed worker never loses
  a shard), and verifies pushed payloads against the shard's content
  hash before acceptance.  Embedded in ``StudyServer`` (``cli
  coordinate``) it speaks the existing HTTP protocol.
* :class:`~repro.distributed.worker.ShardWorker` — the pull loop (``cli
  worker --coordinator URL``): lease, evaluate via the same
  ``_run_shard`` the ProcessPool path uses, push bytes + digest, honoring
  the ``worker-pull`` / ``worker-push`` / ``worker-death`` fault sites.
* :mod:`~repro.distributed.scheduler` — the pluggable strategy protocol
  (``static`` / ``work-stealing`` / ``size-aware``), driving both live
  dispatch and the deterministic simulation behind the spec's
  ``scheduler`` axis.

The invariant everything here preserves: the artifact is a pure function
of (spec, shard grid).  0 workers, 1 worker, N workers, a worker
SIGKILLed mid-study — same bytes.

``scheduler`` is imported eagerly (the spec's axis validation needs it);
the coordinator and worker load lazily so ``repro.studies`` can import
this package without a cycle.
"""

from .scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_NAMES,
    SIM_WORKERS,
    ScheduleTrace,
    Scheduler,
    available_schedulers,
    get_scheduler,
    shard_costs,
    shard_schedule,
    simulate_schedule,
)

__all__ = [
    "DEFAULT_SCHEDULER",
    "SCHEDULER_NAMES",
    "SIM_WORKERS",
    "ScheduleTrace",
    "Scheduler",
    "ShardCoordinator",
    "ShardWorker",
    "available_schedulers",
    "get_scheduler",
    "shard_costs",
    "shard_schedule",
    "simulate_schedule",
]

_LAZY = {
    "ShardCoordinator": "coordinator",
    "CoordinatorStats": "coordinator",
    "StudyHandle": "coordinator",
    "ShardWorker": "worker",
    "WorkerStats": "worker",
    "HttpCoordinatorTransport": "worker",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
