"""Quantum hardware substrate: Chimera lattices, faults, precision, timing.

Everything the middleware layer needs to know about the physical processor:
the connectivity graph it must embed into (paper Fig. 3), the fabrication
faults that deform it, the parameter ranges/precision the control
electronics can realize, and the measured timing constants of the
programming and sampling pipeline (paper Figs. 5-7).
"""

from .chimera import (
    DW2_VESUVIUS,
    DW2X,
    ChimeraTopology,
    chimera_edge_count,
    chimera_node_count,
)
from .faults import PERFECT_YIELD, FaultModel, random_faults
from .properties import (
    DW2_PROPERTIES,
    DeviceProperties,
    ProgrammingReport,
    program_ising,
    quantize_value,
    rescale_to_ranges,
)
from .timing import DW2_TIMING, DWaveTimingModel

__all__ = [
    "ChimeraTopology",
    "chimera_node_count",
    "chimera_edge_count",
    "DW2_VESUVIUS",
    "DW2X",
    "FaultModel",
    "random_faults",
    "PERFECT_YIELD",
    "DeviceProperties",
    "ProgrammingReport",
    "program_ising",
    "quantize_value",
    "rescale_to_ranges",
    "DW2_PROPERTIES",
    "DWaveTimingModel",
    "DW2_TIMING",
]
