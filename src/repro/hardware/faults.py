"""Hard-fault models for the Chimera lattice.

Random fabrication faults deactivate qubits and couplers; they are identified
during calibration and "must be deactivated to avoid unwanted usage"
(paper Sec. 2.2, citing Klymko-Sullivan-Humble).  Losing a node destroys the
lattice symmetry and makes minor embedding harder — the embedding algorithms
in :mod:`repro.embedding` therefore all operate on the *working graph*
produced by applying a :class:`FaultModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._rng import as_rng
from ..exceptions import HardwareError
from .chimera import ChimeraTopology

__all__ = ["FaultModel", "random_faults", "PERFECT_YIELD"]


@dataclass(frozen=True)
class FaultModel:
    """A set of dead qubits and dead couplers.

    Couplers are stored as ``(p, q)`` linear-index pairs with ``p < q``.
    Couplers incident to a dead qubit need not be listed; removing the qubit
    removes them implicitly.
    """

    dead_qubits: frozenset[int] = field(default_factory=frozenset)
    dead_couplers: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "dead_qubits", frozenset(int(q) for q in self.dead_qubits))
        object.__setattr__(
            self,
            "dead_couplers",
            frozenset(
                (min(int(p), int(q)), max(int(p), int(q))) for p, q in self.dead_couplers
            ),
        )

    @property
    def num_dead_qubits(self) -> int:
        return len(self.dead_qubits)

    @property
    def num_dead_couplers(self) -> int:
        return len(self.dead_couplers)

    def validate(self, topology: ChimeraTopology) -> None:
        """Raise :class:`HardwareError` if a fault references a nonexistent element."""
        nq = topology.num_qubits
        for q in self.dead_qubits:
            if not 0 <= q < nq:
                raise HardwareError(f"dead qubit {q} outside topology with {nq} qubits")
        edge_set = None
        for p, q in self.dead_couplers:
            if not (0 <= p < nq and 0 <= q < nq):
                raise HardwareError(f"dead coupler ({p}, {q}) outside topology")
            if edge_set is None:
                edge_set = set(topology.iter_edges())
            if (p, q) not in edge_set:
                raise HardwareError(f"dead coupler ({p}, {q}) is not a coupler of the topology")

    def union(self, other: "FaultModel") -> "FaultModel":
        """Combine two fault models (union of dead elements)."""
        return FaultModel(
            self.dead_qubits | other.dead_qubits,
            self.dead_couplers | other.dead_couplers,
        )

    def yield_fraction(self, topology: ChimeraTopology) -> float:
        """Fraction of qubits that survive (the processor *yield*)."""
        return 1.0 - self.num_dead_qubits / topology.num_qubits


#: A processor with no fabrication faults.
PERFECT_YIELD = FaultModel()


def random_faults(
    topology: ChimeraTopology,
    qubit_fault_rate: float = 0.02,
    coupler_fault_rate: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> FaultModel:
    """Draw i.i.d. fabrication faults.

    Parameters
    ----------
    qubit_fault_rate:
        Probability that each qubit is dead (production processors typically
        lose a few percent of qubits).
    coupler_fault_rate:
        Probability that each coupler between two *working* qubits is dead.
    """
    if not (0.0 <= qubit_fault_rate <= 1.0 and 0.0 <= coupler_fault_rate <= 1.0):
        raise HardwareError("fault rates must lie in [0, 1]")
    gen = as_rng(rng)
    dead_q = np.flatnonzero(gen.random(topology.num_qubits) < qubit_fault_rate)
    dead_qubits = frozenset(int(q) for q in dead_q)
    dead_couplers: set[tuple[int, int]] = set()
    if coupler_fault_rate > 0.0:
        for p, q in topology.iter_edges():
            if p in dead_qubits or q in dead_qubits:
                continue
            if gen.random() < coupler_fault_rate:
                dead_couplers.add((p, q))
    return FaultModel(dead_qubits, frozenset(dead_couplers))
