"""Chimera hardware connectivity graphs (paper Fig. 3).

The D-Wave processor family lays physical qubits out as an ``M x N`` lattice
of unit cells, each a complete bipartite graph ``K_{L,L}`` between a
*vertical* shore (``u = 0``) and a *horizontal* shore (``u = 1``).  Vertical
qubits couple to the like-indexed vertical qubit in the cells above/below;
horizontal qubits couple left/right.  Interior qubits therefore reach
``L + 2`` neighbors (6 for the production ``L = 4``), edge qubits ``L + 1``
(5), exactly as the paper states.

Two indexing schemes are supported and interconvertible:

* **coordinates** ``(i, j, u, k)``: cell row ``i``, cell column ``j``,
  shore ``u`` in {0 (vertical), 1 (horizontal)}, in-shore index ``k < L``;
* **linear** ``q = ((i * N + j) * 2 + u) * L + k``.

The closed-form node/edge counts match the paper's Stage-1 listing
(Fig. 6): for ``L = 4``, ``NG = 8*M*N`` and ``EG = 4*(2MN - M - N) + 16MN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import networkx as nx
import numpy as np

from ..exceptions import HardwareError

__all__ = [
    "ChimeraTopology",
    "chimera_node_count",
    "chimera_edge_count",
    "DW2_VESUVIUS",
    "DW2X",
]

Coord = tuple[int, int, int, int]


def chimera_node_count(m: int, n: int, l: int) -> int:
    """Number of qubits in ``C(M, N, L)``: ``2 * L * M * N``."""
    return 2 * l * m * n


def chimera_edge_count(m: int, n: int, l: int) -> int:
    """Number of couplers in ``C(M, N, L)``.

    ``L^2 * M * N`` intra-cell couplers plus ``L * ((M-1)*N + M*(N-1))``
    inter-cell couplers; for ``L = 4`` this reduces to the paper's
    ``EG = 4*(2MN - M - N) + 16*M*N``.
    """
    return l * l * m * n + l * ((m - 1) * n + m * (n - 1))


@dataclass(frozen=True)
class ChimeraTopology:
    """An ``M x N`` Chimera lattice with shore size ``L``.

    Instances are immutable and hashable; the full :mod:`networkx` graph is
    built lazily and cached.
    """

    m: int
    n: int
    l: int = 4

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1 or self.l < 1:
            raise HardwareError(
                f"Chimera dimensions must be positive, got (m={self.m}, n={self.n}, l={self.l})"
            )

    # ------------------------------------------------------------------ #
    # Counting
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Total number of physical qubits ``NG``."""
        return chimera_node_count(self.m, self.n, self.l)

    @property
    def num_couplers(self) -> int:
        """Total number of tunable couplers ``EG``."""
        return chimera_edge_count(self.m, self.n, self.l)

    @property
    def max_degree(self) -> int:
        """Degree of an interior qubit (``L + 2``; 6 for the D-Wave family)."""
        l_plus = self.l
        if self.m > 1 or self.n > 1:
            l_plus += 2 if (self.m > 1 and self.n > 1) else 1
        # Degenerate single-row/column lattices still have +2 interior
        # degree along the nontrivial axis when length > 2.
        return l_plus

    # ------------------------------------------------------------------ #
    # Index conversions
    # ------------------------------------------------------------------ #
    def coord_to_linear(self, coord: Coord) -> int:
        """Convert ``(i, j, u, k)`` coordinates to the linear qubit index."""
        i, j, u, k = coord
        if not (0 <= i < self.m and 0 <= j < self.n and u in (0, 1) and 0 <= k < self.l):
            raise HardwareError(f"coordinate {coord} outside C({self.m}, {self.n}, {self.l})")
        return ((i * self.n + j) * 2 + u) * self.l + k

    def linear_to_coord(self, q: int) -> Coord:
        """Convert a linear qubit index to ``(i, j, u, k)`` coordinates."""
        if not 0 <= q < self.num_qubits:
            raise HardwareError(f"qubit {q} outside C({self.m}, {self.n}, {self.l})")
        q, k = divmod(q, self.l)
        q, u = divmod(q, 2)
        i, j = divmod(q, self.n)
        return (i, j, u, k)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    def iter_edges(self):
        """Yield every coupler as a ``(p, q)`` pair of linear indices, ``p < q``.

        Intra-cell couplers first (cell by cell), then vertical inter-cell,
        then horizontal inter-cell; deterministic order.
        """
        to_lin = self.coord_to_linear
        for i in range(self.m):
            for j in range(self.n):
                for k0 in range(self.l):
                    p = to_lin((i, j, 0, k0))
                    for k1 in range(self.l):
                        q = to_lin((i, j, 1, k1))
                        yield (p, q) if p < q else (q, p)
        for i in range(self.m - 1):
            for j in range(self.n):
                for k in range(self.l):
                    yield (to_lin((i, j, 0, k)), to_lin((i + 1, j, 0, k)))
        for i in range(self.m):
            for j in range(self.n - 1):
                for k in range(self.l):
                    yield (to_lin((i, j, 1, k)), to_lin((i, j + 1, 1, k)))

    @cached_property
    def _graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_qubits))
        g.add_edges_from(self.iter_edges())
        return g

    def graph(self) -> nx.Graph:
        """The full hardware graph (cached; treat as read-only or copy)."""
        return self._graph

    def working_graph(self, faults=None) -> nx.Graph:
        """The hardware graph with a fault model's dead qubits/couplers removed.

        Parameters
        ----------
        faults:
            A :class:`repro.hardware.faults.FaultModel`, or ``None`` for a
            fault-free processor (returns a copy so callers may mutate).
        """
        g = self._graph.copy()
        if faults is not None:
            faults.validate(self)
            g.remove_edges_from(faults.dead_couplers)
            g.remove_nodes_from(faults.dead_qubits)
        return g

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR-style adjacency ``(indptr, neighbors)`` over linear indices.

        Useful for array-based shortest-path kernels that want to avoid
        per-node Python overhead.
        """
        g = self._graph
        n = self.num_qubits
        degs = np.array([g.degree(v) for v in range(n)], dtype=np.intp)
        indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(degs, out=indptr[1:])
        neighbors = np.empty(indptr[-1], dtype=np.intp)
        for v in range(n):
            neighbors[indptr[v] : indptr[v + 1]] = sorted(g.neighbors(v))
        return indptr, neighbors

    def cell_qubits(self, i: int, j: int) -> list[int]:
        """Linear indices of the ``2L`` qubits of unit cell ``(i, j)``."""
        return [self.coord_to_linear((i, j, u, k)) for u in (0, 1) for k in range(self.l)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChimeraTopology(m={self.m}, n={self.n}, l={self.l}; "
            f"{self.num_qubits} qubits, {self.num_couplers} couplers)"
        )


#: The 512-qubit, 8x8 lattice shown in the paper's Fig. 3.
DW2_VESUVIUS = ChimeraTopology(8, 8, 4)

#: The 1152-qubit, 12x12 lattice of the DW2X used in the Stage-1 model (M = N = 12).
DW2X = ChimeraTopology(12, 12, 4)
