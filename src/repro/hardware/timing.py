"""Hardware timing constants of the D-Wave execution pipeline.

All values are the paper's (Figs. 6 and 7): average durations measured on
the second-generation DW2 "Vesuvius" processor and assumed representative of
the DW2X.  Times are stored in microseconds (the unit used throughout the
paper's ASPEN listings) with second-valued conveniences.

The split is:

* **Programming (once per problem, Stage 1):** electronic-control state
  construction, programmable-magnetic-memory (PMM) software/electronics/
  chip/thermalization phases, and software/electronics run costs — a
  near-constant ~0.32 s.
* **Per-sample cycle (Stage 2):** anneal (``QuOps`` at 20 us each by
  default), readout (320 us), and post-readout thermalization (5 us).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..exceptions import ValidationError

__all__ = ["DWaveTimingModel", "DW2_TIMING"]


@dataclass(frozen=True)
class DWaveTimingModel:
    """Timing constants (microseconds) for a D-Wave-style QPU."""

    # --- Stage-1 initialization constants (Fig. 6) ---
    state_construction_us: float = 252162.0
    pmm_software_us: float = 33095.0
    pmm_electronics_us: float = 0.0
    pmm_chip_us: float = 11264.0
    pmm_thermalization_us: float = 10000.0
    software_run_us: float = 4000.0
    electronics_run_us: float = 9052.0
    # --- Stage-2 per-sample constants (Figs. 5 and 7) ---
    anneal_us: float = 20.0
    readout_us: float = 320.0
    thermalization_us: float = 5.0

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValidationError(f"timing constant {name} must be non-negative")

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def processor_initialize_us(self) -> float:
        """Total one-time programming cost (the listing's ``ProcessorInitialize``).

        With the default constants this is 319 573 us (~0.32 s).
        """
        return (
            self.state_construction_us
            + self.pmm_software_us
            + self.pmm_electronics_us
            + self.pmm_chip_us
            + self.pmm_thermalization_us
            + self.software_run_us
            + self.electronics_run_us
        )

    @property
    def processor_initialize_s(self) -> float:
        """One-time programming cost in seconds."""
        return self.processor_initialize_us * 1e-6

    def sample_cycle_us(self, num_reads: int = 1) -> float:
        """Time for ``num_reads`` anneal-read-thermalize cycles (microseconds)."""
        if num_reads < 0:
            raise ValidationError(f"num_reads must be non-negative, got {num_reads}")
        return num_reads * (self.anneal_us + self.readout_us + self.thermalization_us)

    def sample_cycle_s(self, num_reads: int = 1) -> float:
        """Time for ``num_reads`` anneal-read-thermalize cycles (seconds)."""
        return self.sample_cycle_us(num_reads) * 1e-6

    def quops_seconds(self, num_anneals: int) -> float:
        """The machine model's ``QuOps`` resource: ``number * anneal_us / 1e6`` seconds.

        This is the Fig.-5 core resource (``number * 20/1000000`` at the
        default 20 us anneal duration).
        """
        if num_anneals < 0:
            raise ValidationError(f"num_anneals must be non-negative, got {num_anneals}")
        return num_anneals * self.anneal_us * 1e-6

    def with_anneal_time(self, anneal_us: float) -> "DWaveTimingModel":
        """A copy with a different annealing duration (a user program option)."""
        return replace(self, anneal_us=float(anneal_us))


#: The paper's DW2 Vesuvius constants (assumed to carry over to the DW2X).
DW2_TIMING = DWaveTimingModel()
