"""Control-precision and parameter-range limits of the physical device.

The paper notes (Sec. 2.2) that "the ability to realize these exact parameter
values is limited by the bits of precision expressed by the electronic
control system and the hardware couplers", so "the final, programmed Ising
model may be substantively different from the intended logical input".  This
module models that effect: parameters are rescaled into the programmable
ranges and rounded to a uniform grid determined by the DAC precision,
returning both the degraded model and a distortion report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import HardwareError, ValidationError
from ..qubo import IsingModel

__all__ = [
    "DeviceProperties",
    "ProgrammingReport",
    "rescale_to_ranges",
    "quantize_value",
    "program_ising",
    "DW2_PROPERTIES",
]


@dataclass(frozen=True)
class DeviceProperties:
    """Programmable parameter ranges and DAC precision of a QPU.

    Attributes
    ----------
    h_range, j_range:
        Inclusive ``(lo, hi)`` ranges for fields and couplings.
    precision_bits:
        Number of bits of the control DAC; programmed values land on a
        uniform grid of ``2**precision_bits - 1`` levels spanning each range.
        The odd level count guarantees the midpoint of a symmetric range —
        in particular 0, the value carried by every unused qubit — is
        exactly representable.
    """

    h_range: tuple[float, float] = (-2.0, 2.0)
    j_range: tuple[float, float] = (-1.0, 1.0)
    precision_bits: int = 5

    def __post_init__(self) -> None:
        for name, (lo, hi) in (("h_range", self.h_range), ("j_range", self.j_range)):
            if not (math.isfinite(lo) and math.isfinite(hi) and lo < hi):
                raise HardwareError(
                    f"{name} must be a finite range with lo < hi, got ({lo}, {hi})"
                )
        if self.precision_bits < 2:
            raise HardwareError(f"precision_bits must be >= 2, got {self.precision_bits}")


#: Ranges and an effective ~5-bit control precision representative of the DW2.
DW2_PROPERTIES = DeviceProperties()


@dataclass(frozen=True)
class ProgrammingReport:
    """Distortion introduced when programming an Ising model onto hardware.

    Attributes
    ----------
    scale:
        Multiplicative factor applied to ``(h, J)`` before quantization
        (energies of the programmed model are ``scale`` times the logical
        ones, plus quantization error).
    max_h_error, max_j_error:
        Largest absolute deviation between the scaled intended value and the
        programmed (quantized) value.
    """

    scale: float
    max_h_error: float
    max_j_error: float


def rescale_to_ranges(
    ising: IsingModel,
    h_range: tuple[float, float] = (-2.0, 2.0),
    j_range: tuple[float, float] = (-1.0, 1.0),
) -> tuple[IsingModel, float]:
    """Uniformly scale ``(h, J)`` so every parameter fits its range.

    A single scale factor ``<= 1`` is used (never scaling *up*), preserving
    the ground state exactly.  Returns ``(scaled_model, scale)``.
    """
    candidates = [1.0]
    if ising.max_abs_h > 0:
        candidates.append(min(abs(h_range[0]), abs(h_range[1])) / ising.max_abs_h)
    if ising.max_abs_j > 0:
        candidates.append(min(abs(j_range[0]), abs(j_range[1])) / ising.max_abs_j)
    scale = min(candidates)
    return ising.scaled(scale), scale


def quantize_value(x: np.ndarray | float, lo: float, hi: float, bits: int) -> np.ndarray:
    """Snap ``x`` to the nearest of ``2**bits - 1`` uniform levels spanning ``[lo, hi]``.

    Values outside the range are clipped first.  The odd level count keeps
    the range midpoint (0 for symmetric ranges) exactly representable, so
    quantization never invents parameters on unused qubits.
    """
    if not lo < hi:
        raise ValidationError(f"need lo < hi, got ({lo}, {hi})")
    if bits < 2:
        raise ValidationError(f"bits must be >= 2, got {bits}")
    intervals = (1 << bits) - 2  # 2**bits - 1 grid points
    arr = np.clip(np.asarray(x, dtype=np.float64), lo, hi)
    steps = np.rint((arr - lo) / (hi - lo) * intervals)
    return lo + steps * (hi - lo) / intervals


def program_ising(
    ising: IsingModel,
    properties: DeviceProperties = DW2_PROPERTIES,
) -> tuple[IsingModel, ProgrammingReport]:
    """Rescale and quantize an Ising model as the control electronics would.

    Returns the programmed (degraded) model together with a
    :class:`ProgrammingReport` describing the distortion.  The offset is
    scaled consistently so that comparing energies remains meaningful.
    """
    scaled, scale = rescale_to_ranges(ising, properties.h_range, properties.j_range)
    qh = quantize_value(scaled.h, *properties.h_range, properties.precision_bits)
    rows, cols, vals = scaled.coupling_arrays()
    qj = quantize_value(vals, *properties.j_range, properties.precision_bits)
    programmed = IsingModel(
        qh,
        {(int(i), int(j)): float(v) for i, j, v in zip(rows, cols, qj)},
        scaled.offset,
    )
    report = ProgrammingReport(
        scale=scale,
        max_h_error=float(np.max(np.abs(qh - scaled.h))) if qh.size else 0.0,
        max_j_error=float(np.max(np.abs(qj - vals))) if qj.size else 0.0,
    )
    return programmed, report
