"""The three QPU-integration architectures of paper Fig. 1.

(a) **asymmetric** — a single QPU behind a local-area network; every client
    request crosses the LAN and contends for the one device.  This is the
    paper's near-term expectation for the D-Wave QPU and the architecture
    its performance models assume.
(b) **shared** — a single QPU attached as a shared resource inside the host
    (negligible network latency; contention remains).
(c) **dedicated** — one QPU per node; no contention, no network.

The simulation measures what the paper's single-request models cannot:
queueing delay under multi-client load, and how much of it each integration
choice removes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

import numpy as np

from .._rng import as_rng
from ..exceptions import ValidationError
from .des import Simulator
from .layers import RequestProfile, split_execution_session
from .trace import Trace

__all__ = ["Architecture", "ArchitectureResult", "simulate_architecture"]

#: LAN crossing latency for the asymmetric architecture (seconds).
_LAN_LATENCY_S = 200e-6


class Architecture(str, Enum):
    """Fig. 1 integration models."""

    ASYMMETRIC = "asymmetric"
    SHARED = "shared"
    DEDICATED = "dedicated"


@dataclass(frozen=True)
class ArchitectureResult:
    """Aggregate metrics from one multi-client simulation."""

    architecture: Architecture
    num_clients: int
    requests_per_client: int
    makespan: float
    mean_latency: float
    max_latency: float
    mean_qpu_wait: float
    trace: Trace

    @property
    def total_requests(self) -> int:
        return self.num_clients * self.requests_per_client

    @property
    def throughput(self) -> float:
        """Completed requests per second of simulated time."""
        return self.total_requests / self.makespan if self.makespan > 0 else float("inf")


def _profile_for(arch: Architecture, profile: RequestProfile) -> RequestProfile:
    if arch is Architecture.ASYMMETRIC:
        return replace(profile, network_latency=max(profile.network_latency, _LAN_LATENCY_S))
    # Shared and dedicated integrations bypass the LAN.
    return replace(profile, network_latency=0.0)


def simulate_architecture(
    architecture: Architecture | str,
    profile: RequestProfile,
    num_clients: int = 4,
    requests_per_client: int = 2,
    mean_think_time: float = 0.0,
    rng: np.random.Generator | int | None = None,
) -> ArchitectureResult:
    """Simulate a closed multi-client workload on one Fig.-1 architecture.

    Parameters
    ----------
    profile:
        Per-request stage durations (network fields are overridden per the
        architecture's integration model).
    num_clients:
        Concurrent client threads.
    requests_per_client:
        Requests each client issues back-to-back.
    mean_think_time:
        Mean of an exponential think time between a client's requests
        (0 disables thinking).
    """
    arch = Architecture(architecture)
    if num_clients < 1 or requests_per_client < 1:
        raise ValidationError("num_clients and requests_per_client must be >= 1")
    gen = as_rng(rng)

    sim = Simulator()
    trace = Trace()
    adj_profile = _profile_for(arch, profile)

    if arch is Architecture.DEDICATED:
        qpus = [sim.resource(capacity=1, name=f"qpu{i}") for i in range(num_clients)]
    else:
        qpus = [sim.resource(capacity=1, name="qpu")] * num_clients

    latencies: list[float] = []

    def client(cid: int):
        for r in range(requests_per_client):
            if mean_think_time > 0 and r > 0:
                yield sim.timeout(float(gen.exponential(mean_think_time)))
            session = cid * requests_per_client + r
            latency = yield sim.process(
                split_execution_session(sim, qpus[cid], adj_profile, trace, session)
            )
            latencies.append(float(latency))

    for cid in range(num_clients):
        sim.process(client(cid))
    makespan = sim.run()

    unique_qpus = {id(q): q for q in qpus}.values()
    total_wait = sum(q.total_wait for q in unique_qpus)
    total_grants = sum(q.total_grants for q in unique_qpus)

    return ArchitectureResult(
        architecture=arch,
        num_clients=num_clients,
        requests_per_client=requests_per_client,
        makespan=float(makespan),
        mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        max_latency=float(np.max(latencies)) if latencies else 0.0,
        mean_qpu_wait=total_wait / total_grants if total_grants else 0.0,
        trace=trace,
    )
