"""The split-execution sequence of paper Fig. 2 as a discrete-event process.

A calling thread pushes a problem across the network to the software (SW)
layer, which parses it; the middleware (MW) layer performs the domain
translation (minor embedding and parameter setting); the quantum hardware
(QHW) layer programs the control electronics and runs the anneal-read
cycles; results flow back through MW post-processing and the SW layer to
the client.  The QHW layer is a capacity-one resource, so concurrent
sessions queue — the effect the Fig. 1 architecture study measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .des import Resource, Simulator
from .trace import Trace

__all__ = ["RequestProfile", "split_execution_session", "run_single_session"]


@dataclass(frozen=True)
class RequestProfile:
    """Durations (seconds) of each stage of one split-execution request.

    These are typically produced by the analytical stage models in
    :mod:`repro.core` (see ``SplitExecutionModel.request_profile``), but any
    numbers work — the runtime layer is a pure scheduler.
    """

    ising_generation: float  # SW: build the logical Ising model (Stage 1)
    embedding: float  # MW: minor embedding + parameter setting (Stage 1)
    processor_init: float  # QHW: electronic-control initialization (Stage 1)
    quantum_execution: float  # QHW: anneal/readout/thermalization cycles (Stage 2)
    postprocessing: float  # MW/SW: sort readouts, return solution (Stage 3)
    network_latency: float = 0.0  # one-way client <-> server latency
    payload_transfer: float = 0.0  # problem/readout transfer time per crossing

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 0:
                raise ValueError(f"profile duration {name} must be non-negative")

    @property
    def total_service_time(self) -> float:
        """Contention-free end-to-end latency of one request."""
        return (
            2 * (self.network_latency + self.payload_transfer)
            + self.ising_generation
            + self.embedding
            + self.processor_init
            + self.quantum_execution
            + self.postprocessing
        )


def split_execution_session(
    sim: Simulator,
    qpu: Resource,
    profile: RequestProfile,
    trace: Trace,
    session: int = 0,
):
    """Generator process executing one Fig.-2 request sequence.

    Yields through the DES engine; returns the end-to-end latency.
    """
    t0 = sim.now

    hop = profile.network_latency + profile.payload_transfer
    if hop > 0:
        start = sim.now
        yield sim.timeout(hop)
        trace.record("network", "push_problem", start, sim.now, session)

    start = sim.now
    yield sim.timeout(profile.ising_generation)
    trace.record("sw", "generate_ising", start, sim.now, session)

    start = sim.now
    yield sim.timeout(profile.embedding)
    trace.record("mw", "minor_embedding", start, sim.now, session)

    start = sim.now
    yield qpu.request()
    wait = sim.now - start
    if wait > 0:
        trace.record("qhw", "queue_wait", start, sim.now, session)
    try:
        start = sim.now
        yield sim.timeout(profile.processor_init)
        # The grant's queue wait is attributed to the first operation the
        # session runs on the QPU, so per-session waits audit from spans.
        trace.record("qhw", "program_processor", start, sim.now, session, wait_s=wait)

        start = sim.now
        yield sim.timeout(profile.quantum_execution)
        trace.record("qhw", "anneal_and_readout", start, sim.now, session)
    finally:
        qpu.release()

    start = sim.now
    yield sim.timeout(profile.postprocessing)
    trace.record("mw", "postprocess_sort", start, sim.now, session)

    if hop > 0:
        start = sim.now
        yield sim.timeout(hop)
        trace.record("network", "return_solution", start, sim.now, session)

    return sim.now - t0


def run_single_session(profile: RequestProfile) -> tuple[float, Trace]:
    """Convenience: simulate one uncontended request; return (latency, trace)."""
    sim = Simulator()
    trace = Trace()
    qpu = sim.resource(capacity=1, name="qpu")
    proc = sim.process(split_execution_session(sim, qpu, profile, trace, session=0))
    sim.run()
    return float(proc.value), trace
