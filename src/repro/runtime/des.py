"""A minimal generator-based discrete-event simulation engine.

The runtime layer needs ordered, time-stamped interaction between the
calling thread, software, middleware, and quantum hardware layers of the
paper's Fig. 2 — including queueing when several clients contend for one
QPU (the Fig. 1 architecture study).  simpy is not available offline, so
this module implements the small simpy-like core the library needs:
processes are Python generators yielding :class:`Timeout`, resource
requests, or other processes; a binary heap orders event delivery with a
deterministic tiebreak.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, NamedTuple

from ..exceptions import SimulationError

__all__ = ["Event", "Timeout", "Process", "Resource", "Simulator", "Waiter"]


class Waiter(NamedTuple):
    """One queued :meth:`Resource.request`, in deterministic arrival order.

    ``seq`` is the resource's strictly increasing arrival stamp: two
    requests at the same simulation timestamp are ordered by who requested
    first in the event loop's deterministic delivery order — the same
    tiebreak the simulator's heap applies to same-time events.  ``tag`` is
    opaque request metadata (e.g. a problem-size key) that queue
    disciplines may use to pick the next grant.
    """

    seq: int
    requested_at: float
    tag: Any
    event: Event


class Event:
    """A one-shot event; processes waiting on it resume when it succeeds."""

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, scheduling all waiter callbacks at the current time."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._callbacks:
            self.sim._schedule(self.sim.now, cb, self)
        self._callbacks.clear()
        return self

    def _wait(self, callback) -> None:
        if self.triggered:
            self.sim._schedule(self.sim.now, callback, self)
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(sim)
        self.triggered = True  # pre-armed; delivery is the scheduled wakeup
        sim._schedule(sim.now + delay, self._deliver, self)

    def _deliver(self, _evt) -> None:
        for cb in self._callbacks:
            cb(self)
        self._callbacks.clear()

    def _wait(self, callback) -> None:
        self._callbacks.append(callback)


class Process(Event):
    """A running generator; also an event that fires when the generator ends.

    The generator may ``yield``:

    * an :class:`Event` (including :class:`Timeout` and resource requests) —
      the process resumes when it fires;
    * another :class:`Process` — join semantics;
    * ``None`` — resume immediately (a scheduling point).

    The generator's ``return`` value becomes the process's event value.
    """

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        self.generator = generator
        sim._schedule(sim.now, self._step, None)

    def _step(self, fired: Event | None) -> None:
        try:
            value = fired.value if isinstance(fired, Event) else None
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if target is None:
            self.sim._schedule(self.sim.now, self._step, None)
        elif isinstance(target, Event):
            target._wait(self._step)
        else:
            raise SimulationError(
                f"process yielded {target!r}; expected an Event, Process, or None"
            )


class Resource:
    """A capacity-limited resource with deterministic FIFO queueing.

    ``request()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  Wait times can be measured by comparing
    simulation time before the request and after the grant.

    **FIFO guarantee.**  The waiting list holds :class:`Waiter` entries in
    strict arrival order ``(requested_at, seq)``: simulation time never
    decreases and ``seq`` is a per-resource stamp incremented on every
    enqueued request, so *same-timestamp* waiters are ordered by the
    deterministic heap tiebreak that delivered their requesting events —
    never by hash order or any other run-to-run varying detail.  The
    default release grants index 0, the earliest ``(requested_at, seq)``
    entry, making grants strictly first-come-first-served and multi-session
    runs reproducible by construction.

    A queue *discipline* may override the pick: ``select``, when given, is
    called on each release with the tuple of current :class:`Waiter`
    entries (still in arrival order) and returns the index to grant next.
    It must be a pure function of that tuple — the determinism guarantee
    then extends to any discipline.
    """

    def __init__(
        self,
        sim: "Simulator",
        capacity: int = 1,
        name: str = "resource",
        select=None,
    ):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: list[Waiter] = []
        self._select = select
        self._arrival_seq = 0
        # Aggregate statistics.
        self.total_grants = 0
        self.total_wait = 0.0
        self._request_times: dict[Event, float] = {}

    def request(self, tag: Any = None) -> Event:
        evt = Event(self.sim)
        self._request_times[evt] = self.sim.now
        if self.in_use < self.capacity:
            self.in_use += 1
            self._grant(evt)
        else:
            self._arrival_seq += 1
            self._waiting.append(Waiter(self._arrival_seq, self.sim.now, tag, evt))
        return evt

    def _grant(self, evt: Event) -> None:
        self.total_grants += 1
        self.total_wait += self.sim.now - self._request_times.pop(evt)
        evt.succeed(self)

    def release(self) -> None:
        if self.in_use == 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            if self._select is None:
                index = 0
            else:
                index = self._select(tuple(self._waiting))
                if not isinstance(index, int) or not 0 <= index < len(self._waiting):
                    raise SimulationError(
                        f"queue discipline for {self.name!r} selected invalid "
                        f"index {index!r} from {len(self._waiting)} waiters"
                    )
            waiter = self._waiting.pop(index)
            self._grant(waiter.event)
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def mean_wait(self) -> float:
        """Average time between request and grant across all grants so far."""
        return self.total_wait / self.total_grants if self.total_grants else 0.0


class Simulator:
    """The event loop: a time-ordered heap with deterministic tiebreaks."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, object, object]] = []
        self._seq = 0

    def _schedule(self, time: float, callback, payload) -> None:
        if time < self.now:
            raise SimulationError(f"cannot schedule into the past ({time} < {self.now})")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback, payload))

    # -- public factory helpers ---------------------------------------- #
    def timeout(self, delay: float) -> Timeout:
        return Timeout(self, delay)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def resource(
        self, capacity: int = 1, name: str = "resource", select=None
    ) -> Resource:
        return Resource(self, capacity, name, select)

    def event(self) -> Event:
        return Event(self)

    # -- main loop ------------------------------------------------------ #
    def run(self, until: float | None = None) -> float:
        """Process events until the heap drains (or simulated ``until``).

        Returns the final simulation time.
        """
        while self._heap:
            time, _, callback, payload = self._heap[0]
            if until is not None and time > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = time
            callback(payload)
        return self.now
