"""Execution traces: time-stamped spans across the layer stack.

The paper's Fig. 2 is a sequence diagram; a :class:`Trace` is its machine-
readable equivalent — an ordered list of ``(layer, operation, start, end)``
spans recorded while the discrete-event simulation runs, with aggregation
helpers for per-layer totals and a rendered timeline for reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ValidationError

__all__ = ["Span", "Trace"]

#: Canonical layer names, in stack order (paper Fig. 2).
LAYERS = ("client", "network", "sw", "mw", "qhw")


@dataclass(frozen=True)
class Span:
    """One operation on one layer.

    ``wait_s`` attributes *queue wait* to the span: the time between the
    session requesting the resource this operation ran on and the grant.
    It is attribution metadata, not occupancy — ``duration`` stays the
    busy time ``end - start`` — so contended runs can be audited per
    session without double-counting resource busy time.
    """

    layer: str
    operation: str
    start: float
    end: float
    session: int = 0
    wait_s: float = 0.0

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValidationError(
                f"span {self.operation!r} ends before it starts ({self.end} < {self.start})"
            )
        if self.wait_s < 0:
            raise ValidationError(
                f"span {self.operation!r} has negative wait_s ({self.wait_s})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """An append-only collection of spans with aggregation helpers."""

    spans: list[Span] = field(default_factory=list)

    def record(
        self,
        layer: str,
        operation: str,
        start: float,
        end: float,
        session: int = 0,
        wait_s: float = 0.0,
    ) -> Span:
        span = Span(layer, operation, start, end, session, wait_s)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Time from the earliest span start to the latest span end."""
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    def total_by_layer(self) -> dict[str, float]:
        """Busy time accumulated on each layer."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.layer] = out.get(s.layer, 0.0) + s.duration
        return out

    def total_by_operation(self) -> dict[str, float]:
        """Busy time accumulated per operation name."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.operation] = out.get(s.operation, 0.0) + s.duration
        return out

    def session_latency(self, session: int) -> float:
        """End-to-end latency of one session's spans."""
        spans = [s for s in self.spans if s.session == session]
        if not spans:
            raise ValidationError(f"no spans recorded for session {session}")
        return max(s.end for s in spans) - min(s.start for s in spans)

    def sessions(self) -> list[int]:
        return sorted({s.session for s in self.spans})

    def session_wait(self, session: int) -> float:
        """Total queue wait attributed to one session's spans."""
        return sum(s.wait_s for s in self.spans if s.session == session)

    def total_wait_by_session(self) -> dict[int, float]:
        """Queue wait accumulated per session (sum of span ``wait_s``)."""
        out: dict[int, float] = {}
        for s in self.spans:
            out[s.session] = out.get(s.session, 0.0) + s.wait_s
        return out

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_table(self, time_unit: str = "s") -> str:
        """Render the trace as a fixed-width text timeline (Fig.-2 style)."""
        scale = {"s": 1.0, "ms": 1e3, "us": 1e6}.get(time_unit)
        if scale is None:
            raise ValidationError(f"time_unit must be s/ms/us, got {time_unit!r}")
        lines = [
            f"{'session':>7}  {'layer':<8} {'operation':<28} "
            f"{'start [' + time_unit + ']':>14} {'end [' + time_unit + ']':>14}"
        ]
        for s in sorted(self.spans, key=lambda x: (x.start, x.session)):
            lines.append(
                f"{s.session:>7}  {s.layer:<8} {s.operation:<28} "
                f"{s.start * scale:>14.3f} {s.end * scale:>14.3f}"
            )
        return "\n".join(lines)
