"""Split-execution runtime: discrete-event simulation of Figs. 1 and 2.

A small simpy-like engine (:mod:`repro.runtime.des`), the layered request
sequence of Fig. 2 (:mod:`repro.runtime.layers`), span traces
(:mod:`repro.runtime.trace`), and the Fig.-1 architecture comparison
(:mod:`repro.runtime.architectures`).
"""

from .architectures import Architecture, ArchitectureResult, simulate_architecture
from .des import Event, Process, Resource, Simulator, Timeout, Waiter
from .layers import RequestProfile, run_single_session, split_execution_session
from .trace import Span, Trace

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Resource",
    "Waiter",
    "Trace",
    "Span",
    "RequestProfile",
    "split_execution_session",
    "run_single_session",
    "Architecture",
    "ArchitectureResult",
    "simulate_architecture",
]
