"""Exact (backtracking) embedding search for small instances.

The paper mentions a "brute force approach to minor embedding that relies on
solving the subgraph isomorphism problem to identify the smallest embedded
minor" — exponential in hardware size, but usable offline to precompute
lookup tables (Sec. 2.2 and 3.3).  This module provides the unit-chain case:
a backtracking subgraph-*monomorphism* search that maps every logical vertex
to a single hardware qubit.  When it succeeds, the result is the smallest
possible minor (every chain has length 1); when the input is not
subgraph-embeddable the search is exhaustive proof of that fact (for the
unit-chain class), and callers fall back to heuristic chain-based embedders.
"""

from __future__ import annotations

import networkx as nx

from ..exceptions import EmbeddingError
from .types import Embedding

__all__ = ["find_subgraph_embedding", "subgraph_embedding_exists"]

_DEFAULT_NODE_LIMIT = 4096


def _search(
    order: list[int],
    source_adj: dict[int, set[int]],
    hw_adj: dict[int, set[int]],
    hw_degree: dict[int, int],
    assignment: dict[int, int],
    used: set[int],
    pos: int,
) -> bool:
    if pos == len(order):
        return True
    v = order[pos]
    needed_deg = len(source_adj[v])
    mapped_nbrs = [assignment[u] for u in source_adj[v] if u in assignment]

    if mapped_nbrs:
        # Candidates must be hardware-adjacent to every already-mapped neighbor.
        candidates = set(hw_adj[mapped_nbrs[0]])
        for q in mapped_nbrs[1:]:
            candidates &= hw_adj[q]
        candidates -= used
    else:
        candidates = set(hw_adj) - used

    for q in sorted(candidates):
        if hw_degree[q] < needed_deg:
            continue
        assignment[v] = q
        used.add(q)
        if _search(order, source_adj, hw_adj, hw_degree, assignment, used, pos + 1):
            return True
        del assignment[v]
        used.remove(q)
    return False


def find_subgraph_embedding(
    source: nx.Graph,
    hardware: nx.Graph,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> Embedding:
    """Find a unit-chain embedding (subgraph monomorphism) by backtracking.

    Vertices are processed in a connectivity-aware order (highest degree
    first, then neighbors of placed vertices) with degree pruning.

    Raises
    ------
    EmbeddingError
        If no unit-chain embedding exists, or the hardware exceeds
        ``node_limit`` nodes (guard against accidental exponential blowups).
    """
    n = source.number_of_nodes()
    if sorted(source.nodes()) != list(range(n)):
        raise EmbeddingError("source graph nodes must be exactly range(n)")
    if hardware.number_of_nodes() > node_limit:
        raise EmbeddingError(
            f"hardware has {hardware.number_of_nodes()} nodes > node_limit={node_limit}; "
            "use a heuristic embedder for large graphs"
        )
    if n == 0:
        return Embedding(())
    if n > hardware.number_of_nodes():
        raise EmbeddingError("source has more vertices than the hardware has qubits")

    source_adj = {v: set(source.neighbors(v)) - {v} for v in source.nodes()}
    hw_adj = {q: set(hardware.neighbors(q)) - {q} for q in hardware.nodes()}
    hw_degree = {q: len(a) for q, a in hw_adj.items()}

    # Order: start at max degree, then repeatedly take the unplaced vertex
    # with the most placed neighbors (ties by degree) — a classic VF2-style
    # connectivity order that keeps the candidate sets small.
    remaining = set(range(n))
    order: list[int] = []
    while remaining:
        if order:
            placed = set(order)
            v = max(
                remaining,
                key=lambda x: (len(source_adj[x] & placed), len(source_adj[x]), -x),
            )
        else:
            v = max(remaining, key=lambda x: (len(source_adj[x]), -x))
        order.append(v)
        remaining.remove(v)

    assignment: dict[int, int] = {}
    if not _search(order, source_adj, hw_adj, hw_degree, assignment, set(), 0):
        raise EmbeddingError(
            f"no unit-chain (subgraph) embedding of the {n}-vertex source exists"
        )
    return Embedding(tuple((assignment[v],) for v in range(n)))


def subgraph_embedding_exists(source: nx.Graph, hardware: nx.Graph) -> bool:
    """Boolean wrapper around :func:`find_subgraph_embedding`."""
    try:
        find_subgraph_embedding(source, hardware)
    except EmbeddingError:
        return False
    return True
