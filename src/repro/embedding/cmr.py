"""The Cai-Macready-Roy (CMR) minor-embedding heuristic.

This is the "practical heuristic for finding graph minors" (Cai, Macready &
Roy, arXiv:1406.2741) the paper adopts for its Stage-1 programming model: a
non-deterministic technique that grows one *vertex model* (chain) per logical
vertex by routing node-weighted shortest paths between the already-embedded
neighbor chains, with hardware qubits weighted exponentially in how many
chains currently claim them.  Iterative re-embedding sweeps drive the chain
overlap to zero; success yields a valid minor embedding, typically using far
fewer qubits than the worst-case complete-graph construction.

Two engineering refinements (both standard in congestion-driven routers and
documented in DESIGN.md) make the sweeps converge reliably on dense inputs:

* **Annealed sharing penalty** — the usage penalty base starts small and
  doubles each sweep up to its ceiling, letting early sweeps rearrange
  chains freely before sharing is squeezed out (PathFinder's
  present-sharing schedule).
* **Congestion history** — qubits that stay overlapped accrue a permanent
  multiplicative cost, so persistent conflicts eventually force the chains
  walling them in to reorganize (PathFinder's history term).  Plain
  per-sweep penalties provably lock into lopsided equilibria on cliques.

The shortest-path kernel is node-weighted multi-source Dijkstra, run in C
through :func:`scipy.sparse.csgraph.dijkstra` on a directed CSR matrix whose
edge ``u -> v`` carries the weight of its *head* ``v`` (so a path's cost is
the sum of the weights of the nodes it enters); paths are recovered from the
returned predecessor trees.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from .._rng import as_rng
from ..exceptions import EmbeddingError
from .types import Embedding

__all__ = ["CmrParams", "CmrDiagnostics", "find_embedding_cmr", "cmr_embedding_ops"]

_NO_PREDECESSOR = -9999  # scipy.sparse.csgraph sentinel


@dataclass(frozen=True)
class CmrParams:
    """Tuning knobs of the CMR heuristic.

    Attributes
    ----------
    max_tries:
        Number of random restarts (fresh vertex orders) before giving up.
    max_passes:
        Work budget per try, in *sweep equivalents*: up to
        ``max_passes * n`` vertex-model computations are spent on the
        eviction cascade before restarting.
    penalty_base:
        Ceiling of the exponential vertex weight ``w(q) = base ** usage(q)``.
        ``None`` (default) auto-selects ``max(16, |V(H)|)`` so that one
        reused qubit eventually costs more than any clean detour path.  The
        effective base is annealed: it starts at 2 and doubles every
        ``n`` evaluations until it reaches the ceiling.
    history_base:
        Base of the congestion-history factor.  Each qubit found shared
        when a chain is (re)placed accrues one unit of history, multiplying
        its weight by ``history_base`` for the rest of the try.  Together
        with eviction this is the negotiated-congestion scheme of
        PathFinder-style routers, which breaks the overlap equilibria that
        plain re-embedding sweeps provably lock into on dense inputs.
    prune_chains:
        Whether to strip unnecessary leaf qubits from chains on success.
    jitter:
        Relative magnitude of random multiplicative noise on node weights.
        The heuristic is *non-deterministic by design* (paper Sec. 2.2);
        without noise the sweeps can lock into a fixed point.
    """

    max_tries: int = 48
    max_passes: int = 24
    penalty_base: float | None = None
    history_base: float = 4.0
    prune_chains: bool = True
    jitter: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_tries < 1 or self.max_passes < 1:
            raise EmbeddingError("max_tries >= 1 and max_passes >= 1 required")
        if self.penalty_base is not None and self.penalty_base <= 1.0:
            raise EmbeddingError("penalty_base must exceed 1 for overlap to be discouraged")
        if self.history_base < 1.0:
            raise EmbeddingError("history_base must be >= 1")


@dataclass(frozen=True)
class CmrDiagnostics:
    """Run statistics returned alongside a successful embedding."""

    tries: int
    evaluations: int
    num_physical: int
    max_chain_length: int


class _Workspace:
    """Dense-index view of the hardware graph plus mutable chain state."""

    def __init__(self, source: nx.Graph, hardware: nx.Graph, rng: np.random.Generator):
        self.source = source
        self.rng = rng
        self.hw_nodes = sorted(hardware.nodes())
        self.N = len(self.hw_nodes)
        self.to_dense = {q: i for i, q in enumerate(self.hw_nodes)}

        self.adj: list[np.ndarray] = []
        for q in self.hw_nodes:
            nbrs = sorted(self.to_dense[x] for x in hardware.neighbors(q) if x != q)
            self.adj.append(np.asarray(nbrs, dtype=np.intp))
        self.adj_sets = [set(a.tolist()) for a in self.adj]

        # Directed CSR for node-weighted Dijkstra: the data vector is
        # refreshed to the current node weights before every search batch.
        rows: list[int] = []
        cols: list[int] = []
        for q, a in enumerate(self.adj):
            rows.extend([q] * a.size)
            cols.extend(int(x) for x in a)
        self.csr = sp.csr_array(
            (np.ones(len(rows), dtype=np.float64), (rows, cols)),
            shape=(self.N, self.N),
        )
        self.csr_cols = self.csr.indices.copy()

        self.n = source.number_of_nodes()
        self.chains: list[np.ndarray | None] = [None] * self.n
        self.usage = np.zeros(self.N, dtype=np.int64)
        self.history = np.zeros(self.N, dtype=np.int64)
        self.owners: list[set[int]] = [set() for _ in range(self.N)]
        self.pass_index = 0  # advanced by the improvement loop (anneal clock)

    # -- weights ------------------------------------------------------- #
    #: Cap on log-weights.  exp(24) ~ 2.6e10 keeps every path cost below
    #: ~1e12, where float64 still resolves unit-weight steps exactly; larger
    #: weights would create flat plateaus in the distance fields (absorption)
    #: on which the greedy path descent could cycle.
    _MAX_LOG_WEIGHT = 24.0

    def node_weights(self, params: CmrParams) -> np.ndarray:
        ceiling = params.penalty_base if params.penalty_base is not None else max(16.0, self.N)
        # Annealed present-sharing penalty: 2, 4, 8, ... up to the ceiling.
        log_base = min(np.log(ceiling), np.log(2.0) * (1.0 + self.pass_index))
        log_w = self.usage * log_base + self.history * np.log(params.history_base)
        w = np.exp(np.minimum(log_w, self._MAX_LOG_WEIGHT))
        if params.jitter > 0:
            w = w * (1.0 + params.jitter * self.rng.random(self.N))
        return w

    # -- chain bookkeeping --------------------------------------------- #
    def remove_chain(self, v: int) -> None:
        chain = self.chains[v]
        if chain is not None:
            self.usage[chain] -= 1
            for q in chain:
                self.owners[int(q)].discard(v)
            self.chains[v] = None

    def set_chain(self, v: int, chain: np.ndarray) -> set[int]:
        """Install a chain; return the set of vertices it now conflicts with.

        Each shared qubit is charged one unit of congestion history.
        """
        self.chains[v] = chain
        self.usage[chain] += 1
        conflicted: set[int] = set()
        for q in chain:
            q = int(q)
            owners = self.owners[q]
            if owners:
                conflicted |= owners
                self.history[q] += 1
            owners.add(v)
        conflicted.discard(v)
        return conflicted

    def overlap(self) -> int:
        return int(np.count_nonzero(self.usage > 1))

    def total_usage(self) -> int:
        return int(self.usage.sum())


def _distance_fields(
    ws: _Workspace, chains: list[np.ndarray], w: np.ndarray, jitter_rng=None, jitter=0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Node-weighted shortest-path distances from each chain to every qubit.

    ``D[i, q]`` is the minimum, over paths from chain ``i`` to ``q``, of the
    sum of weights of the nodes *entered* (sources cost 0); ``P[i, q]`` is
    the predecessor of ``q`` on such a path (scipy sentinel -9999 at sources
    and unreachable nodes).
    """
    ws.csr.data[:] = w[ws.csr_cols]  # edge u -> v costs the weight of v
    if jitter > 0.0 and jitter_rng is not None:
        # Break path ties at random so successive evaluations explore
        # different routings instead of reproducing a conflicted fixed point.
        ws.csr.data *= 1.0 + jitter * jitter_rng.random(ws.csr.data.shape[0])
    k = len(chains)
    D = np.empty((k, ws.N), dtype=np.float64)
    P = np.empty((k, ws.N), dtype=np.int32)
    for i, chain in enumerate(chains):
        d, p = csgraph.dijkstra(
            ws.csr,
            directed=True,
            indices=chain,
            min_only=True,
            return_predecessors=True,
        )[:2]
        D[i] = d
        P[i] = p
    return D, P


def _walk_path(P_row: np.ndarray, root: int, chain_set: set[int]) -> list[int]:
    """Follow a predecessor tree from ``root`` back to its source chain.

    Returns the intermediate nodes (including ``root``, excluding the chain
    endpoint).
    """
    path: list[int] = []
    cur = root
    while cur not in chain_set:
        path.append(cur)
        nxt = int(P_row[cur])
        if nxt == _NO_PREDECESSOR:
            break  # root itself was a source for this neighbor
        cur = nxt
    return path


def _find_vertex_model(ws: _Workspace, v: int, params: CmrParams) -> np.ndarray | None:
    """Compute a vertex model for ``v`` given the current chains of its neighbors.

    Returns dense hardware indices, or ``None`` if some embedded neighbor is
    unreachable (disconnected hardware).
    """
    embedded_nbrs = [u for u in ws.source.neighbors(v) if u != v and ws.chains[u] is not None]
    w = ws.node_weights(params)

    if not embedded_nbrs:
        # Isolated (so far) vertex: claim a least-used qubit at random.
        candidates = np.flatnonzero(ws.usage == ws.usage.min())
        root = int(ws.rng.choice(candidates))
        return np.asarray([root], dtype=np.intp)

    chain_arrays = [ws.chains[u] for u in embedded_nbrs]
    D, P = _distance_fields(ws, chain_arrays, w, jitter_rng=ws.rng, jitter=params.jitter)  # type: ignore[arg-type]

    # Root cost: the plain sum of weighted path costs, as in CMR.  Rooting
    # *on* a neighbor's chain is not free — the root would join v's model
    # and overlap phi(y) — so source entries cost the qubit's own weight.
    totals = D.copy()
    for i, chain in enumerate(chain_arrays):
        totals[i, chain] = w[chain]
    total = totals.sum(axis=0)
    total[~np.isfinite(D).all(axis=0)] = np.inf

    best = float(total.min())
    if not np.isfinite(best):
        return None
    near_best = np.flatnonzero(total <= best * (1.0 + 1e-12))
    root = int(ws.rng.choice(near_best))

    model: set[int] = {root}
    for i, chain in enumerate(chain_arrays):
        chain_set = set(int(q) for q in chain)
        model.update(_walk_path(P[i], root, chain_set))
    return np.fromiter(sorted(model), dtype=np.intp, count=len(model))


def _prune_chain(ws: _Workspace, v: int) -> None:
    """Remove leaf qubits of ``v``'s chain that serve no logical edge.

    A leaf may be dropped when the chain stays connected (always true for
    leaves of the chain's spanning structure) and every logical neighbor of
    ``v`` remains reachable through some other chain qubit.
    """
    chain = set(int(q) for q in ws.chains[v])  # type: ignore[union-attr]
    nbr_chains = [
        set(int(q) for q in ws.chains[u])
        for u in ws.source.neighbors(v)
        if u != v and ws.chains[u] is not None
    ]
    changed = True
    while changed and len(chain) > 1:
        changed = False
        for q in sorted(chain):
            inside = ws.adj_sets[q] & chain
            if len(inside) != 1:
                continue  # not a leaf of the chain
            rest = chain - {q}
            ok = True
            for nc in nbr_chains:
                if any(r in nc or (ws.adj_sets[r] & nc) for r in rest):
                    continue
                ok = False
                break
            if ok:
                chain.remove(q)
                changed = True
                break
    new = np.fromiter(sorted(chain), dtype=np.intp, count=len(chain))
    ws.remove_chain(v)
    ws.set_chain(v, new)


def find_embedding_cmr(
    source: nx.Graph,
    hardware: nx.Graph,
    params: CmrParams | None = None,
    rng: np.random.Generator | int | None = None,
    return_diagnostics: bool = False,
) -> Embedding | tuple[Embedding, CmrDiagnostics]:
    """Find a minor embedding of ``source`` into ``hardware`` with the CMR heuristic.

    Parameters
    ----------
    source:
        Logical graph with nodes exactly ``range(n)``.
    hardware:
        Hardware (working) graph; any hashable node ids.
    params:
        Algorithm knobs; see :class:`CmrParams`.
    rng:
        Seed or generator controlling vertex orders and tie-breaking.
    return_diagnostics:
        Also return a :class:`CmrDiagnostics` record.

    Raises
    ------
    EmbeddingError
        If no overlap-free embedding is found within ``max_tries`` restarts.
    """
    params = params or CmrParams()
    gen = as_rng(rng)
    n = source.number_of_nodes()
    if sorted(source.nodes()) != list(range(n)):
        raise EmbeddingError("source graph nodes must be exactly range(n)")
    if n == 0:
        emb = Embedding(())
        return (emb, CmrDiagnostics(0, 0, 0, 0)) if return_diagnostics else emb
    if hardware.number_of_nodes() < n:
        raise EmbeddingError(
            f"hardware has {hardware.number_of_nodes()} nodes < {n} logical vertices"
        )

    evaluations_done = 0

    for attempt in range(1, params.max_tries + 1):
        # Cold restart: a fresh workspace per try.  (Carrying congestion
        # history across tries was tested and *hurts* dense instances — the
        # stale mountains bias every subsequent try into the same wedge.)
        ws = _Workspace(source, hardware, gen)

        # Eviction cascade: every vertex starts queued; (re)placing a chain
        # queues whichever vertices it now conflicts with.  The queue drains
        # exactly when the last placement created no conflict anywhere —
        # i.e. when the embedding is overlap-free.
        queue: deque[int] = deque(int(v) for v in gen.permutation(n))
        queued = set(queue)
        budget = params.max_passes * n
        feasible = True
        processed = 0
        while queue and processed < budget:
            v = queue.popleft()
            queued.discard(v)
            processed += 1
            evaluations_done += 1
            ws.pass_index = processed // max(n, 1)  # anneal clock
            ws.remove_chain(v)
            model = _find_vertex_model(ws, v, params)
            if model is None:  # disconnected hardware
                feasible = False
                break
            for u in ws.set_chain(v, model):
                if u not in queued:
                    queue.append(u)
                    queued.add(u)

        if feasible and not queue and ws.overlap() == 0:
            if params.prune_chains:
                for v in range(n):
                    _prune_chain(ws, v)
            chains = tuple(
                tuple(ws.hw_nodes[int(q)] for q in ws.chains[v])  # type: ignore[union-attr]
                for v in range(n)
            )
            emb = Embedding(chains)
            if return_diagnostics:
                diag = CmrDiagnostics(
                    tries=attempt,
                    evaluations=evaluations_done,
                    num_physical=emb.num_physical,
                    max_chain_length=emb.max_chain_length,
                )
                return emb, diag
            return emb

    raise EmbeddingError(
        f"CMR failed to embed {n}-vertex graph into {hardware.number_of_nodes()}-node "
        f"hardware within {params.max_tries} tries"
    )


def cmr_embedding_ops(nh: int, eh: int, ng: int, eg: int) -> float:
    """Worst-case CMR operation count used by the paper's Stage-1 model.

    Fig. 6 charges ``EmbeddingOps = (EG + NG*log(NG)) * (2*EH) * NH * NG``:
    one node-weighted Dijkstra costs ``EG + NG log NG``; each of the ``EH``
    logical edges is routed from both endpoints; and the sweep repeats over
    the ``NH`` logical vertices with up to ``NG`` improvement iterations.
    ``log`` is the natural logarithm, matching the ASPEN evaluator.
    """
    if min(nh, eh, ng, eg) < 0:
        raise EmbeddingError("graph sizes must be non-negative")
    log_ng = float(np.log(ng)) if ng > 1 else 0.0
    return float((eg + ng * log_ng) * (2.0 * eh) * nh * ng)
