"""Decoding physical readouts back to logical spin configurations.

Readout of the QPU register yields one value per *physical* qubit; the
middleware must map each chain back to a single logical spin before the
Stage-3 post-processing can sort solutions (paper Secs. 2 and 3.2).  When
the qubits of a chain disagree — a *broken chain* — a repair strategy is
applied; majority vote is the standard choice.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["decode_samples", "chain_break_fraction"]

_STRATEGIES = ("majority", "discard")


def decode_samples(
    samples: np.ndarray,
    chains: Sequence[Sequence[int]],
    strategy: str = "majority",
) -> np.ndarray:
    """Map physical spin samples to logical spin samples.

    Parameters
    ----------
    samples:
        Array of shape ``(k, N)`` with entries in {-1, +1}; column ``p`` is
        physical spin ``p``.
    chains:
        ``chains[v]`` lists the physical indices of logical spin ``v``.
    strategy:
        ``"majority"`` — logical spin is the sign of the chain sum (exact
        ties broken toward +1); ``"discard"`` — samples containing any
        broken chain are dropped.

    Returns
    -------
    numpy.ndarray
        ``(k', n)`` int8 array of logical spins (``k' < k`` only for
        ``"discard"``).
    """
    if strategy not in _STRATEGIES:
        raise ValidationError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    S = np.asarray(samples)
    if S.ndim != 2:
        raise ValidationError(f"samples must be 2-D, got shape {S.shape}")
    k = S.shape[0]
    n = len(chains)
    logical = np.empty((k, n), dtype=np.int8)
    broken = np.zeros(k, dtype=bool)
    for v, chain in enumerate(chains):
        idx = np.asarray(list(chain), dtype=np.intp)
        if idx.size == 0:
            raise ValidationError(f"chain {v} is empty")
        if idx.size and (idx.min() < 0 or idx.max() >= S.shape[1]):
            raise ValidationError(f"chain {v} references a column outside the samples")
        block = S[:, idx]
        sums = block.sum(axis=1)
        logical[:, v] = np.where(sums >= 0, 1, -1).astype(np.int8)
        if strategy == "discard":
            broken |= np.abs(sums) != idx.size
    if strategy == "discard":
        return logical[~broken]
    return logical


def chain_break_fraction(samples: np.ndarray, chains: Sequence[Sequence[int]]) -> float:
    """Fraction of (sample, chain) pairs whose chain qubits disagree.

    A diagnostic for choosing the chain strength: values near zero indicate
    the ferromagnetic coupling dominates as the paper prescribes.
    """
    S = np.asarray(samples)
    if S.ndim != 2:
        raise ValidationError(f"samples must be 2-D, got shape {S.shape}")
    if not chains:
        return 0.0
    k = S.shape[0]
    if k == 0:
        return 0.0
    broken = 0
    for chain in chains:
        idx = np.asarray(list(chain), dtype=np.intp)
        sums = S[:, idx].sum(axis=1)
        broken += int(np.count_nonzero(np.abs(sums) != idx.size))
    return broken / (k * len(chains))
