"""Deterministic complete-graph (clique) minor embeddings into Chimera.

This is the polynomial scheme the paper attributes to Choi and to
Klymko-Sullivan-Humble (Sec. 2.2): embedding the complete graph ``K_n``
into ``C(m, m, L)`` with ``n <= L*m`` using one L-shaped chain per logical
vertex.  Writing ``v = L*a + b``, the chain of ``v`` consists of

* the *horizontal* qubits ``(a, c, u=1, k=b)`` for cells ``c = 0..a`` of row
  ``a`` (connected by inter-cell horizontal couplers), and
* the *vertical* qubits ``(r, a, u=0, k=b)`` for cells ``r = a..m-1`` of
  column ``a`` (connected by inter-cell vertical couplers),

joined at the diagonal cell ``(a, a)`` by an intra-cell coupler.  Any two
chains meet in exactly one unit cell with opposite orientations, where the
``K_{L,L}`` intra-cell coupling supplies the logical edge.  Every chain has
length ``m + 1`` and the embedding touches ``n * (m + 1)`` qubits — the
quadratic hardware growth ("a Chimera hardware with n^2 qubits",
paper Sec. 2.2) that motivates input-adaptive heuristics like CMR.
"""

from __future__ import annotations

import math

from ..exceptions import EmbeddingError
from ..hardware.chimera import ChimeraTopology
from .types import Embedding

__all__ = ["clique_embedding", "minimal_clique_topology", "clique_qubit_cost"]


def minimal_clique_topology(n: int, l: int = 4) -> ChimeraTopology:
    """Smallest square Chimera ``C(m, m, l)`` hosting ``K_n`` via :func:`clique_embedding`."""
    if n < 1:
        raise EmbeddingError(f"clique size must be >= 1, got {n}")
    m = max(1, math.ceil(n / l))
    return ChimeraTopology(m, m, l)


def clique_qubit_cost(n: int, l: int = 4) -> int:
    """Number of physical qubits the clique embedding of ``K_n`` consumes.

    Equals ``n * (m + 1)`` with ``m = ceil(n / l)`` — Theta(n^2 / l),
    the quadratic overhead the paper's Stage-1 model assumes.
    """
    m = max(1, math.ceil(n / l))
    return n * (m + 1)


def clique_embedding(n: int, topology: ChimeraTopology | None = None) -> Embedding:
    """Embed ``K_n`` into a (square) Chimera lattice deterministically.

    Parameters
    ----------
    n:
        Number of logical vertices.
    topology:
        Target lattice; defaults to the smallest square lattice that fits.
        Must satisfy ``n <= l * min(m, n_cells)`` and be square enough to
        host the diagonal construction (``m`` rows and ``>= m`` columns).

    Returns
    -------
    Embedding
        Chains over linear qubit indices; every chain has length ``m + 1``.

    Raises
    ------
    EmbeddingError
        If the lattice is too small for ``K_n``.
    """
    if n < 1:
        raise EmbeddingError(f"clique size must be >= 1, got {n}")
    topo = topology or minimal_clique_topology(n)
    l = topo.l
    blocks_needed = math.ceil(n / l)
    if blocks_needed > topo.m or blocks_needed > topo.n:
        raise EmbeddingError(
            f"K_{n} needs a {blocks_needed}x{blocks_needed} cell block; "
            f"C({topo.m}, {topo.n}, {l}) is too small"
        )
    m = blocks_needed  # construction lives in the top-left m x m block

    chains: list[tuple[int, ...]] = []
    for v in range(n):
        a, b = divmod(v, l)
        qubits = [topo.coord_to_linear((a, c, 1, b)) for c in range(a + 1)]
        qubits += [topo.coord_to_linear((r, a, 0, b)) for r in range(a, m)]
        chains.append(tuple(qubits))
    return Embedding(tuple(chains))
