"""Minor embedding: the classical-quantum translation layer.

"The translation between these two models is signified by the map of the
logical Hamiltonian to the physical hardware, i.e., minor embedding"
(paper Sec. 3.2).  This package implements that translation end to end:

* :class:`Embedding` / :func:`verify_embedding` — the data type and the
  formal validity check;
* :func:`find_embedding_cmr` — the Cai-Macready-Roy randomized heuristic the
  paper's Stage-1 model is built on;
* :func:`clique_embedding` — the deterministic complete-graph construction
  (quadratic qubit cost);
* :func:`find_subgraph_embedding` — exact unit-chain search for small
  instances / offline tables;
* :func:`embed_ising` / :func:`decode_samples` — parameter setting onto the
  hardware and chain decoding back to logical spins.
"""

from .clique import clique_embedding, clique_qubit_cost, minimal_clique_topology
from .cmr import CmrDiagnostics, CmrParams, cmr_embedding_ops, find_embedding_cmr
from .exhaustive import find_subgraph_embedding, subgraph_embedding_exists
from .parallel import ParallelDiagnostics, find_embedding_parallel
from .parameters import EmbeddedIsing, default_chain_strength, embed_ising
from .types import Embedding, is_valid_embedding, verify_embedding
from .unembedding import chain_break_fraction, decode_samples

__all__ = [
    "Embedding",
    "verify_embedding",
    "is_valid_embedding",
    "CmrParams",
    "CmrDiagnostics",
    "find_embedding_cmr",
    "cmr_embedding_ops",
    "clique_embedding",
    "clique_qubit_cost",
    "minimal_clique_topology",
    "find_embedding_parallel",
    "ParallelDiagnostics",
    "find_subgraph_embedding",
    "subgraph_embedding_exists",
    "EmbeddedIsing",
    "embed_ising",
    "default_chain_strength",
    "decode_samples",
    "chain_break_fraction",
]
