"""Parameter setting for embedded Ising models.

After minor embedding, "the corresponding parameters for the embedded Ising
model must be set" (paper Sec. 2.2): the logical field ``h_i`` is divided
across the qubits of chain ``i``, each logical coupling ``J_ij`` is divided
across the hardware couplers joining chains ``i`` and ``j``, and "one
additional coupling strength must be introduced to account for the
interactions between qubits forming embedded subtrees … typically chosen to
be much larger than neighboring elements to ensure all qubits within a
subgraph behave collectively".  In the library's computational sign
convention a *negative* intra-chain coupling rewards aligned spins, so the
chain coupler value is ``-chain_strength``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import EmbeddingError, ValidationError
from ..qubo import IsingModel
from .types import Embedding

__all__ = ["EmbeddedIsing", "default_chain_strength", "embed_ising"]


def default_chain_strength(logical: IsingModel, factor: float = 2.0) -> float:
    """The paper's "much larger than neighboring elements" heuristic.

    Returns ``factor * max(max|h|, max|J|)`` with a floor of ``factor`` for
    all-zero problems.
    """
    if factor <= 0:
        raise ValidationError(f"factor must be positive, got {factor}")
    base = max(logical.max_abs_h, logical.max_abs_j, 1.0)
    return factor * base


@dataclass(frozen=True)
class EmbeddedIsing:
    """A logical Ising model mapped onto hardware.

    Attributes
    ----------
    logical:
        The original problem.
    physical:
        The programmed model over dense hardware indices
        ``0..num_physical_spins-1`` (unused qubits carry zero parameters).
    embedding:
        The minor embedding used.
    chain_strength:
        Magnitude of the ferromagnetic intra-chain coupling.
    hardware_nodes:
        ``hardware_nodes[p]`` is the hardware-graph node id of dense
        physical index ``p``.
    """

    logical: IsingModel
    physical: IsingModel
    embedding: Embedding
    chain_strength: float
    hardware_nodes: tuple[int, ...]

    @property
    def num_physical_spins(self) -> int:
        return self.physical.num_spins

    def dense_chains(self) -> tuple[tuple[int, ...], ...]:
        """Chains re-indexed into the dense physical spin indices."""
        pos = {q: p for p, q in enumerate(self.hardware_nodes)}
        return tuple(tuple(pos[q] for q in chain) for chain in self.embedding.chains)

    def unembed(self, samples: np.ndarray, break_strategy: str = "majority") -> np.ndarray:
        """Decode physical samples back to logical spins.

        See :func:`repro.embedding.unembedding.decode_samples`.
        """
        from .unembedding import decode_samples

        return decode_samples(samples, self.dense_chains(), strategy=break_strategy)


def embed_ising(
    logical: IsingModel,
    embedding: Embedding,
    hardware: nx.Graph,
    chain_strength: float | None = None,
) -> EmbeddedIsing:
    """Set the parameters of the embedded Ising model.

    Parameters
    ----------
    logical:
        Logical Ising model over ``0..n-1``.
    embedding:
        A valid minor embedding of the logical interaction graph into
        ``hardware`` (validity is *assumed*; call
        :func:`repro.embedding.verify_embedding` first if unsure — but
        missing inter-chain couplers are detected here and raised).
    hardware:
        The working hardware graph.
    chain_strength:
        Magnitude of the intra-chain ferromagnetic coupling; defaults to
        :func:`default_chain_strength`.

    Returns
    -------
    EmbeddedIsing
        With ``physical`` defined over dense indices of the *used plus
        remaining* hardware nodes (full hardware vector, so samplers see the
        true device size).
    """
    n = logical.num_spins
    if embedding.num_logical != n:
        raise EmbeddingError(
            f"embedding has {embedding.num_logical} chains, logical model has {n} spins"
        )
    if chain_strength is None:
        chain_strength = default_chain_strength(logical)
    if chain_strength < 0:
        raise ValidationError(f"chain_strength must be non-negative, got {chain_strength}")

    hw_nodes = tuple(sorted(hardware.nodes()))
    pos = {q: p for p, q in enumerate(hw_nodes)}
    N = len(hw_nodes)

    h_phys = np.zeros(N, dtype=np.float64)
    J_phys: dict[tuple[int, int], float] = {}

    def add_j(p: int, q: int, v: float) -> None:
        key = (min(p, q), max(p, q))
        J_phys[key] = J_phys.get(key, 0.0) + v

    # Fields: spread h_i uniformly across chain i.
    for v, chain in enumerate(embedding.chains):
        if not chain:
            raise EmbeddingError(f"chain of logical vertex {v} is empty")
        share = logical.h[v] / len(chain)
        for q in chain:
            if q not in pos:
                raise EmbeddingError(f"chain of vertex {v} uses node {q} not in hardware")
            h_phys[pos[q]] += share

    # Intra-chain ferromagnetic couplers on every hardware edge inside a chain.
    for v, chain in enumerate(embedding.chains):
        cs = set(chain)
        for q in chain:
            for r in hardware.neighbors(q):
                if r in cs and q < r:
                    add_j(pos[q], pos[r], -float(chain_strength))

    # Logical couplings: spread J_ij uniformly across available couplers.
    for i, j, val in logical.iter_couplings():
        ci, cj = set(embedding.chains[i]), set(embedding.chains[j])
        couplers = [
            (pos[p], pos[q])
            for p in ci
            for q in hardware.neighbors(p)
            if q in cj
        ]
        if not couplers:
            raise EmbeddingError(
                f"no hardware coupler realizes logical edge ({i}, {j}); invalid embedding"
            )
        share = val / len(couplers)
        for p, q in couplers:
            add_j(p, q, share)

    physical = IsingModel(h_phys, J_phys, offset=logical.offset)
    return EmbeddedIsing(
        logical=logical,
        physical=physical,
        embedding=embedding,
        chain_strength=float(chain_strength),
        hardware_nodes=hw_nodes,
    )
