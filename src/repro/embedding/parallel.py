"""Parallel minor-embedding search: the paper's future-work direction.

Section 4 closes with: "it must also be considered that our models have not
exploited more sophisticated host systems, e.g., HPC … and there may be
additional parallel strategies that can accelerate the pre-processing
stage."  The CMR heuristic's random restarts are embarrassingly parallel —
per-try success is independent across seeds — so launching tries across
worker processes and taking the first success turns a geometric(p) retry
count into a near-min-of-k race: expected time-to-first-success drops
roughly linearly in the worker count while any single try stays serial.

Work is dispatched in *waves* of one small-budget search per worker; the
pool is torn down as soon as a wave returns a success, so losers never run
more than one wave past the winner.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, replace

import networkx as nx
import numpy as np

from .._rng import as_rng
from ..exceptions import EmbeddingError
from .cmr import CmrParams, find_embedding_cmr
from .types import Embedding

__all__ = ["ParallelDiagnostics", "find_embedding_parallel"]


@dataclass(frozen=True)
class ParallelDiagnostics:
    """Statistics from a parallel embedding search."""

    num_workers: int
    waves: int
    tries_launched: int


def _worker_search(payload: tuple) -> tuple[tuple[tuple[int, ...], ...], ...] | None:
    """Run one small-budget CMR search in a worker process.

    Receives plain tuples (edge lists and ints) so the payload pickles
    cheaply; returns the chains tuple or ``None`` on failure.
    """
    (n, source_edges, hw_nodes, hw_edges, params, seed) = payload
    source = nx.Graph()
    source.add_nodes_from(range(n))
    source.add_edges_from(source_edges)
    hardware = nx.Graph()
    hardware.add_nodes_from(hw_nodes)
    hardware.add_edges_from(hw_edges)
    try:
        emb = find_embedding_cmr(source, hardware, params=params, rng=seed)
    except EmbeddingError:
        return None
    return emb.chains


def find_embedding_parallel(
    source: nx.Graph,
    hardware: nx.Graph,
    params: CmrParams | None = None,
    num_workers: int | None = None,
    tries_per_wave: int = 2,
    rng: np.random.Generator | int | None = None,
    return_diagnostics: bool = False,
) -> Embedding | tuple[Embedding, ParallelDiagnostics]:
    """Race independent CMR searches across worker processes.

    Parameters
    ----------
    source, hardware:
        As for :func:`repro.embedding.find_embedding_cmr`.
    params:
        Per-search knobs.  ``params.max_tries`` is the *total* try budget
        across all workers and waves; each dispatched search runs
        ``tries_per_wave`` tries.
    num_workers:
        Worker processes (default: ``min(cpu_count, 8)``).
    tries_per_wave:
        Tries per dispatched search; small values minimize wasted work
        after a win, larger values amortize process-dispatch overhead.
    rng:
        Seed for deriving independent worker seed streams.

    Raises
    ------
    EmbeddingError
        If the total try budget is exhausted without a success.
    """
    params = params or CmrParams()
    if tries_per_wave < 1:
        raise EmbeddingError("tries_per_wave must be >= 1")
    n = source.number_of_nodes()
    if sorted(source.nodes()) != list(range(n)):
        raise EmbeddingError("source graph nodes must be exactly range(n)")
    if num_workers is None:
        num_workers = min(os.cpu_count() or 1, 8)
    num_workers = max(1, num_workers)

    gen = as_rng(rng)
    search_params = replace(params, max_tries=tries_per_wave)
    total_budget = params.max_tries
    source_edges = tuple((int(u), int(v)) for u, v in source.edges())
    hw_nodes = tuple(hardware.nodes())
    hw_edges = tuple(hardware.edges())

    launched = 0
    waves = 0
    winner: tuple | None = None

    with concurrent.futures.ProcessPoolExecutor(max_workers=num_workers) as pool:
        while winner is None and launched < total_budget:
            waves += 1
            wave_size = min(num_workers, max(1, (total_budget - launched) // tries_per_wave) or 1)
            futures = []
            for _ in range(wave_size):
                seed = int(gen.integers(0, 2**63 - 1))
                payload = (n, source_edges, hw_nodes, hw_edges, search_params, seed)
                futures.append(pool.submit(_worker_search, payload))
                launched += tries_per_wave
            for fut in concurrent.futures.as_completed(futures):
                chains = fut.result()
                if chains is not None:
                    winner = chains
                    break
            if winner is not None:
                for fut in futures:
                    fut.cancel()

    if winner is None:
        raise EmbeddingError(
            f"parallel CMR failed to embed {n}-vertex graph within "
            f"{total_budget} total tries across {num_workers} workers"
        )
    emb = Embedding(winner)
    if return_diagnostics:
        return emb, ParallelDiagnostics(
            num_workers=num_workers, waves=waves, tries_launched=launched
        )
    return emb
