"""Minor-embedding data types and the formal validity check.

A minor embedding of a logical graph ``G`` into a hardware graph ``H`` maps
each vertex of ``G`` to a *vertex model* (chain) — a connected subtree of
``H`` — such that chains are pairwise disjoint and every edge of ``G`` is
realized by at least one hardware coupler between the corresponding chains
(paper Sec. 2.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import networkx as nx

from ..exceptions import InvalidEmbeddingError

__all__ = ["Embedding", "verify_embedding", "is_valid_embedding"]


@dataclass(frozen=True)
class Embedding:
    """An assignment of logical vertices ``0..n-1`` to hardware chains.

    ``chains[v]`` is the tuple of hardware-node ids forming the vertex model
    of logical vertex ``v``.  The container itself enforces only shape;
    validity against a particular ``(G, H)`` pair is checked by
    :func:`verify_embedding`.
    """

    chains: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        normalized = tuple(tuple(sorted(set(int(q) for q in c))) for c in self.chains)
        object.__setattr__(self, "chains", normalized)

    @classmethod
    def from_dict(cls, mapping: Mapping[int, Iterable[int]]) -> "Embedding":
        """Build from ``{logical_vertex: iterable_of_hardware_nodes}``.

        Keys must be exactly ``range(n)``.
        """
        n = len(mapping)
        if sorted(mapping) != list(range(n)):
            raise InvalidEmbeddingError(
                f"embedding keys must be range({n}), got {sorted(mapping)[:8]}..."
            )
        return cls(tuple(tuple(mapping[v]) for v in range(n)))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_logical(self) -> int:
        """Number of logical vertices."""
        return len(self.chains)

    @property
    def num_physical(self) -> int:
        """Total number of hardware qubits used (with multiplicity collapsed)."""
        return len(self.used_qubits())

    def chain_lengths(self) -> list[int]:
        """Length of each chain, indexed by logical vertex."""
        return [len(c) for c in self.chains]

    @property
    def max_chain_length(self) -> int:
        """Longest chain (0 for an empty embedding)."""
        return max((len(c) for c in self.chains), default=0)

    def used_qubits(self) -> set[int]:
        """Union of all chains."""
        out: set[int] = set()
        for c in self.chains:
            out.update(c)
        return out

    def overlap_count(self) -> int:
        """Number of hardware qubits claimed by more than one chain.

        Zero for a valid embedding; the CMR heuristic drives this to zero.
        """
        seen: set[int] = set()
        dup: set[int] = set()
        for c in self.chains:
            for q in c:
                (dup if q in seen else seen).add(q)
        return len(dup)

    def physical_to_logical(self) -> dict[int, int]:
        """Inverse map ``{hardware_node: logical_vertex}``.

        Raises :class:`InvalidEmbeddingError` if chains overlap.
        """
        inv: dict[int, int] = {}
        for v, chain in enumerate(self.chains):
            for q in chain:
                if q in inv:
                    raise InvalidEmbeddingError(
                        f"hardware node {q} belongs to chains of both {inv[q]} and {v}"
                    )
                inv[q] = v
        return inv

    def as_dict(self) -> dict[int, tuple[int, ...]]:
        """Export as ``{logical_vertex: chain_tuple}``."""
        return {v: c for v, c in enumerate(self.chains)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Embedding(num_logical={self.num_logical}, num_physical={self.num_physical}, "
            f"max_chain_length={self.max_chain_length})"
        )


def verify_embedding(
    embedding: Embedding,
    source: nx.Graph,
    hardware: nx.Graph,
) -> None:
    """Check the minor-embedding definition; raise :class:`InvalidEmbeddingError` on failure.

    The four conditions checked (paper Sec. 2.2):

    1. every logical vertex has a non-empty chain of valid hardware nodes;
    2. chains are pairwise disjoint;
    3. every chain induces a *connected* subgraph of the hardware graph;
    4. every logical edge maps to at least one hardware edge between the
       two chains.
    """
    n = source.number_of_nodes()
    if sorted(source.nodes()) != list(range(n)):
        raise InvalidEmbeddingError("source graph nodes must be exactly range(n)")
    if embedding.num_logical != n:
        raise InvalidEmbeddingError(
            f"embedding has {embedding.num_logical} chains but source has {n} vertices"
        )

    hw_nodes = set(hardware.nodes())
    for v, chain in enumerate(embedding.chains):
        if not chain:
            raise InvalidEmbeddingError(f"logical vertex {v} has an empty chain")
        missing = [q for q in chain if q not in hw_nodes]
        if missing:
            raise InvalidEmbeddingError(
                f"chain of vertex {v} uses nodes absent from hardware: {missing[:4]}"
            )

    inv = embedding.physical_to_logical()  # raises on overlap (condition 2)

    for v, chain in enumerate(embedding.chains):
        if len(chain) > 1:
            sub = hardware.subgraph(chain)
            if not nx.is_connected(sub):
                raise InvalidEmbeddingError(f"chain of vertex {v} is disconnected: {chain}")

    for u, v in source.edges():
        if u == v:
            continue
        cu, cv = set(embedding.chains[u]), set(embedding.chains[v])
        if not any((q in cv) for p in cu for q in hardware.neighbors(p)):
            raise InvalidEmbeddingError(
                f"logical edge ({u}, {v}) is not realized by any hardware coupler"
            )
    del inv


def is_valid_embedding(embedding: Embedding, source: nx.Graph, hardware: nx.Graph) -> bool:
    """Boolean wrapper around :func:`verify_embedding`."""
    try:
        verify_embedding(embedding, source, hardware)
    except InvalidEmbeddingError:
        return False
    return True
