"""Pluggable queue disciplines for the contended annealer resource.

The contention simulator (:mod:`repro.contention.simulate`) queues many
concurrent sessions on the single QPU :class:`~repro.runtime.des.Resource`.
*Which* waiter gets the next grant is the queue discipline — a pure,
stateless strategy object mirroring :class:`repro.distributed.scheduler`'s
``Scheduler`` protocol: the ``queue_policy`` study axis carries the
discipline's name, and :func:`get_queue_policy` resolves it.

``select`` receives the resource's :class:`~repro.runtime.des.Waiter`
tuple *in deterministic arrival order* ``(requested_at, seq)`` (the
resource's documented FIFO guarantee) and returns the index to grant.  A
discipline must be a pure function of that tuple, so the byte-determinism
of contended studies extends to every policy.

Disciplines
-----------
``fifo``
    First come, first served: always index 0, the earliest arrival.
``priority``
    Priority by problem size: the waiter with the *smallest* service
    demand (the request's ``tag``) first, ties to the earlier arrival —
    shortest-job-first, which trades p99 fairness for mean latency.
``round-robin``
    Processor sharing approximated by time slicing: grants are FIFO, but
    sessions split their quantum execution into :data:`ROUND_ROBIN_QUANTA`
    slices and re-queue between slices, paying the processor programming
    cost on each re-acquisition (the realistic cost of pre-empting an
    annealer).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..runtime.des import Waiter

__all__ = [
    "DEFAULT_QUEUE_POLICY",
    "QUEUE_POLICY_NAMES",
    "ROUND_ROBIN_QUANTA",
    "FifoDiscipline",
    "PriorityBySizeDiscipline",
    "QueueDiscipline",
    "RoundRobinDiscipline",
    "available_queue_policies",
    "get_queue_policy",
]

#: How many slices a ``round-robin`` session splits its anneal cycle into.
#: Fixed by contract: it shapes the contention result columns, so changing
#: it is an artifact schema change (like ``SIM_WORKERS``).
ROUND_ROBIN_QUANTA = 4

#: Queue-policy names live in spec JSON and in the fixed-width
#: ``queue_policy`` artifact column.
MAX_QUEUE_POLICY_NAME_LENGTH = 16


@runtime_checkable
class QueueDiscipline(Protocol):
    """The policy contract: pick the next waiter to grant the annealer.

    ``select`` must be a pure function of the waiter tuple — the resource
    calls it on every release, and byte-stable artifacts depend on the
    pick being reproducible.  ``waiting`` is always non-empty and in
    deterministic arrival order; ``quanta`` is how many slices a session
    splits its anneal into under this policy (1 = run to completion).
    """

    name: str
    quanta: int

    def select(self, waiting: Sequence["Waiter"]) -> int:
        """Return the index (into ``waiting``) of the waiter to grant."""
        ...


class FifoDiscipline:
    """First come, first served: the earliest ``(requested_at, seq)`` entry."""

    name = "fifo"
    quanta = 1

    def select(self, waiting: Sequence["Waiter"]) -> int:
        return 0


class PriorityBySizeDiscipline:
    """Smallest service demand (the request ``tag``) first, ties FIFO."""

    name = "priority"
    quanta = 1

    def select(self, waiting: Sequence["Waiter"]) -> int:
        return min(range(len(waiting)), key=lambda i: (waiting[i].tag, waiting[i].seq))


class RoundRobinDiscipline:
    """FIFO grants with time-sliced sessions (processor-sharing approximation)."""

    name = "round-robin"
    quanta = ROUND_ROBIN_QUANTA

    def select(self, waiting: Sequence["Waiter"]) -> int:
        return 0


_DISCIPLINES: dict[str, QueueDiscipline] = {
    d.name: d
    for d in (FifoDiscipline(), PriorityBySizeDiscipline(), RoundRobinDiscipline())
}

QUEUE_POLICY_NAMES = tuple(_DISCIPLINES)
DEFAULT_QUEUE_POLICY = "fifo"


def available_queue_policies() -> tuple[str, ...]:
    """Registered discipline names, in registration order."""
    return QUEUE_POLICY_NAMES


def get_queue_policy(name: str) -> QueueDiscipline:
    """Look up a discipline by name (the ``queue_policy`` axis values)."""
    try:
        return _DISCIPLINES[name]
    except KeyError:
        raise ValidationError(
            f"unknown queue policy {name!r}; available: {QUEUE_POLICY_NAMES}"
        ) from None
