"""Contended multi-session simulation of the split-execution pipeline.

This is the paper's Fig. 1/Fig. 2 architecture under production traffic:
N concurrent sessions (and an optional open Poisson arrival stream)
contend for the single annealer :class:`~repro.runtime.des.Resource`
under a pluggable queue discipline, and the simulation reports latency
percentiles, mean queue wait, and annealer utilization.

Determinism
-----------
Every random draw — request sizes, think times, inter-arrival gaps,
service factors — is made *before* the simulation starts, in one fixed
order, from the caller-supplied generator.  The event loop itself is
deterministic (heap tiebreaks, resource FIFO guarantee), so a workload
simulated from ``spawn_stream(seed, CONTENTION_DOMAIN, row)`` produces
bit-identical metrics on any worker, in any shard order, on any
topology.  :func:`contention_columns` packages exactly that contract for
the study executor: columns are a pure function of ``(config, lps, row,
seed)``, keyed on each row's *global* grid index, so any shard slice
yields the same bytes as the corresponding full-run rows.

Workload model
--------------
* **Closed population** — ``sessions`` clients, each issuing
  :data:`SESSION_REQUESTS` requests separated by exponential think times
  with mean ``think_factor x`` the mean uncontended request latency.
* **Open stream** — when ``arrival_rate`` > 0, a Poisson process at rate
  λ injects :data:`OPEN_REQUESTS` additional one-shot requests.
* **Size mix** — each request draws one of the supplied
  :class:`~repro.runtime.layers.RequestProfile` variants (the executor
  builds them at :data:`SIZE_SPREAD` multiples of the row's LPS), which
  is what makes size-aware disciplines distinguishable from FIFO.
* **Service law** — ``deterministic`` uses the profile durations as-is
  (an M/D/1-like server); ``exponential`` scales each request's QPU
  occupancy by an Exp(1) factor (M/M/1-like), which is what the analytic
  cross-check module compares against.

The workload constants (:data:`SESSION_REQUESTS`, :data:`OPEN_REQUESTS`,
:data:`SIZE_SPREAD`, ...) are fixed by contract: they are part of the
artifact's meaning, like ``SIM_WORKERS`` for the ``sched_*`` columns, and
changing them is an artifact schema change.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from .._rng import spawn_stream
from ..exceptions import ValidationError
from ..runtime.des import Simulator
from ..runtime.layers import RequestProfile
from ..runtime.trace import Trace
from .disciplines import DEFAULT_QUEUE_POLICY, QUEUE_POLICY_NAMES, get_queue_policy

__all__ = [
    "CONTENTION_COLUMNS",
    "CONTENTION_DOMAIN",
    "OPEN_REQUESTS",
    "SESSION_REQUESTS",
    "SIZE_SPREAD",
    "ContentionMetrics",
    "ContentionWorkload",
    "contention_columns",
    "simulate_contention",
]

#: Spawn-key domain for per-row contention streams.  MC streams use one
#: key component (``spawn_stream(seed, shard)``), backoff uses
#: ``(seed, 0xB0FF, shard)``; contention uses ``(seed, CONTENTION_DOMAIN,
#: row)`` — a distinct two-component family that can never collide with
#: either (see ``repro._rng``).
CONTENTION_DOMAIN = 0xC047

#: Requests each closed-population session issues.
SESSION_REQUESTS = 32

#: Requests the open Poisson stream injects when ``arrival_rate`` > 0.
OPEN_REQUESTS = 128

#: LPS multipliers of the request-size mix the executor simulates; the
#: spread is what gives size-sensitive disciplines something to reorder.
SIZE_SPREAD = (0.5, 1.0, 2.0)

#: The result-table columns :func:`contention_columns` fills.
CONTENTION_COLUMNS = (
    "latency_p50_s",
    "latency_p95_s",
    "latency_p99_s",
    "queue_wait_s",
    "utilization",
)

_SERVICE_LAWS = ("deterministic", "exponential")


@dataclass(frozen=True)
class ContentionWorkload:
    """One contended traffic pattern: who arrives, how often, who's next.

    ``sessions`` is the closed population (0 = open traffic only);
    ``arrival_rate`` the open Poisson rate in requests/s (0 = closed
    only); at least one source must produce traffic.  ``queue_policy``
    names the discipline (:mod:`repro.contention.disciplines`).
    """

    sessions: int = 1
    arrival_rate: float = 0.0
    queue_policy: str = DEFAULT_QUEUE_POLICY
    session_requests: int = SESSION_REQUESTS
    open_requests: int = OPEN_REQUESTS
    think_factor: float = 1.0
    service: str = "deterministic"

    def __post_init__(self) -> None:
        if isinstance(self.sessions, bool) or self.sessions != int(self.sessions):
            raise ValidationError(f"sessions must be an integer, got {self.sessions!r}")
        if self.sessions < 0:
            raise ValidationError(f"sessions must be >= 0, got {self.sessions}")
        rate = float(self.arrival_rate)
        if not np.isfinite(rate) or rate < 0:
            raise ValidationError(
                f"arrival_rate must be a finite non-negative rate, got {self.arrival_rate!r}"
            )
        if self.sessions == 0 and rate == 0.0:
            raise ValidationError(
                "empty workload: sessions=0 and arrival_rate=0 produce no traffic"
            )
        if self.queue_policy not in QUEUE_POLICY_NAMES:
            raise ValidationError(
                f"unknown queue policy {self.queue_policy!r}; "
                f"available: {QUEUE_POLICY_NAMES}"
            )
        if self.session_requests < 1 or self.open_requests < 1:
            raise ValidationError("session_requests and open_requests must be >= 1")
        if self.think_factor < 0:
            raise ValidationError(f"think_factor must be >= 0, got {self.think_factor}")
        if self.service not in _SERVICE_LAWS:
            raise ValidationError(
                f"service must be one of {_SERVICE_LAWS}, got {self.service!r}"
            )

    @property
    def num_requests(self) -> int:
        """Total requests the workload generates."""
        closed = self.sessions * self.session_requests
        return closed + (self.open_requests if float(self.arrival_rate) > 0 else 0)


@dataclass(frozen=True)
class ContentionMetrics:
    """Aggregated outcome of one contended simulation."""

    requests: int
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    mean_latency_s: float
    mean_queue_wait_s: float
    utilization: float
    busy_s: float
    makespan_s: float


@dataclass(frozen=True)
class _Plan:
    """Every random draw of a workload, pre-drawn in one fixed order."""

    size_index: np.ndarray  # per request: index into the profile mix
    think_s: np.ndarray  # per closed request: think gap before issuing
    inter_arrival_s: np.ndarray  # per open request: Poisson gap
    service_factor: np.ndarray  # per request: QPU occupancy scale


def _draw_plan(
    workload: ContentionWorkload,
    profiles: Sequence[RequestProfile],
    rng: np.random.Generator,
) -> _Plan:
    n_closed = workload.sessions * workload.session_requests
    n_open = workload.open_requests if float(workload.arrival_rate) > 0 else 0
    n = n_closed + n_open
    size_index = rng.integers(0, len(profiles), size=n)
    think_mean = workload.think_factor * float(
        np.mean([p.total_service_time for p in profiles])
    )
    think_s = rng.exponential(1.0, size=n_closed) * think_mean
    inter_arrival_s = (
        rng.exponential(1.0 / float(workload.arrival_rate), size=n_open)
        if n_open
        else np.zeros(0)
    )
    if workload.service == "exponential":
        service_factor = rng.exponential(1.0, size=n)
    else:
        service_factor = np.ones(n)
    return _Plan(size_index, think_s, inter_arrival_s, service_factor)


def _request(
    sim: Simulator,
    qpu,
    profile: RequestProfile,
    scale: float,
    quanta: int,
    session: int,
    index: int,
    latencies: np.ndarray,
    waits: np.ndarray,
    busy: list,
    trace: Trace | None,
):
    """One Fig.-2 request under contention: pre-stages, QPU quanta, post."""
    t0 = sim.now
    hop = profile.network_latency + profile.payload_transfer
    if hop > 0:
        start = sim.now
        yield sim.timeout(hop)
        if trace is not None:
            trace.record("network", "push_problem", start, sim.now, session)

    start = sim.now
    yield sim.timeout(profile.ising_generation)
    if trace is not None:
        trace.record("sw", "generate_ising", start, sim.now, session)

    start = sim.now
    yield sim.timeout(profile.embedding)
    if trace is not None:
        trace.record("mw", "minor_embedding", start, sim.now, session)

    init_s = profile.processor_init * scale
    exec_slice_s = profile.quantum_execution * scale / quanta
    # The priority tag is the request's total QPU demand: what a
    # size-aware discipline orders the queue by.
    demand = init_s + profile.quantum_execution * scale
    total_wait = 0.0
    for _ in range(quanta):
        requested = sim.now
        yield qpu.request(tag=demand)
        wait = sim.now - requested
        total_wait += wait
        try:
            start = sim.now
            yield sim.timeout(init_s)
            if trace is not None:
                trace.record("qhw", "program_processor", start, sim.now, session, wait)
            start = sim.now
            yield sim.timeout(exec_slice_s)
            if trace is not None:
                trace.record("qhw", "anneal_and_readout", start, sim.now, session)
        finally:
            qpu.release()
        busy[0] += init_s + exec_slice_s

    start = sim.now
    yield sim.timeout(profile.postprocessing)
    if trace is not None:
        trace.record("mw", "postprocess_sort", start, sim.now, session)

    if hop > 0:
        start = sim.now
        yield sim.timeout(hop)
        if trace is not None:
            trace.record("network", "return_solution", start, sim.now, session)

    latencies[index] = sim.now - t0
    waits[index] = total_wait


def simulate_contention(
    profiles: Sequence[RequestProfile],
    workload: ContentionWorkload,
    rng: np.random.Generator,
    trace: Trace | None = None,
) -> ContentionMetrics:
    """Run one contended workload; return its aggregated metrics.

    ``profiles`` is the request-size mix (each request draws one
    uniformly); ``rng`` supplies every draw (pre-drawn — see module doc).
    Pass a :class:`~repro.runtime.trace.Trace` to capture per-session
    spans (with ``wait_s`` attribution) for auditing.
    """
    profiles = tuple(profiles)
    if not profiles:
        raise ValidationError("simulate_contention needs at least one profile")
    discipline = get_queue_policy(workload.queue_policy)
    plan = _draw_plan(workload, profiles, rng)

    n_closed = workload.sessions * workload.session_requests
    n = workload.num_requests
    latencies = np.zeros(n)
    waits = np.zeros(n)
    busy = [0.0]

    sim = Simulator()
    qpu = sim.resource(capacity=1, name="qpu", select=discipline.select)

    def closed_session(j: int):
        for r in range(workload.session_requests):
            i = j * workload.session_requests + r
            if plan.think_s[i] > 0:
                yield sim.timeout(float(plan.think_s[i]))
            yield sim.process(
                _request(
                    sim, qpu, profiles[plan.size_index[i]],
                    float(plan.service_factor[i]), discipline.quanta,
                    j, i, latencies, waits, busy, trace,
                )
            )

    def open_arrivals():
        for k in range(len(plan.inter_arrival_s)):
            i = n_closed + k
            yield sim.timeout(float(plan.inter_arrival_s[k]))
            sim.process(
                _request(
                    sim, qpu, profiles[plan.size_index[i]],
                    float(plan.service_factor[i]), discipline.quanta,
                    workload.sessions + k, i, latencies, waits, busy, trace,
                )
            )

    for j in range(workload.sessions):
        sim.process(closed_session(j))
    if len(plan.inter_arrival_s):
        sim.process(open_arrivals())
    makespan = sim.run()

    p50, p95, p99 = np.percentile(latencies, (50.0, 95.0, 99.0))
    return ContentionMetrics(
        requests=n,
        latency_p50_s=float(p50),
        latency_p95_s=float(p95),
        latency_p99_s=float(p99),
        mean_latency_s=float(np.mean(latencies)),
        mean_queue_wait_s=float(np.mean(waits)),
        utilization=float(busy[0] / makespan) if makespan > 0 else 0.0,
        busy_s=float(busy[0]),
        makespan_s=float(makespan),
    )


def _scaled_lps(lps: int, multiplier: float) -> int:
    return max(int(round(lps * multiplier)), 0)


def contention_columns(
    config: Mapping,
    lps_run: Sequence[int],
    row_indices: Sequence[int],
    seed: int,
) -> dict[str, np.ndarray]:
    """The contention result columns for one config block's LPS run.

    A pure function of ``(config, lps, global row index, seed)``: row
    ``row_indices[i]`` draws from ``spawn_stream(seed, CONTENTION_DOMAIN,
    row_indices[i])`` regardless of which shard, worker, or topology
    evaluates it — the per-row keying that keeps shard slices
    byte-identical to full runs.

    At the uncontended operating point — one closed session and no open
    arrivals, the default every non-contended study runs at — the columns
    come back NaN: contention metrics mean "simulated under contended
    traffic", and a lone session never contends.
    """
    from ..backends.closed_form import model_for_config

    if int(config["sessions"]) == 1 and float(config["arrival_rate"]) == 0.0:
        return {name: np.full(len(lps_run), np.nan) for name in CONTENTION_COLUMNS}

    workload = ContentionWorkload(
        sessions=int(config["sessions"]),
        arrival_rate=float(config["arrival_rate"]),
        queue_policy=str(config["queue_policy"]),
    )
    model = model_for_config(config)
    accuracy = float(config["accuracy"])
    success = float(config["success"])
    out = {name: np.empty(len(lps_run)) for name in CONTENTION_COLUMNS}
    profile_cache: dict[int, tuple[RequestProfile, ...]] = {}
    for i, (lps, row) in enumerate(zip(lps_run, row_indices)):
        lps = int(lps)
        profiles = profile_cache.get(lps)
        if profiles is None:
            profiles = tuple(
                model.request_profile(_scaled_lps(lps, m), accuracy, success)
                for m in SIZE_SPREAD
            )
            profile_cache[lps] = profiles
        metrics = simulate_contention(
            profiles, workload, spawn_stream(seed, CONTENTION_DOMAIN, int(row))
        )
        out["latency_p50_s"][i] = metrics.latency_p50_s
        out["latency_p95_s"][i] = metrics.latency_p95_s
        out["latency_p99_s"][i] = metrics.latency_p99_s
        out["queue_wait_s"][i] = metrics.mean_queue_wait_s
        out["utilization"][i] = metrics.utilization
    return out
