"""Analytic queueing predictions cross-checking the contention simulator.

The trust argument for the contended runtime mirrors the backend
differential suite: an independent realization — here, classical queueing
theory — predicts the same observables within a *declared* tolerance
envelope.  A single-server queue fed by Poisson arrivals at rate λ with
mean service time s has utilization ρ = λs, and a mean queue wait given
by the Pollaczek–Khinchine formula; the two service laws the simulator
implements have closed forms:

* **M/M/1** (``service="exponential"``): ``Wq = ρ s / (1 - ρ)``
* **M/D/1** (``service="deterministic"``): ``Wq = ρ s / (2 (1 - ρ))``

:data:`ANALYTIC_MODELS` registers both with their envelopes, so the
differential suite parametrizes over the registry exactly as the backend
suite does over performance backends.  The envelopes are *statistical*:
the simulation estimates Wq from a finite, autocorrelated sample started
from an empty queue, so they are wider than the backend envelopes —
:data:`WAIT_RTOL` for the mean wait (plus an absolute floor of
``WAIT_ATOL_FRACTION x s`` for light traffic, where Wq is a tiny target)
and :data:`UTILIZATION_RTOL` for utilization (a much tighter estimate:
busy time is deterministic given the arrivals).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..exceptions import ValidationError

__all__ = [
    "ANALYTIC_MODELS",
    "UTILIZATION_RTOL",
    "WAIT_RTOL",
    "AnalyticQueueModel",
    "QueuePrediction",
    "get_analytic_model",
    "md1_prediction",
    "mm1_prediction",
]

#: Declared relative envelope on the simulated mean queue wait vs the
#: analytic prediction (finite-sample + autocorrelation noise).
WAIT_RTOL = 0.15

#: Absolute floor on the wait comparison, as a fraction of the mean
#: service time: at low ρ the analytic Wq approaches 0 and a pure
#: relative envelope would demand unbounded precision of a noisy
#: estimator.
WAIT_ATOL_FRACTION = 0.02

#: Declared relative envelope on simulated utilization vs ρ = λs.
UTILIZATION_RTOL = 0.05


@dataclass(frozen=True)
class QueuePrediction:
    """Analytic steady-state prediction of one single-server queue."""

    arrival_rate: float
    mean_service_s: float
    utilization: float
    mean_wait_s: float

    @property
    def mean_latency_s(self) -> float:
        """Mean sojourn time: queue wait plus one service."""
        return self.mean_wait_s + self.mean_service_s


def _check_stable(arrival_rate: float, mean_service_s: float) -> float:
    if arrival_rate <= 0:
        raise ValidationError(f"arrival_rate must be positive, got {arrival_rate}")
    if mean_service_s <= 0:
        raise ValidationError(f"mean service time must be positive, got {mean_service_s}")
    rho = arrival_rate * mean_service_s
    if rho >= 1.0:
        raise ValidationError(
            f"unstable queue: utilization rho = {rho:.3f} >= 1 "
            f"(arrival_rate={arrival_rate}, service={mean_service_s})"
        )
    return rho


def mm1_prediction(arrival_rate: float, mean_service_s: float) -> QueuePrediction:
    """M/M/1: Poisson arrivals, exponential service.  ``Wq = rho s / (1 - rho)``."""
    rho = _check_stable(arrival_rate, mean_service_s)
    return QueuePrediction(
        arrival_rate=arrival_rate,
        mean_service_s=mean_service_s,
        utilization=rho,
        mean_wait_s=rho * mean_service_s / (1.0 - rho),
    )


def md1_prediction(arrival_rate: float, mean_service_s: float) -> QueuePrediction:
    """M/D/1: Poisson arrivals, deterministic service.  ``Wq = rho s / (2(1 - rho))``."""
    rho = _check_stable(arrival_rate, mean_service_s)
    return QueuePrediction(
        arrival_rate=arrival_rate,
        mean_service_s=mean_service_s,
        utilization=rho,
        mean_wait_s=rho * mean_service_s / (2.0 * (1.0 - rho)),
    )


@dataclass(frozen=True)
class AnalyticQueueModel:
    """One registered analytic model with its declared envelope.

    ``service`` names the :class:`~repro.contention.simulate.
    ContentionWorkload` service law the model predicts; the differential
    suite simulates with that law and asserts agreement within
    ``wait_rtol`` / ``utilization_rtol``.
    """

    name: str
    service: str
    predict: Callable[[float, float], QueuePrediction]
    wait_rtol: float = WAIT_RTOL
    wait_atol_fraction: float = WAIT_ATOL_FRACTION
    utilization_rtol: float = UTILIZATION_RTOL

    def wait_within_envelope(self, simulated_wait_s: float, prediction: QueuePrediction) -> bool:
        """Whether a simulated mean wait meets the declared envelope."""
        tol = (
            self.wait_rtol * prediction.mean_wait_s
            + self.wait_atol_fraction * prediction.mean_service_s
        )
        return abs(simulated_wait_s - prediction.mean_wait_s) <= tol

    def utilization_within_envelope(
        self, simulated_utilization: float, prediction: QueuePrediction
    ) -> bool:
        """Whether a simulated utilization meets the declared envelope."""
        return (
            abs(simulated_utilization - prediction.utilization)
            <= self.utilization_rtol * prediction.utilization
        )


ANALYTIC_MODELS: tuple[AnalyticQueueModel, ...] = (
    AnalyticQueueModel(name="mm1", service="exponential", predict=mm1_prediction),
    AnalyticQueueModel(name="md1", service="deterministic", predict=md1_prediction),
)


def get_analytic_model(name: str) -> AnalyticQueueModel:
    """Look up a registered analytic queueing model by name."""
    for model in ANALYTIC_MODELS:
        if model.name == name:
            return model
    raise ValidationError(
        f"unknown analytic model {name!r}; "
        f"available: {tuple(m.name for m in ANALYTIC_MODELS)}"
    )
