"""Contended multi-tenant workloads over the discrete-event runtime.

The paper's Fig. 1 architecture assumes many clients sharing one
annealer; this package realizes that assumption as a subsystem:

* :mod:`~repro.contention.disciplines` — pluggable
  :class:`QueueDiscipline` strategies (``fifo`` / ``priority`` /
  ``round-robin``) deciding which queued session the annealer serves
  next, mirroring the distributed scheduler registry;
* :mod:`~repro.contention.simulate` — open (Poisson) and closed
  (population + think time) arrival processes driving N concurrent
  Fig.-2 sessions against the QPU resource, with every random draw
  pre-drawn from a dedicated spawn-stream namespace so contended study
  artifacts stay byte-identical across workers, shard orders, and
  topologies;
* :mod:`~repro.contention.analytic` — M/M/1 and M/D/1 closed forms with
  declared tolerance envelopes, the independent realization the
  differential suite cross-checks the simulator against.

The study executor fills the ``latency_p50_s`` / ``latency_p95_s`` /
``latency_p99_s`` / ``queue_wait_s`` / ``utilization`` artifact columns
through :func:`~repro.contention.simulate.contention_columns` for every
row whose backend declares the contention axes (the DES backend).
"""

from .analytic import (
    ANALYTIC_MODELS,
    AnalyticQueueModel,
    QueuePrediction,
    get_analytic_model,
    md1_prediction,
    mm1_prediction,
)
from .disciplines import (
    DEFAULT_QUEUE_POLICY,
    QUEUE_POLICY_NAMES,
    QueueDiscipline,
    available_queue_policies,
    get_queue_policy,
)
from .simulate import (
    CONTENTION_COLUMNS,
    CONTENTION_DOMAIN,
    ContentionMetrics,
    ContentionWorkload,
    contention_columns,
    simulate_contention,
)

__all__ = [
    "ANALYTIC_MODELS",
    "CONTENTION_COLUMNS",
    "CONTENTION_DOMAIN",
    "DEFAULT_QUEUE_POLICY",
    "QUEUE_POLICY_NAMES",
    "AnalyticQueueModel",
    "ContentionMetrics",
    "ContentionWorkload",
    "QueueDiscipline",
    "QueuePrediction",
    "available_queue_policies",
    "contention_columns",
    "get_analytic_model",
    "get_queue_policy",
    "md1_prediction",
    "mm1_prediction",
    "simulate_contention",
]
