"""Abstract syntax tree for the ASPEN subset.

Two node families: *expressions* (arithmetic over parameters) and
*declarations* (application models, machine components).  All nodes are
frozen dataclasses so parsed models can be shared and hashed safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Num",
    "ParamRef",
    "BinOp",
    "UnaryOp",
    "Call",
    "ParamDecl",
    "DataDecl",
    "Clause",
    "ExecuteBlock",
    "KernelCall",
    "Iterate",
    "ParBlock",
    "SeqBlock",
    "KernelDecl",
    "ModelDecl",
    "ResourceDecl",
    "PropertyDecl",
    "ComponentRef",
    "ComponentDecl",
    "MachineDecl",
    "IncludeDecl",
    "SourceFile",
]


# --------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------- #
class Expr:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Expr):
    """A numeric literal."""

    value: float


@dataclass(frozen=True)
class ParamRef(Expr):
    """A reference to a named parameter (resolved at evaluation time)."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic operation: ``+ - * / ^``."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary plus/minus."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A function call such as ``log(x)``, ``ceil(x)``, ``max(a, b)``."""

    name: str
    args: tuple[Expr, ...]


# --------------------------------------------------------------------- #
# Application-model declarations
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ParamDecl:
    """``param NAME = expr``."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class DataDecl:
    """``data NAME as Array(count, element_bytes)``."""

    name: str
    count: Expr
    element_bytes: Expr


@dataclass(frozen=True)
class Clause:
    """One resource-consumption line inside an execute block.

    Examples from the paper's listings::

        flops [EmbeddingOps] as sp, simd
        loads [EH*4] from Input
        loads [Results] of size [4*Length]
        stores [EG*4] to Output
        intracomm [EG*4] as copyout
        microseconds [ProcessorInitialize]
        QuOps [ceil(log(1-(Accuracy/100))/log(1-Success))]
    """

    resource: str
    amount: Expr
    traits: tuple[str, ...] = ()
    target: str | None = None  # `to X` / `from X` data-set name
    of_size: Expr | None = None  # `of size [expr]` element size multiplier


@dataclass(frozen=True)
class ExecuteBlock:
    """``execute [count] { clauses }`` with an optional label."""

    label: str | None
    count: Expr
    clauses: tuple[Clause, ...]


@dataclass(frozen=True)
class KernelCall:
    """A bare kernel-name statement invoking another kernel."""

    name: str


@dataclass(frozen=True)
class Iterate:
    """``iterate [count] { statements }`` — sequential repetition."""

    count: Expr
    body: tuple["Statement", ...]


@dataclass(frozen=True)
class ParBlock:
    """``par { statements }`` — branches overlap; cost is the maximum."""

    body: tuple["Statement", ...]


@dataclass(frozen=True)
class SeqBlock:
    """``seq { statements }`` — explicit sequencing; cost is the sum."""

    body: tuple["Statement", ...]


Statement = ExecuteBlock | KernelCall | Iterate | ParBlock | SeqBlock


@dataclass(frozen=True)
class KernelDecl:
    """``kernel NAME { statements }``."""

    name: str
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class ModelDecl:
    """``model NAME { params, data, kernels }`` — an application model."""

    name: str
    params: tuple[ParamDecl, ...] = ()
    data: tuple[DataDecl, ...] = ()
    kernels: tuple[KernelDecl, ...] = ()


# --------------------------------------------------------------------- #
# Machine-model declarations
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ResourceDecl:
    """``resource NAME(arg) [cost_expr] with trait [expr], trait [expr]``.

    The cost expression may reference the argument name, the component's
    params, and — inside trait expressions — the symbol ``base``, bound to
    the cost accumulated so far (base expression with earlier traits
    applied).
    """

    name: str
    arg: str
    cost: Expr
    traits: tuple[tuple[str, Expr], ...] = ()


@dataclass(frozen=True)
class PropertyDecl:
    """``property NAME [expr]`` — a static component property (e.g. capacity)."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class ComponentRef:
    """``[count] NAME role`` or ``NAME role`` inside a container component.

    ``role`` is one of ``nodes``, ``sockets``, ``cores``, ``memory``;
    ``linked with NAME`` is represented with role ``link`` and count 1.
    """

    count: Expr
    name: str
    role: str


@dataclass(frozen=True)
class ComponentDecl:
    """A machine component: ``node``, ``socket``, ``core``, ``memory``,
    or ``interconnect`` blocks."""

    kind: str  # node | socket | core | memory | interconnect
    name: str
    params: tuple[ParamDecl, ...] = ()
    properties: tuple[PropertyDecl, ...] = ()
    resources: tuple[ResourceDecl, ...] = ()
    components: tuple[ComponentRef, ...] = ()


@dataclass(frozen=True)
class MachineDecl:
    """``machine NAME { [count] NODE nodes }``."""

    name: str
    components: tuple[ComponentRef, ...] = ()


@dataclass(frozen=True)
class IncludeDecl:
    """``include path/to/model.aspen``."""

    path: str


@dataclass(frozen=True)
class SourceFile:
    """All top-level declarations parsed from one source text."""

    includes: tuple[IncludeDecl, ...] = ()
    models: tuple[ModelDecl, ...] = ()
    machines: tuple[MachineDecl, ...] = ()
    components: tuple[ComponentDecl, ...] = field(default=())
