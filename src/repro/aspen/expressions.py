"""Evaluation of ASPEN arithmetic expressions.

Parameters resolve lazily against an environment of (possibly interdependent)
parameter declarations plus caller overrides; cycles are reported as errors.
``log`` is the natural logarithm (the convention of the reference ASPEN
implementation); ``log2``/``log10`` are available where a specific base is
wanted.  All values are Python floats.
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from ..exceptions import AspenEvaluationError, AspenNameError
from .ast_nodes import BinOp, Call, Expr, Num, ParamRef, UnaryOp

__all__ = ["FUNCTIONS", "evaluate_expr", "Environment"]


def _safe_log(x: float) -> float:
    if x <= 0:
        raise AspenEvaluationError(f"log of non-positive value {x}")
    return math.log(x)


def _safe_div(a: float, b: float) -> float:
    if b == 0:
        raise AspenEvaluationError("division by zero")
    return a / b


#: Built-in functions usable in ASPEN expressions.
FUNCTIONS: dict[str, object] = {
    "log": _safe_log,
    "log2": lambda x: _safe_log(x) / math.log(2.0),
    "log10": lambda x: _safe_log(x) / math.log(10.0),
    "exp": math.exp,
    "sqrt": math.sqrt,
    "ceil": lambda x: float(math.ceil(x)),
    "floor": lambda x: float(math.floor(x)),
    "abs": abs,
    "min": min,
    "max": max,
    "pow": math.pow,
}

_ARITY = {
    "log": 1,
    "log2": 1,
    "log10": 1,
    "exp": 1,
    "sqrt": 1,
    "ceil": 1,
    "floor": 1,
    "abs": 1,
    "pow": 2,
}


class Environment:
    """Lazy parameter environment with cycle detection and memoization.

    Parameters
    ----------
    declarations:
        ``{name: Expr}`` from the model's ``param`` statements.
    overrides:
        ``{name: float | Expr}`` caller-supplied values that shadow
        declarations (this is how benches sweep ``LPS`` or ``Accuracy``).
    parent:
        Optional outer environment (component params see machine params).
    """

    def __init__(
        self,
        declarations: Mapping[str, Expr] | None = None,
        overrides: Mapping[str, float | Expr] | None = None,
        parent: "Environment | None" = None,
    ) -> None:
        self._declarations = dict(declarations or {})
        self._overrides = dict(overrides or {})
        self._parent = parent
        self._cache: dict[str, float] = {}
        self._in_progress: set[str] = set()

    def child(
        self,
        declarations: Mapping[str, Expr] | None = None,
        overrides: Mapping[str, float | Expr] | None = None,
    ) -> "Environment":
        """A nested scope whose lookups fall back to this environment."""
        return Environment(declarations, overrides, parent=self)

    def defines(self, name: str) -> bool:
        return (
            name in self._overrides
            or name in self._declarations
            or (self._parent is not None and self._parent.defines(name))
        )

    def lookup(self, name: str) -> float:
        if name in self._cache:
            return self._cache[name]
        if name in self._in_progress:
            raise AspenEvaluationError(f"cyclic parameter definition involving {name!r}")

        if name in self._overrides:
            value = self._overrides[name]
            result = (
                float(value)
                if isinstance(value, (int, float))
                else evaluate_expr(value, self)
            )
        elif name in self._declarations:
            self._in_progress.add(name)
            try:
                result = evaluate_expr(self._declarations[name], self)
            finally:
                self._in_progress.discard(name)
        elif self._parent is not None:
            result = self._parent.lookup(name)
        else:
            raise AspenNameError(f"undefined parameter {name!r}")
        self._cache[name] = result
        return result

    def resolved(self, names: list[str] | None = None) -> dict[str, float]:
        """Evaluate and return the named (or all locally declared) parameters."""
        if names is None:
            names = sorted(set(self._declarations) | set(self._overrides))
        return {n: self.lookup(n) for n in names}


def evaluate_expr(expr: Expr, env: Environment) -> float:
    """Evaluate an expression tree to a float in the given environment."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, ParamRef):
        return env.lookup(expr.name)
    if isinstance(expr, UnaryOp):
        v = evaluate_expr(expr.operand, env)
        return -v if expr.op == "-" else v
    if isinstance(expr, BinOp):
        a = evaluate_expr(expr.lhs, env)
        b = evaluate_expr(expr.rhs, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            return _safe_div(a, b)
        if expr.op == "^":
            return math.pow(a, b)
        raise AspenEvaluationError(f"unknown operator {expr.op!r}")
    if isinstance(expr, Call):
        fn = FUNCTIONS.get(expr.name)
        if fn is None:
            raise AspenNameError(f"unknown function {expr.name!r}")
        arity = _ARITY.get(expr.name)
        if arity is not None and len(expr.args) != arity:
            raise AspenEvaluationError(
                f"{expr.name}() takes {arity} argument(s), got {len(expr.args)}"
            )
        if expr.name in ("min", "max") and len(expr.args) < 1:
            raise AspenEvaluationError(f"{expr.name}() needs at least one argument")
        values = [evaluate_expr(a, env) for a in expr.args]
        return float(fn(*values))  # type: ignore[operator]
    raise AspenEvaluationError(f"cannot evaluate expression node {expr!r}")
