"""The ASPEN evaluator: application demands x machine capabilities -> time.

Walks an application model's kernel call tree, evaluates every ``execute``
block's clauses against a chosen socket of the machine model, and produces
an :class:`EvaluationReport` with per-clause, per-kernel, and per-resource
breakdowns — the timing estimates behind the paper's Fig. 9.

Semantics:

* clause ``amount`` is ``eval(amount_expr)``, multiplied by ``of size``
  when present;
* time resources (``seconds``, ``microseconds``, ...) convert intrinsically;
* all other resources resolve through the socket (cores, then memory, then
  interconnect) with trait modifiers applied;
* an execute block combines its clause times by the *conflict policy*:
  ``"sum"`` (default; fully serialized demands) or ``"max"`` (perfectly
  overlapped demands);
* kernels are sequential, ``iterate [n]`` multiplies, ``par`` takes the
  branch maximum, ``seq`` sums.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import AspenEvaluationError, AspenNameError
from .application import ApplicationModel
from .ast_nodes import (
    ExecuteBlock,
    Expr,
    Iterate,
    KernelCall,
    ParBlock,
    SeqBlock,
    Statement,
)
from .expressions import Environment, evaluate_expr
from .machine import MachineModel, SocketView

__all__ = ["ClauseCost", "EvaluationReport", "AspenEvaluator", "TIME_UNITS"]

#: Intrinsic time resources and their scale to seconds.
TIME_UNITS: dict[str, float] = {
    "nanoseconds": 1e-9,
    "microseconds": 1e-6,
    "milliseconds": 1e-3,
    "seconds": 1.0,
    "minutes": 60.0,
}

_CONFLICT_POLICIES = ("sum", "max")


@dataclass(frozen=True)
class ClauseCost:
    """The evaluated cost of one clause occurrence (multipliers included)."""

    kernel: str
    block: str
    resource: str
    amount: float
    traits: tuple[str, ...]
    seconds: float
    multiplier: float


@dataclass
class EvaluationReport:
    """Result of evaluating an application model on a machine socket."""

    model: str
    machine: str
    socket: str
    kernel: str
    total_seconds: float = 0.0
    clauses: list[ClauseCost] = field(default_factory=list)
    parameters: dict[str, float] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def per_kernel(self) -> dict[str, float]:
        """Seconds attributed to each kernel (by clause residence)."""
        out: dict[str, float] = {}
        for c in self.clauses:
            out[c.kernel] = out.get(c.kernel, 0.0) + c.seconds
        return out

    def per_resource(self) -> dict[str, float]:
        """Seconds attributed to each resource kind."""
        out: dict[str, float] = {}
        for c in self.clauses:
            out[c.resource] = out.get(c.resource, 0.0) + c.seconds
        return out

    def dominant_resource(self) -> str:
        """The resource consuming the most time."""
        per = self.per_resource()
        if not per:
            raise AspenEvaluationError("report has no clauses")
        return max(per, key=per.get)  # type: ignore[arg-type]


class AspenEvaluator:
    """Evaluates application models against one machine model."""

    def __init__(self, machine: MachineModel, conflict: str = "sum"):
        if conflict not in _CONFLICT_POLICIES:
            raise AspenEvaluationError(
                f"conflict policy must be one of {_CONFLICT_POLICIES}, got {conflict!r}"
            )
        self.machine = machine
        self.conflict = conflict

    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        app: ApplicationModel,
        socket: str,
        params: dict[str, float | Expr] | None = None,
        kernel: str = "main",
    ) -> EvaluationReport:
        """Predict the runtime of ``app`` (entry ``kernel``) on ``socket``.

        Parameters
        ----------
        params:
            Parameter overrides (e.g. ``{"LPS": 50}``) shadowing the model's
            ``param`` declarations — how benches sweep the x-axes of Fig. 9.
        """
        view = self.machine.socket(socket)
        env = app.environment(params)
        report = EvaluationReport(
            model=app.name, machine=self.machine.name, socket=socket, kernel=kernel
        )
        total = self._eval_kernel(app, kernel, env, view, report, stack=(), multiplier=1.0)
        report.total_seconds = total
        try:
            report.parameters = env.resolved()
        except Exception as exc:  # parameters referencing undefined inputs
            report.warnings.append(f"could not resolve all parameters: {exc}")
        self._check_capacity(app, env, view, report)
        return report

    def compile_sweep(
        self,
        app: ApplicationModel,
        socket: str,
        axes,
        params: dict[str, float] | None = None,
        kernel: str = "main",
    ):
        """Lower ``app`` to a vectorized closure over the named sweep axes.

        The compiled counterpart of calling :meth:`evaluate` in a loop
        with one ``axes`` parameter varying per point: bit-identical
        totals, array-at-a-time cost (see :mod:`repro.aspen.compiler`).
        Raises :class:`~repro.aspen.compiler.AspenLoweringError` for
        models the compiler cannot lower — callers fall back to the
        per-point :meth:`evaluate` tree walk.
        """
        from .compiler import compile_sweep

        return compile_sweep(
            app,
            self.machine.socket(socket),
            axes,
            params=params,
            kernel=kernel,
            conflict=self.conflict,
        )

    # ------------------------------------------------------------------ #
    def _eval_kernel(
        self,
        app: ApplicationModel,
        name: str,
        env: Environment,
        view: SocketView,
        report: EvaluationReport,
        stack: tuple[str, ...],
        multiplier: float,
    ) -> float:
        if name in stack:
            raise AspenEvaluationError(
                f"recursive kernel invocation: {' -> '.join(stack + (name,))}"
            )
        kdecl = app.kernel(name)
        total = 0.0
        for stmt in kdecl.body:
            total += self._eval_statement(
                app, stmt, env, view, report, stack + (name,), multiplier
            )
        return total

    def _eval_statement(
        self,
        app: ApplicationModel,
        stmt: Statement,
        env: Environment,
        view: SocketView,
        report: EvaluationReport,
        stack: tuple[str, ...],
        multiplier: float,
    ) -> float:
        if isinstance(stmt, ExecuteBlock):
            return self._eval_execute(app, stmt, env, view, report, stack, multiplier)
        if isinstance(stmt, KernelCall):
            return self._eval_kernel(app, stmt.name, env, view, report, stack, multiplier)
        if isinstance(stmt, Iterate):
            count = evaluate_expr(stmt.count, env)
            if count < 0:
                raise AspenEvaluationError(f"iterate count is negative: {count}")
            total = 0.0
            for inner in stmt.body:
                total += self._eval_statement(
                    app, inner, env, view, report, stack, multiplier * count
                )
            return total
        if isinstance(stmt, ParBlock):
            times = [
                self._eval_statement(app, inner, env, view, report, stack, multiplier)
                for inner in stmt.body
            ]
            return max(times, default=0.0)
        if isinstance(stmt, SeqBlock):
            return sum(
                self._eval_statement(app, inner, env, view, report, stack, multiplier)
                for inner in stmt.body
            )
        raise AspenEvaluationError(f"unsupported statement {stmt!r}")

    def _eval_execute(
        self,
        app: ApplicationModel,
        block: ExecuteBlock,
        env: Environment,
        view: SocketView,
        report: EvaluationReport,
        stack: tuple[str, ...],
        multiplier: float,
    ) -> float:
        count = evaluate_expr(block.count, env)
        if count < 0:
            raise AspenEvaluationError(f"execute count is negative: {count}")
        label = block.label or "<anonymous>"
        kernel_name = stack[-1] if stack else "<top>"
        scale = multiplier * count

        clause_times: list[float] = []
        for clause in block.clauses:
            amount = evaluate_expr(clause.amount, env)
            if clause.of_size is not None:
                amount *= evaluate_expr(clause.of_size, env)
            if clause.target is not None and clause.target not in app.data:
                raise AspenNameError(
                    f"clause {clause.resource!r} in kernel {kernel_name!r} references "
                    f"unknown data set {clause.target!r}"
                )

            if clause.resource in TIME_UNITS:
                seconds_once = amount * TIME_UNITS[clause.resource]
            else:
                lookup = view.find_resource(clause.resource)
                if lookup is None:
                    raise AspenNameError(
                        f"socket {view.name!r} provides no resource {clause.resource!r}; "
                        f"available: {sorted(set(view.resource_names()))} "
                        f"plus time units {sorted(TIME_UNITS)}"
                    )
                seconds_once, unmatched = lookup.time_seconds(amount, clause.traits)
                for t in sorted(unmatched):
                    msg = (
                        f"trait {t!r} requested on {clause.resource!r} is not declared "
                        f"by component {lookup.component.name!r}"
                    )
                    if msg not in report.warnings:
                        report.warnings.append(msg)
            if seconds_once < 0:
                raise AspenEvaluationError(
                    f"negative time for clause {clause.resource!r} in {kernel_name!r}"
                )
            clause_times.append(seconds_once)
            report.clauses.append(
                ClauseCost(
                    kernel=kernel_name,
                    block=label,
                    resource=clause.resource,
                    amount=amount,
                    traits=clause.traits,
                    seconds=seconds_once * scale,
                    multiplier=scale,
                )
            )

        if not clause_times:
            return 0.0
        combined = sum(clause_times) if self.conflict == "sum" else max(clause_times)
        return combined * scale

    # ------------------------------------------------------------------ #
    def _check_capacity(
        self,
        app: ApplicationModel,
        env: Environment,
        view: SocketView,
        report: EvaluationReport,
    ) -> None:
        """Warn when declared data sets exceed the socket memory capacity."""
        if view.memory is None or not app.data:
            return
        capacity = view.property_value(view.memory, "capacity")
        if capacity is None:
            return
        try:
            total_bytes = sum(app.data_bytes(name, env) for name in app.data)
        except Exception:
            return
        if total_bytes > capacity:
            report.warnings.append(
                f"declared data ({total_bytes:.3g} B) exceeds memory capacity "
                f"of {view.memory.name!r} ({capacity:.3g} B)"
            )
