"""Lowering parsed ASPEN models to vectorized numpy sweep closures.

The tree-walking :class:`~repro.aspen.evaluator.AspenEvaluator` prices one
operating point per call; sweeping an axis (the Fig.-9 x-axes, the study
grids) therefore costs one full walk per point.  This module is the
interpreter-to-compiler pass: it walks the *same* AST once, classifies
every subexpression as **constant** or **varying** with respect to a
declared set of sweep axes, and emits a closure that evaluates the whole
model over numpy arrays of axis values in a handful of array operations.

**The bit-identity contract.**  ``compile_sweep(...)(LPS=xs)[i]`` must be
bit-identical to ``evaluator.evaluate(app, socket, {"LPS": xs[i]}).
total_seconds`` for every ``i`` — compilation is a fast path, never a
different answer (the same contract the backends' batched ``sweep`` makes
with their evaluate loop).  Three rules make this hold:

* constant subtrees are folded by the *scalar* evaluator itself
  (:func:`~repro.aspen.expressions.evaluate_expr`), so a folded constant
  is the exact float the tree walk would have produced;
* varying arithmetic (``+ - * /``, unary minus, comparisons inside
  ``min``/``max``, ``ceil``/``floor``/``abs``) is lowered to the
  corresponding numpy float64 ufunc — IEEE-754 operations that are
  correctly rounded and therefore bitwise equal to the Python-float
  scalar ops, applied in the evaluator's exact association order;
* transcendental calls (``log``/``exp``/``sqrt``/``pow``/…) and the
  ``^`` operator on *varying* operands are **not** trusted to numpy's
  SIMD routines (which may differ from libm in the last ulp): they are
  lowered to an elementwise map of the very same scalar functions the
  evaluator uses (:data:`~repro.aspen.expressions.FUNCTIONS`), keeping
  exactness at a per-element Python-call cost.  In the bundled listings
  every transcendental sits in a constant subtree (``log(NG)``,
  Stage 2/3's ``ceil(log(...)/log(...))``), so this path is cold.

**The fallback rule.**  Anything the lowerer does not recognize — an
unknown expression node, an unknown statement type, a function outside
the evaluator's builtin table — raises :class:`AspenLoweringError` at
compile time.  Callers (see :meth:`AspenStageModels
<repro.core.aspen_backend.AspenStageModels>`) treat that as "this model
is not compilable" and fall back to the tree-walking evaluator per
point, which remains the semantic reference.  The compiler never guesses:
a model either lowers exactly or not at all.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import AspenError, AspenEvaluationError, AspenNameError
from .application import ApplicationModel
from .ast_nodes import (
    BinOp,
    Call,
    ExecuteBlock,
    Expr,
    Iterate,
    KernelCall,
    Num,
    ParamRef,
    ParBlock,
    SeqBlock,
    UnaryOp,
)
from .evaluator import TIME_UNITS
from .expressions import FUNCTIONS, Environment, evaluate_expr
from .machine import SocketView

__all__ = ["AspenLoweringError", "CompiledSweep", "compile_sweep"]


class AspenLoweringError(AspenError):
    """A model contains a node the compiler cannot lower exactly.

    Raising (rather than approximating) is the conservative half of the
    compile pass: callers catch this and fall back to the tree-walking
    evaluator, which defines the semantics.
    """


#: A lowered value: either a Python float (constant across the sweep,
#: folded by the scalar evaluator) or a closure mapping the axis arrays
#: to a float64 array aligned with them.
_Vec = Callable[[dict], np.ndarray]
Lowered = float | _Vec


def _is_const(v: Lowered) -> bool:
    return isinstance(v, float)


# --------------------------------------------------------------------- #
# Exact lowered arithmetic
# --------------------------------------------------------------------- #
def _add(a: Lowered, b: Lowered) -> Lowered:
    if _is_const(a) and _is_const(b):
        return a + b
    return lambda ax: _val(a, ax) + _val(b, ax)


def _mul(a: Lowered, b: Lowered) -> Lowered:
    if _is_const(a) and _is_const(b):
        return a * b
    return lambda ax: _val(a, ax) * _val(b, ax)


def _val(v: Lowered, axes: dict) -> float | np.ndarray:
    return v if _is_const(v) else v(axes)


def _map_scalar(fn: Callable, args: list, axes: dict) -> np.ndarray:
    """Apply a scalar function elementwise — the exactness escape hatch.

    Used for every operation whose numpy counterpart is not guaranteed
    bitwise-equal to the evaluator's libm call.  Broadcasting mirrors the
    scalar evaluator: constants are applied to every element.
    """
    values = [np.asarray(_val(a, axes), dtype=np.float64) for a in args]
    broadcast = np.broadcast_arrays(*values) if len(values) > 1 else values
    out = np.empty(broadcast[0].shape, dtype=np.float64)
    flats = [b.reshape(-1) for b in broadcast]
    flat_out = out.reshape(-1)
    for i in range(flat_out.shape[0]):
        flat_out[i] = fn(*(float(f[i]) for f in flats))
    return out


#: Builtins whose numpy lowering is exact (comparison- or rounding-based
#: IEEE operations, bitwise equal to the scalar implementations).
_VECTOR_SAFE_CALLS: dict[str, Callable] = {
    "ceil": np.ceil,
    "floor": np.floor,
    "abs": np.abs,
    "min": np.minimum,
    "max": np.maximum,
}

_ARITY_ONE = {"log", "log2", "log10", "exp", "sqrt", "ceil", "floor", "abs"}


# --------------------------------------------------------------------- #
# Expression lowering
# --------------------------------------------------------------------- #
def _refs(expr: Expr, out: set[str]) -> set[str]:
    """Collect every parameter name referenced by ``expr`` into ``out``."""
    if isinstance(expr, ParamRef):
        out.add(expr.name)
    elif isinstance(expr, BinOp):
        _refs(expr.lhs, out)
        _refs(expr.rhs, out)
    elif isinstance(expr, UnaryOp):
        _refs(expr.operand, out)
    elif isinstance(expr, Call):
        for a in expr.args:
            _refs(a, out)
    elif not isinstance(expr, Num):
        raise AspenLoweringError(f"cannot analyze expression node {expr!r}")
    return out


class _ExprLowerer:
    """Lowers expressions against one scope.

    Parameters
    ----------
    scalar_env:
        The evaluator's own :class:`Environment` for this scope —
        constant subtrees are folded through it so folded floats are the
        tree walk's floats.
    varying:
        Names that vary across the sweep, mapped to their lowered values.
        Entries are resolved lazily for declared parameters (``None``
        placeholder -> lowered on first reference, with cycle detection).
    declarations:
        ``{name: Expr}`` for names whose lowering is deferred (the
        application's ``param`` declarations).
    """

    def __init__(
        self,
        scalar_env: Environment,
        varying: dict[str, Lowered | None],
        declarations: Mapping[str, Expr] | None = None,
    ) -> None:
        self.scalar_env = scalar_env
        self.varying = varying
        self.declarations = dict(declarations or {})
        self._in_progress: set[str] = set()

    def is_varying(self, expr: Expr) -> bool:
        return bool(_refs(expr, set()) & set(self.varying))

    def lower(self, expr: Expr) -> Lowered:
        if not self.is_varying(expr):
            # Constant fold through the scalar evaluator: same code path,
            # same float, including its error semantics.
            return float(evaluate_expr(expr, self.scalar_env))
        if isinstance(expr, ParamRef):
            return self._lower_param(expr.name)
        if isinstance(expr, UnaryOp):
            operand = self.lower(expr.operand)
            if expr.op != "-":
                return operand
            if _is_const(operand):
                return -operand
            return lambda ax: -_val(operand, ax)
        if isinstance(expr, BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, Call):
            return self._lower_call(expr)
        raise AspenLoweringError(f"cannot lower expression node {expr!r}")

    # ------------------------------------------------------------------ #
    def _lower_param(self, name: str) -> Lowered:
        bound = self.varying.get(name)
        if bound is not None:
            return bound
        if name not in self.varying:  # pragma: no cover - guarded by is_varying
            raise AspenNameError(f"undefined parameter {name!r}")
        decl = self.declarations.get(name)
        if decl is None:
            raise AspenLoweringError(
                f"varying parameter {name!r} has no declaration to lower"
            )
        if name in self._in_progress:
            raise AspenEvaluationError(
                f"cyclic parameter definition involving {name!r}"
            )
        self._in_progress.add(name)
        try:
            lowered = self.lower(decl)
        finally:
            self._in_progress.discard(name)
        self.varying[name] = lowered
        return lowered

    def _lower_binop(self, expr: BinOp) -> Lowered:
        a = self.lower(expr.lhs)
        b = self.lower(expr.rhs)
        op = expr.op
        if _is_const(a) and _is_const(b):
            # Both children folded (e.g. `base` bound to a constant cost):
            # fold the node too, with the evaluator's scalar semantics.
            if op == "+":
                return a + b
            if op == "-":
                return a - b
            if op == "*":
                return a * b
            if op == "/":
                if b == 0:
                    raise AspenEvaluationError("division by zero")
                return a / b
            if op == "^":
                return math.pow(a, b)
            raise AspenEvaluationError(f"unknown operator {op!r}")
        if op == "+":
            return lambda ax: _val(a, ax) + _val(b, ax)
        if op == "-":
            return lambda ax: _val(a, ax) - _val(b, ax)
        if op == "*":
            return lambda ax: _val(a, ax) * _val(b, ax)
        if op == "/":

            def divide(ax):
                num, den = _val(a, ax), _val(b, ax)
                if np.any(np.asarray(den) == 0):
                    raise AspenEvaluationError("division by zero")
                return num / den

            return divide
        if op == "^":
            # math.pow, elementwise: libm pow is not promised bitwise
            # equal to np.power on every platform.
            return lambda ax: _map_scalar(math.pow, [a, b], ax)
        raise AspenEvaluationError(f"unknown operator {op!r}")

    def _lower_call(self, expr: Call) -> Lowered:
        fn = FUNCTIONS.get(expr.name)
        if fn is None:
            raise AspenNameError(f"unknown function {expr.name!r}")
        if expr.name in _ARITY_ONE and len(expr.args) != 1:
            raise AspenEvaluationError(
                f"{expr.name}() takes 1 argument(s), got {len(expr.args)}"
            )
        if expr.name == "pow" and len(expr.args) != 2:
            raise AspenEvaluationError(
                f"pow() takes 2 argument(s), got {len(expr.args)}"
            )
        if expr.name in ("min", "max") and len(expr.args) < 1:
            raise AspenEvaluationError(f"{expr.name}() needs at least one argument")
        args = [self.lower(a) for a in expr.args]
        if all(_is_const(a) for a in args):
            # e.g. every argument resolved through a constant `base`.
            return float(fn(*args))  # type: ignore[operator]
        vector_fn = _VECTOR_SAFE_CALLS.get(expr.name)
        if vector_fn is None:
            if expr.name not in _ARITY_ONE and expr.name != "pow":
                raise AspenLoweringError(
                    f"cannot lower call to {expr.name!r} on a varying argument"
                )
            # Transcendental on a varying argument: exact elementwise map
            # of the evaluator's own scalar function.
            return lambda ax: _map_scalar(fn, args, ax)
        if expr.name in ("min", "max"):
            # Python's min/max left-folds pairwise comparisons; so do we.
            def fold(ax):
                acc = np.asarray(_val(args[0], ax), dtype=np.float64)
                for nxt in args[1:]:
                    acc = vector_fn(acc, _val(nxt, ax))
                return acc

            return fold
        return lambda ax: vector_fn(_val(args[0], ax))


# --------------------------------------------------------------------- #
# Statement lowering
# --------------------------------------------------------------------- #
class _SweepCompiler:
    """Lowers an application's kernel tree on one socket view."""

    def __init__(
        self,
        app: ApplicationModel,
        view: SocketView,
        axes: tuple[str, ...],
        params: Mapping[str, float] | None,
        conflict: str,
    ) -> None:
        self.app = app
        self.view = view
        self.conflict = conflict
        self.warnings: list[str] = []
        overrides = {k: float(v) for k, v in (params or {}).items()}
        # Transitively classify declared params: varying iff the
        # declaration (not shadowed by a constant override) references a
        # varying name.
        varying: dict[str, Lowered | None] = {
            name: (lambda ax, _n=name: ax[_n]) for name in axes
        }
        changed = True
        while changed:
            changed = False
            for name, decl in app.params.items():
                if name in varying or name in overrides:
                    continue
                if _refs(decl, set()) & set(varying):
                    varying[name] = None  # lowered lazily on first reference
                    changed = True
        # The scalar env sees only the constant overrides; constant
        # subtrees never reference a varying name, so its lookups can
        # never leak a varying parameter's (meaningless) declared default.
        self.scalar_env = app.environment(dict(overrides))
        self.lowerer = _ExprLowerer(self.scalar_env, varying, app.params)

    # ------------------------------------------------------------------ #
    # The multiplier is threaded down exactly as the evaluator threads its
    # scalar multiplier: `multiplier * count` at each iterate, and
    # `combined * (multiplier * count)` at each execute block.  Float
    # multiplication is not associative, so reassociating (e.g. hoisting
    # the iterate count outside the body sum) would break bit-identity.
    def lower_kernel(
        self, name: str, stack: tuple[str, ...], multiplier: Lowered = 1.0
    ) -> Lowered:
        if name in stack:
            raise AspenEvaluationError(
                f"recursive kernel invocation: {' -> '.join(stack + (name,))}"
            )
        kdecl = self.app.kernel(name)
        total: Lowered = 0.0
        for stmt in kdecl.body:
            total = _add(
                total, self.lower_statement(stmt, stack + (name,), multiplier)
            )
        return total

    def lower_statement(
        self, stmt, stack: tuple[str, ...], multiplier: Lowered
    ) -> Lowered:
        if isinstance(stmt, ExecuteBlock):
            return self._lower_execute(stmt, stack, multiplier)
        if isinstance(stmt, KernelCall):
            return self.lower_kernel(stmt.name, stack, multiplier)
        if isinstance(stmt, Iterate):
            count = self._checked_count(self.lowerer.lower(stmt.count), "iterate")
            inner_multiplier = _mul(multiplier, count)
            total: Lowered = 0.0
            for inner in stmt.body:
                total = _add(
                    total, self.lower_statement(inner, stack, inner_multiplier)
                )
            return total
        if isinstance(stmt, ParBlock):
            times = [
                self.lower_statement(inner, stack, multiplier)
                for inner in stmt.body
            ]
            if not times:
                return 0.0
            if all(_is_const(t) for t in times):
                return float(max(times))

            def par_max(ax, _times=times):
                acc = np.asarray(_val(_times[0], ax), dtype=np.float64)
                for nxt in _times[1:]:
                    acc = np.maximum(acc, _val(nxt, ax))
                return acc

            return par_max
        if isinstance(stmt, SeqBlock):
            total = 0.0
            for inner in stmt.body:
                total = _add(total, self.lower_statement(inner, stack, multiplier))
            return total
        raise AspenLoweringError(f"cannot lower statement {stmt!r}")

    # ------------------------------------------------------------------ #
    def _lower_execute(
        self, block: ExecuteBlock, stack: tuple[str, ...], multiplier: Lowered
    ) -> Lowered:
        count = self._checked_count(self.lowerer.lower(block.count), "execute")
        scale = _mul(multiplier, count)
        kernel_name = stack[-1] if stack else "<top>"

        clause_times: list[Lowered] = []
        for clause in block.clauses:
            amount = self.lowerer.lower(clause.amount)
            if clause.of_size is not None:
                amount = _mul(amount, self.lowerer.lower(clause.of_size))
            if clause.target is not None and clause.target not in self.app.data:
                raise AspenNameError(
                    f"clause {clause.resource!r} in kernel {kernel_name!r} references "
                    f"unknown data set {clause.target!r}"
                )
            seconds_once = self._lower_clause_seconds(clause, amount, kernel_name)
            clause_times.append(
                self._checked_seconds(seconds_once, clause.resource, kernel_name)
            )

        if not clause_times:
            return 0.0
        if self.conflict == "sum":
            combined: Lowered = 0.0
            for t in clause_times:
                combined = _add(combined, t)
        else:
            combined = clause_times[0]
            for t in clause_times[1:]:
                if _is_const(combined) and _is_const(t):
                    combined = max(combined, t)
                else:
                    combined = (
                        lambda ax, _a=combined, _b=t: np.maximum(
                            _val(_a, ax), _val(_b, ax)
                        )
                    )
        return _mul(combined, scale)

    def _lower_clause_seconds(
        self, clause, amount: Lowered, kernel_name: str
    ) -> Lowered:
        if clause.resource in TIME_UNITS:
            return _mul(amount, TIME_UNITS[clause.resource])
        lookup = self.view.find_resource(clause.resource)
        if lookup is None:
            raise AspenNameError(
                f"socket {self.view.name!r} provides no resource "
                f"{clause.resource!r}; available: "
                f"{sorted(set(self.view.resource_names()))} "
                f"plus time units {sorted(TIME_UNITS)}"
            )
        declared = dict(lookup.decl.traits)
        for t in sorted({t for t in clause.traits if t not in declared}):
            msg = (
                f"trait {t!r} requested on {clause.resource!r} is not declared "
                f"by component {lookup.component.name!r}"
            )
            if msg not in self.warnings:
                self.warnings.append(msg)
        if _is_const(amount):
            seconds, _ = lookup.time_seconds(amount, clause.traits)
            return float(seconds)
        # Varying amount: lower the resource's cost expression with its
        # argument bound, then apply requested declared traits in
        # declaration order with `base` bound to the running cost — the
        # exact structure of ResourceLookup.time_seconds.
        arg = lookup.decl.arg
        scope = _ExprLowerer(
            lookup.env.child(overrides={}), {arg: amount}
        )
        cost = scope.lower(lookup.decl.cost)
        for name in clause.traits:
            expr = declared.get(name)
            if expr is None:
                continue
            trait_scope = _ExprLowerer(
                lookup.env.child(overrides={}), {arg: amount, "base": cost}
            )
            cost = trait_scope.lower(expr)
        return cost

    # ------------------------------------------------------------------ #
    @staticmethod
    def _checked_count(count: Lowered, what: str) -> Lowered:
        if _is_const(count):
            if count < 0:
                raise AspenEvaluationError(f"{what} count is negative: {count}")
            return count

        def checked(ax):
            value = count(ax)
            if np.any(value < 0):
                raise AspenEvaluationError(
                    f"{what} count is negative: {float(np.min(value))}"
                )
            return value

        return checked

    @staticmethod
    def _checked_seconds(seconds: Lowered, resource: str, kernel: str) -> Lowered:
        if _is_const(seconds):
            if seconds < 0:
                raise AspenEvaluationError(
                    f"negative time for clause {resource!r} in {kernel!r}"
                )
            return seconds

        def checked(ax):
            value = seconds(ax)
            if np.any(value < 0):
                raise AspenEvaluationError(
                    f"negative time for clause {resource!r} in {kernel!r}"
                )
            return value

        return checked


# --------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompiledSweep:
    """A compiled model: axis arrays in, total-seconds array out.

    Call with one keyword array per declared axis; every array must share
    one shape, and the result is aligned with it.  Scalar axis values are
    accepted and broadcast (the result is then a 0-d array).
    """

    model: str
    socket: str
    kernel: str
    axes: tuple[str, ...]
    warnings: tuple[str, ...]
    _fn: Lowered = field(repr=False)

    def __call__(self, **axis_values) -> np.ndarray:
        unknown = set(axis_values) - set(self.axes)
        missing = set(self.axes) - set(axis_values)
        if unknown or missing:
            raise AspenEvaluationError(
                f"compiled sweep of {self.model!r} takes axes {list(self.axes)}; "
                f"got {sorted(axis_values)}"
            )
        arrays = {
            name: np.asarray(value, dtype=np.float64)
            for name, value in axis_values.items()
        }
        result = _val(self._fn, arrays)
        if _is_const(self._fn):  # fully constant model: broadcast
            shape = np.broadcast_shapes(*(a.shape for a in arrays.values()))
            return np.full(shape, result, dtype=np.float64)
        return np.asarray(result, dtype=np.float64)


def compile_sweep(
    app: ApplicationModel,
    view: SocketView,
    axes: Iterable[str],
    params: Mapping[str, float] | None = None,
    kernel: str = "main",
    conflict: str = "sum",
) -> CompiledSweep:
    """Compile ``app``'s ``kernel`` on ``view`` into a vectorized closure.

    Parameters
    ----------
    axes:
        Parameter names that will vary across the sweep (e.g. ``("LPS",)``).
        Everything else is constant-folded at compile time.
    params:
        Constant parameter overrides, exactly like the evaluator's
        ``params`` (e.g. ``{"Accuracy": 99.0}``); a name may not appear in
        both ``axes`` and ``params``.
    conflict:
        The evaluator's clause conflict policy (``"sum"`` or ``"max"``).

    Raises
    ------
    AspenLoweringError
        For any node the compiler cannot lower exactly — the caller's cue
        to fall back to the tree-walking evaluator.
    """
    axes = tuple(axes)
    if not axes:
        raise AspenEvaluationError("compile_sweep needs at least one varying axis")
    overlap = set(axes) & set(params or {})
    if overlap:
        raise AspenEvaluationError(
            f"axes and params overlap on {sorted(overlap)}"
        )
    if conflict not in ("sum", "max"):
        raise AspenEvaluationError(
            f"conflict policy must be one of ('sum', 'max'), got {conflict!r}"
        )
    compiler = _SweepCompiler(app, view, axes, params, conflict)
    fn = compiler.lower_kernel(kernel, stack=())
    return CompiledSweep(
        model=app.name,
        socket=view.name,
        kernel=kernel,
        axes=axes,
        warnings=tuple(compiler.warnings),
        _fn=fn,
    )
