"""Semantic application models.

An application model (paper Figs. 6-8) declares parameters, data sets, and
kernels; the ``main`` kernel is the entry point.  This wrapper indexes the
declarations and provides parameter/data resolution helpers for the
evaluator.
"""

from __future__ import annotations

from ..exceptions import AspenNameError
from .ast_nodes import DataDecl, Expr, KernelDecl, ModelDecl
from .expressions import Environment, evaluate_expr

__all__ = ["ApplicationModel"]


class ApplicationModel:
    """An indexed ASPEN application model."""

    def __init__(self, decl: ModelDecl):
        self.decl = decl
        self.params: dict[str, Expr] = {}
        for p in decl.params:
            if p.name in self.params:
                raise AspenNameError(f"duplicate param {p.name!r} in model {decl.name!r}")
            self.params[p.name] = p.expr
        self.data: dict[str, DataDecl] = {}
        for d in decl.data:
            if d.name in self.data:
                raise AspenNameError(f"duplicate data set {d.name!r} in model {decl.name!r}")
            self.data[d.name] = d
        self.kernels: dict[str, KernelDecl] = {}
        for k in decl.kernels:
            if k.name in self.kernels:
                raise AspenNameError(f"duplicate kernel {k.name!r} in model {decl.name!r}")
            self.kernels[k.name] = k

    @property
    def name(self) -> str:
        return self.decl.name

    def kernel(self, name: str = "main") -> KernelDecl:
        k = self.kernels.get(name)
        if k is None:
            raise AspenNameError(
                f"model {self.name!r} has no kernel {name!r}; "
                f"kernels: {sorted(self.kernels)}"
            )
        return k

    def environment(self, overrides: dict[str, float | Expr] | None = None) -> Environment:
        """The model's parameter environment with caller overrides applied."""
        return Environment(self.params, overrides)

    def data_bytes(self, name: str, env: Environment) -> float:
        """Total byte size of a declared data set (count * element_bytes)."""
        d = self.data.get(name)
        if d is None:
            raise AspenNameError(
                f"model {self.name!r} has no data set {name!r}; data: {sorted(self.data)}"
            )
        return evaluate_expr(d.count, env) * evaluate_expr(d.element_bytes, env)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApplicationModel({self.name!r}, params={len(self.params)}, "
            f"data={len(self.data)}, kernels={sorted(self.kernels)})"
        )
