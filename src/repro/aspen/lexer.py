"""Tokenizer for the ASPEN modeling-language subset.

ASPEN sources are free-form text with ``//`` line comments and ``/* */``
block comments.  Tokens are identifiers (including keywords, which are
distinguished by the parser), numeric literals (integer, decimal, and
scientific notation), string literals, punctuation, and arithmetic
operators.  Every token carries its 1-based line/column for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..exceptions import AspenSyntaxError

__all__ = ["TokenType", "Token", "tokenize"]


class TokenType(Enum):
    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQUALS = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CARET = "^"
    EOF = "end of input"


_PUNCT = {
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    "=": TokenType.EQUALS,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "^": TokenType.CARET,
}

# Unicode variants occasionally found in copy-pasted listings (the paper's
# PDF renders '^' as a modifier circumflex, which is a *letter* category and
# would otherwise be swallowed into identifiers).  Translated away up front.
_ALIASES = str.maketrans({"ˆ": "^", "−": "-"})


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


def _is_ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(source: str) -> list[Token]:
    """Convert ASPEN source text into a token list ending with EOF.

    Raises
    ------
    AspenSyntaxError
        On unterminated comments/strings or unexpected characters.
    """
    source = source.translate(_ALIASES)
    tokens: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def advance(k: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        c = source[i]

        if c in " \t\r\n":
            advance()
            continue

        if c == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                advance()
            continue

        if c == "/" and i + 1 < n and source[i + 1] == "*":
            start_line, start_col = line, col
            advance(2)
            while i + 1 < n and not (source[i] == "*" and source[i + 1] == "/"):
                advance()
            if i + 1 >= n:
                raise AspenSyntaxError("unterminated block comment", start_line, start_col)
            advance(2)
            continue

        if c == '"':
            start_line, start_col = line, col
            advance()
            chars: list[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\n":
                    raise AspenSyntaxError("unterminated string", start_line, start_col)
                chars.append(source[i])
                advance()
            if i >= n:
                raise AspenSyntaxError("unterminated string", start_line, start_col)
            advance()
            tokens.append(Token(TokenType.STRING, "".join(chars), start_line, start_col))
            continue

        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            seen_dot = seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif ch in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 1
                    if source[j] in "+-":
                        j += 1
                else:
                    break
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenType.NUMBER, text, start_line, start_col))
            continue

        if _is_ident_start(c):
            start_line, start_col = line, col
            j = i
            while j < n and _is_ident_char(source[j]):
                j += 1
            # Model file paths in `include` lines look like ident/ident.aspen;
            # the parser re-assembles them from IDENT, SLASH, and '.' pieces —
            # to keep the lexer simple, '.' inside an identifier is allowed.
            while j < n and source[j] == "." and j + 1 < n and _is_ident_start(source[j + 1]):
                j += 1
                while j < n and _is_ident_char(source[j]):
                    j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token(TokenType.IDENT, text, start_line, start_col))
            continue

        if c in _PUNCT:
            tokens.append(Token(_PUNCT[c], c, line, col))
            advance()
            continue

        raise AspenSyntaxError(f"unexpected character {source[i]!r}", line, col)

    tokens.append(Token(TokenType.EOF, "", line, col))
    return tokens
