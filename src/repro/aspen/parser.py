"""Recursive-descent parser for the ASPEN subset.

The grammar covers every construct appearing in the paper's listings
(Figs. 5-8) plus the control statements (``iterate``/``par``/``seq``) and
machine-side component declarations needed to close the language:

.. code-block:: text

    source      := (include | model | machine | component)*
    include     := 'include' path
    model       := 'model' IDENT '{' (param | data | kernel)* '}'
    param       := 'param' IDENT '=' expr
    data        := 'data' IDENT 'as' 'Array' '(' expr ',' expr ')'
    kernel      := 'kernel' IDENT '{' statement* '}'
    statement   := execute | iterate | par | seq | IDENT
    execute     := 'execute' IDENT? '[' expr ']' '{' clause* '}'
    clause      := IDENT '[' expr ']' trailer*
    trailer     := 'as' IDENT (',' IDENT)* | ('to'|'from') IDENT
                 | 'of' 'size' '[' expr ']'
    machine     := 'machine' IDENT '{' compref* '}'
    component   := ('node'|'socket'|'core'|'memory'|'interconnect') IDENT
                   '{' (param | property | resource | link | compref)* '}'
    resource    := 'resource' IDENT '(' IDENT ')' '[' expr ']'
                   ('with' IDENT '[' expr ']' (',' IDENT '[' expr ']')*)?
    property    := 'property' IDENT '[' expr ']'
    link        := 'linked' 'with' IDENT
    compref     := ('[' expr ']')? IDENT IDENT

Expressions use the usual precedence (``^`` right-associative above ``* /``
above ``+ -``) with function calls and parentheses.
"""

from __future__ import annotations

from ..exceptions import AspenSyntaxError
from .ast_nodes import (
    BinOp,
    Call,
    Clause,
    ComponentDecl,
    ComponentRef,
    DataDecl,
    ExecuteBlock,
    Expr,
    IncludeDecl,
    Iterate,
    KernelCall,
    KernelDecl,
    MachineDecl,
    ModelDecl,
    Num,
    ParamDecl,
    ParamRef,
    ParBlock,
    PropertyDecl,
    ResourceDecl,
    SeqBlock,
    SourceFile,
    Statement,
    UnaryOp,
)
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_source", "parse_expression"]

_COMPONENT_KINDS = ("node", "socket", "core", "memory", "interconnect")
_STATEMENT_KEYWORDS = ("execute", "iterate", "par", "seq")


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.cur
        if tok.type is not TokenType.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str) -> AspenSyntaxError:
        tok = self.cur
        return AspenSyntaxError(f"{message} (found {tok.value!r})", tok.line, tok.column)

    def _expect(self, type_: TokenType) -> Token:
        if self.cur.type is not type_:
            raise self._error(f"expected {type_.value}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._at_keyword(word):
            raise self._error(f"expected keyword {word!r}")
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        return self.cur.type is TokenType.IDENT and self.cur.value == word

    # -- entry point -----------------------------------------------------
    def parse(self) -> SourceFile:
        includes: list[IncludeDecl] = []
        models: list[ModelDecl] = []
        machines: list[MachineDecl] = []
        components: list[ComponentDecl] = []
        while self.cur.type is not TokenType.EOF:
            if self._at_keyword("include"):
                includes.append(self._include())
            elif self._at_keyword("model"):
                models.append(self._model())
            elif self._at_keyword("machine"):
                machines.append(self._machine())
            elif self.cur.type is TokenType.IDENT and self.cur.value in _COMPONENT_KINDS:
                components.append(self._component())
            else:
                raise self._error(
                    "expected 'include', 'model', 'machine', or a component declaration"
                )
        return SourceFile(
            includes=tuple(includes),
            models=tuple(models),
            machines=tuple(machines),
            components=tuple(components),
        )

    # -- top-level declarations -------------------------------------------
    def _include(self) -> IncludeDecl:
        self._expect_keyword("include")
        parts = [self._expect(TokenType.IDENT).value]
        while self.cur.type is TokenType.SLASH:
            self._advance()
            parts.append(self._expect(TokenType.IDENT).value)
        return IncludeDecl(path="/".join(parts))

    def _model(self) -> ModelDecl:
        self._expect_keyword("model")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACE)
        params: list[ParamDecl] = []
        data: list[DataDecl] = []
        kernels: list[KernelDecl] = []
        while self.cur.type is not TokenType.RBRACE:
            if self._at_keyword("param"):
                params.append(self._param())
            elif self._at_keyword("data"):
                data.append(self._data())
            elif self._at_keyword("kernel"):
                kernels.append(self._kernel())
            else:
                raise self._error("expected 'param', 'data', or 'kernel' in model body")
        self._expect(TokenType.RBRACE)
        return ModelDecl(name, tuple(params), tuple(data), tuple(kernels))

    def _param(self) -> ParamDecl:
        self._expect_keyword("param")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.EQUALS)
        return ParamDecl(name, self._expr())

    def _data(self) -> DataDecl:
        self._expect_keyword("data")
        name = self._expect(TokenType.IDENT).value
        self._expect_keyword("as")
        ctor = self._expect(TokenType.IDENT).value
        if ctor != "Array":
            raise self._error(f"unsupported data constructor {ctor!r} (only Array)")
        self._expect(TokenType.LPAREN)
        count = self._expr()
        self._expect(TokenType.COMMA)
        elem = self._expr()
        self._expect(TokenType.RPAREN)
        return DataDecl(name, count, elem)

    def _kernel(self) -> KernelDecl:
        self._expect_keyword("kernel")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACE)
        body = self._statements()
        self._expect(TokenType.RBRACE)
        return KernelDecl(name, body)

    # -- statements -------------------------------------------------------
    def _statements(self) -> tuple[Statement, ...]:
        out: list[Statement] = []
        while self.cur.type is not TokenType.RBRACE:
            out.append(self._statement())
        return tuple(out)

    def _statement(self) -> Statement:
        if self._at_keyword("execute"):
            return self._execute()
        if self._at_keyword("iterate"):
            self._advance()
            self._expect(TokenType.LBRACKET)
            count = self._expr()
            self._expect(TokenType.RBRACKET)
            self._expect(TokenType.LBRACE)
            body = self._statements()
            self._expect(TokenType.RBRACE)
            return Iterate(count, body)
        if self._at_keyword("par") or self._at_keyword("seq"):
            kind = self._advance().value
            self._expect(TokenType.LBRACE)
            body = self._statements()
            self._expect(TokenType.RBRACE)
            return ParBlock(body) if kind == "par" else SeqBlock(body)
        if self.cur.type is TokenType.IDENT:
            return KernelCall(self._advance().value)
        raise self._error("expected a statement (execute/iterate/par/seq/kernel name)")

    def _execute(self) -> ExecuteBlock:
        self._expect_keyword("execute")
        label: str | None = None
        if self.cur.type is TokenType.IDENT:
            label = self._advance().value
        count: Expr = Num(1.0)
        if self.cur.type is TokenType.LBRACKET:
            self._advance()
            count = self._expr()
            self._expect(TokenType.RBRACKET)
        self._expect(TokenType.LBRACE)
        clauses: list[Clause] = []
        while self.cur.type is not TokenType.RBRACE:
            clauses.append(self._clause())
        self._expect(TokenType.RBRACE)
        return ExecuteBlock(label, count, tuple(clauses))

    def _clause(self) -> Clause:
        resource = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACKET)
        amount = self._expr()
        self._expect(TokenType.RBRACKET)
        traits: list[str] = []
        target: str | None = None
        of_size: Expr | None = None
        while True:
            if self._at_keyword("as"):
                self._advance()
                traits.append(self._expect(TokenType.IDENT).value)
                while self.cur.type is TokenType.COMMA:
                    self._advance()
                    traits.append(self._expect(TokenType.IDENT).value)
            elif self._at_keyword("to") or self._at_keyword("from"):
                self._advance()
                target = self._expect(TokenType.IDENT).value
            elif self._at_keyword("of"):
                self._advance()
                self._expect_keyword("size")
                self._expect(TokenType.LBRACKET)
                of_size = self._expr()
                self._expect(TokenType.RBRACKET)
            else:
                break
        return Clause(resource, amount, tuple(traits), target, of_size)

    # -- machine-side declarations -----------------------------------------
    def _machine(self) -> MachineDecl:
        self._expect_keyword("machine")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACE)
        refs: list[ComponentRef] = []
        while self.cur.type is not TokenType.RBRACE:
            refs.append(self._component_ref())
        self._expect(TokenType.RBRACE)
        return MachineDecl(name, tuple(refs))

    def _component(self) -> ComponentDecl:
        kind = self._advance().value
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LBRACE)
        params: list[ParamDecl] = []
        properties: list[PropertyDecl] = []
        resources: list[ResourceDecl] = []
        components: list[ComponentRef] = []
        while self.cur.type is not TokenType.RBRACE:
            if self._at_keyword("param"):
                params.append(self._param())
            elif self._at_keyword("property"):
                self._advance()
                pname = self._expect(TokenType.IDENT).value
                self._expect(TokenType.LBRACKET)
                expr = self._expr()
                self._expect(TokenType.RBRACKET)
                properties.append(PropertyDecl(pname, expr))
            elif self._at_keyword("resource"):
                resources.append(self._resource())
            elif self._at_keyword("linked"):
                self._advance()
                self._expect_keyword("with")
                link_name = self._expect(TokenType.IDENT).value
                components.append(ComponentRef(Num(1.0), link_name, "link"))
            else:
                components.append(self._component_ref())
        self._expect(TokenType.RBRACE)
        return ComponentDecl(
            kind, name, tuple(params), tuple(properties), tuple(resources), tuple(components)
        )

    def _component_ref(self) -> ComponentRef:
        count: Expr = Num(1.0)
        if self.cur.type is TokenType.LBRACKET:
            self._advance()
            count = self._expr()
            self._expect(TokenType.RBRACKET)
        name = self._expect(TokenType.IDENT).value
        role = self._expect(TokenType.IDENT).value
        return ComponentRef(count, name, role)

    def _resource(self) -> ResourceDecl:
        self._expect_keyword("resource")
        name = self._expect(TokenType.IDENT).value
        self._expect(TokenType.LPAREN)
        arg = self._expect(TokenType.IDENT).value
        self._expect(TokenType.RPAREN)
        self._expect(TokenType.LBRACKET)
        cost = self._expr()
        self._expect(TokenType.RBRACKET)
        traits: list[tuple[str, Expr]] = []
        if self._at_keyword("with"):
            self._advance()
            while True:
                tname = self._expect(TokenType.IDENT).value
                self._expect(TokenType.LBRACKET)
                texpr = self._expr()
                self._expect(TokenType.RBRACKET)
                traits.append((tname, texpr))
                if self.cur.type is TokenType.COMMA:
                    self._advance()
                    continue
                break
        return ResourceDecl(name, arg, cost, tuple(traits))

    # -- expressions -------------------------------------------------------
    def _expr(self) -> Expr:
        node = self._term()
        while self.cur.type in (TokenType.PLUS, TokenType.MINUS):
            op = self._advance().value
            node = BinOp(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._power()
        while self.cur.type in (TokenType.STAR, TokenType.SLASH):
            op = self._advance().value
            node = BinOp(op, node, self._power())
        return node

    def _power(self) -> Expr:
        base = self._unary()
        if self.cur.type is TokenType.CARET:
            self._advance()
            return BinOp("^", base, self._power())  # right-associative
        return base

    def _unary(self) -> Expr:
        if self.cur.type in (TokenType.MINUS, TokenType.PLUS):
            op = self._advance().value
            return UnaryOp(op, self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        tok = self.cur
        if tok.type is TokenType.NUMBER:
            self._advance()
            return Num(float(tok.value))
        if tok.type is TokenType.IDENT:
            self._advance()
            if self.cur.type is TokenType.LPAREN:
                self._advance()
                args: list[Expr] = []
                if self.cur.type is not TokenType.RPAREN:
                    args.append(self._expr())
                    while self.cur.type is TokenType.COMMA:
                        self._advance()
                        args.append(self._expr())
                self._expect(TokenType.RPAREN)
                return Call(tok.value, tuple(args))
            return ParamRef(tok.value)
        if tok.type is TokenType.LPAREN:
            self._advance()
            node = self._expr()
            self._expect(TokenType.RPAREN)
            return node
        raise self._error("expected a number, parameter, function call, or '('")


def parse_source(source: str) -> SourceFile:
    """Parse ASPEN source text into a :class:`SourceFile` AST."""
    return _Parser(tokenize(source)).parse()


def parse_expression(source: str) -> Expr:
    """Parse a standalone arithmetic expression (used for parameter overrides)."""
    parser = _Parser(tokenize(source))
    expr = parser._expr()
    if parser.cur.type is not TokenType.EOF:
        raise parser._error("unexpected trailing input after expression")
    return expr
