"""A from-scratch implementation of the ASPEN performance-modeling language.

ASPEN (Spafford & Vetter, SC'12) is ORNL's structured analytical
performance-modeling language; the paper expresses both its machine model
(Fig. 5) and the three-stage split-execution application (Figs. 6-8) in it.
This package implements the subset those listings use, end to end:

* :func:`~repro.aspen.parser.parse_source` — lexer + recursive-descent
  parser producing a typed AST;
* :class:`~repro.aspen.machine.MachineModel` /
  :class:`~repro.aspen.application.ApplicationModel` — resolved semantic
  models;
* :class:`~repro.aspen.evaluator.AspenEvaluator` — maps application
  resource demands onto machine capabilities to produce runtime estimates
  with per-clause breakdowns;
* :class:`~repro.aspen.loader.ModelRegistry` — ``include`` resolution over
  the bundled ``models/`` files, which contain the paper's listings
  verbatim.
"""

from .application import ApplicationModel
from .compiler import AspenLoweringError, CompiledSweep, compile_sweep
from .evaluator import AspenEvaluator, ClauseCost, EvaluationReport, TIME_UNITS
from .expressions import Environment, evaluate_expr
from .loader import ModelRegistry, bundled_models_dir, load_paper_models
from .machine import MachineModel, SocketView
from .parser import parse_expression, parse_source

__all__ = [
    "parse_source",
    "parse_expression",
    "ApplicationModel",
    "MachineModel",
    "SocketView",
    "AspenEvaluator",
    "AspenLoweringError",
    "CompiledSweep",
    "compile_sweep",
    "EvaluationReport",
    "ClauseCost",
    "TIME_UNITS",
    "Environment",
    "evaluate_expr",
    "ModelRegistry",
    "bundled_models_dir",
    "load_paper_models",
]
