"""Semantic machine models: machines, nodes, sockets, cores, memory, links.

A machine model (paper Fig. 5) is a containment hierarchy — machine ->
nodes -> sockets -> {cores, memory, interconnect} — whose leaf components
declare *resources*: named cost functions mapping an application demand
(flops, bytes, quantum operations, ...) to seconds.  Resource cost
expressions may carry *trait* modifiers (``sp``, ``dp``, ``fmad``, ``simd``)
that an application clause opts into with ``as trait, trait``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..exceptions import AspenNameError
from .ast_nodes import ComponentDecl, ComponentRef, MachineDecl, ResourceDecl
from .expressions import Environment, evaluate_expr

__all__ = ["ResourceLookup", "SocketView", "MachineModel"]


@dataclass(frozen=True)
class ResourceLookup:
    """A resolved resource: its declaration plus the evaluation scope."""

    decl: ResourceDecl
    env: Environment
    component: ComponentDecl

    def time_seconds(self, amount: float, traits: Iterable[str]) -> tuple[float, set[str]]:
        """Cost in seconds of ``amount`` units with the requested traits.

        The base cost expression is evaluated with the resource argument
        bound to ``amount``; each *declared* trait requested by the clause
        is then applied in declaration order, with ``base`` bound to the
        running cost.  Returns ``(seconds, unmatched_traits)`` where the
        second element lists requested traits the resource does not declare
        (reported as warnings, mirroring ASPEN's permissive trait handling).
        """
        requested = list(traits)
        scope = self.env.child(overrides={self.decl.arg: float(amount)})
        cost = evaluate_expr(self.decl.cost, scope)
        declared = dict(self.decl.traits)
        for name in requested:
            expr = declared.get(name)
            if expr is None:
                continue
            trait_scope = self.env.child(
                overrides={self.decl.arg: float(amount), "base": cost}
            )
            cost = evaluate_expr(expr, trait_scope)
        unmatched = {t for t in requested if t not in declared}
        return cost, unmatched


class SocketView:
    """A socket with its resolved cores, memory, and interconnect.

    Resource lookup order follows the containment intuition: core resources
    first (compute), then memory (loads/stores), then the link
    (intracomm), then resources declared on the socket itself.
    """

    def __init__(
        self,
        socket: ComponentDecl,
        cores: list[tuple[float, ComponentDecl]],
        memory: ComponentDecl | None,
        link: ComponentDecl | None,
        machine_env: Environment,
    ) -> None:
        self.socket = socket
        self.cores = cores
        self.memory = memory
        self.link = link
        self._socket_env = machine_env.child({p.name: p.expr for p in socket.params})
        self._component_envs: dict[str, Environment] = {}

    @property
    def name(self) -> str:
        return self.socket.name

    def _env_for(self, component: ComponentDecl) -> Environment:
        env = self._component_envs.get(component.name)
        if env is None:
            env = self._socket_env.child({p.name: p.expr for p in component.params})
            self._component_envs[component.name] = env
        return env

    def find_resource(self, name: str) -> ResourceLookup | None:
        """Resolve a resource by name, or return ``None`` if absent."""
        search: list[ComponentDecl] = [core for _, core in self.cores]
        if self.memory is not None:
            search.append(self.memory)
        if self.link is not None:
            search.append(self.link)
        search.append(self.socket)
        for component in search:
            for res in component.resources:
                if res.name == name:
                    return ResourceLookup(res, self._env_for(component), component)
        return None

    def resource_names(self) -> list[str]:
        """All resource names reachable from this socket."""
        names: list[str] = []
        for _, core in self.cores:
            names.extend(r.name for r in core.resources)
        for comp in (self.memory, self.link, self.socket):
            if comp is not None:
                names.extend(r.name for r in comp.resources)
        return names

    def property_value(self, component: ComponentDecl, name: str) -> float | None:
        """Evaluate a component property (e.g. memory ``capacity``) if present."""
        for prop in component.properties:
            if prop.name == name:
                return evaluate_expr(prop.expr, self._env_for(component))
        return None


class MachineModel:
    """A fully linked machine: declarations resolved against a component registry.

    Parameters
    ----------
    decl:
        The ``machine`` declaration.
    components:
        All known component declarations by name (from the registry).
    """

    def __init__(self, decl: MachineDecl, components: dict[str, ComponentDecl]):
        self.decl = decl
        self.components = components
        self.env = Environment()
        self._socket_views: dict[str, SocketView] = {}
        self._socket_decls: dict[str, ComponentDecl] = {}
        self._collect_sockets()

    @property
    def name(self) -> str:
        return self.decl.name

    def _component(self, name: str) -> ComponentDecl:
        comp = self.components.get(name)
        if comp is None:
            raise AspenNameError(f"machine {self.decl.name!r} references unknown component {name!r}")
        return comp

    def _collect_sockets(self) -> None:
        def visit(refs: tuple[ComponentRef, ...]) -> None:
            for ref in refs:
                comp = self._component(ref.name)
                if comp.kind == "node" or ref.role == "nodes":
                    visit(comp.components)
                elif comp.kind == "socket" or ref.role == "sockets":
                    self._socket_decls[comp.name] = comp
                # cores/memory/links are resolved lazily per socket

        visit(self.decl.components)

    def socket_names(self) -> list[str]:
        """Names of every socket reachable from the machine declaration."""
        return sorted(self._socket_decls)

    def socket(self, name: str) -> SocketView:
        """Build (and cache) the resolved view of one socket."""
        view = self._socket_views.get(name)
        if view is not None:
            return view
        decl = self._socket_decls.get(name)
        if decl is None:
            # Allow direct evaluation against a socket that exists in the
            # registry even if no machine references it (useful in tests).
            candidate = self.components.get(name)
            if candidate is None or candidate.kind != "socket":
                raise AspenNameError(
                    f"machine {self.decl.name!r} has no socket {name!r}; "
                    f"known sockets: {self.socket_names()}"
                )
            decl = candidate

        cores: list[tuple[float, ComponentDecl]] = []
        memory: ComponentDecl | None = None
        link: ComponentDecl | None = None
        for ref in decl.components:
            comp = self._component(ref.name)
            count = evaluate_expr(ref.count, self.env)
            if ref.role == "cores" or comp.kind == "core":
                cores.append((count, comp))
            elif ref.role == "memory" or comp.kind == "memory":
                memory = comp
            elif ref.role == "link" or comp.kind == "interconnect":
                link = comp
            else:
                raise AspenNameError(
                    f"socket {decl.name!r}: unsupported component role {ref.role!r}"
                )
        view = SocketView(decl, cores, memory, link, self.env)
        self._socket_views[name] = view
        return view
