"""Model registry and ``include`` resolution.

ASPEN sources compose through ``include`` lines (paper Fig. 5 pulls in the
memory and socket models).  The :class:`ModelRegistry` resolves includes
against a list of search paths — the library's bundled ``models/`` directory
by default — parses each file once, and indexes every declaration by name.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from ..exceptions import AspenNameError
from .application import ApplicationModel
from .ast_nodes import ComponentDecl, MachineDecl, ModelDecl
from .machine import MachineModel
from .parser import parse_source

__all__ = ["bundled_models_dir", "ModelRegistry", "load_paper_models"]

_PAPER_MACHINE_FILE = "machines/simple_node.aspen"
_PAPER_APP_FILES = ("apps/stage1.aspen", "apps/stage2.aspen", "apps/stage3.aspen")


def bundled_models_dir() -> Path:
    """Directory of the ``.aspen`` model files shipped with the library."""
    return Path(__file__).resolve().parent / "models"


class ModelRegistry:
    """Parses ASPEN files (with includes) and indexes their declarations."""

    def __init__(self, search_paths: list[Path | str] | None = None):
        paths = [Path(p) for p in (search_paths or [])]
        paths.append(bundled_models_dir())
        self.search_paths = paths
        self.models: dict[str, ModelDecl] = {}
        self.machines: dict[str, MachineDecl] = {}
        self.components: dict[str, ComponentDecl] = {}
        self._loaded_files: set[Path] = set()

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def _resolve(self, path: str) -> Path:
        candidate = Path(path)
        if candidate.is_absolute() and candidate.exists():
            return candidate
        for base in self.search_paths:
            p = base / path
            if p.exists():
                return p
        raise AspenNameError(
            f"cannot resolve include {path!r} in search paths "
            f"{[str(p) for p in self.search_paths]}"
        )

    def load_file(self, path: str) -> "ModelRegistry":
        """Parse one file (plus its transitive includes) into the registry."""
        resolved = self._resolve(path)
        if resolved in self._loaded_files:
            return self
        self._loaded_files.add(resolved)
        src = parse_source(resolved.read_text())
        for inc in src.includes:
            self.load_file(inc.path)
        self._absorb(src)
        return self

    def load_text(self, text: str) -> "ModelRegistry":
        """Parse in-memory source text (includes resolved via search paths)."""
        src = parse_source(text)
        for inc in src.includes:
            self.load_file(inc.path)
        self._absorb(src)
        return self

    def _absorb(self, src) -> None:
        for m in src.models:
            self.models[m.name] = m
        for m in src.machines:
            self.machines[m.name] = m
        for c in src.components:
            self.components[c.name] = c

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def application(self, name: str) -> ApplicationModel:
        decl = self.models.get(name)
        if decl is None:
            raise AspenNameError(
                f"no application model {name!r}; known: {sorted(self.models)}"
            )
        return ApplicationModel(decl)

    def machine(self, name: str) -> MachineModel:
        decl = self.machines.get(name)
        if decl is None:
            raise AspenNameError(f"no machine {name!r}; known: {sorted(self.machines)}")
        return MachineModel(decl, self.components)

    def component(self, name: str) -> ComponentDecl:
        decl = self.components.get(name)
        if decl is None:
            raise AspenNameError(
                f"no component {name!r}; known: {sorted(self.components)}"
            )
        return decl


@lru_cache(maxsize=1)
def load_paper_models() -> ModelRegistry:
    """Load the paper's machine (Fig. 5) and the Stage 1-3 applications (Figs. 6-8).

    Memoized: the bundled listings are immutable package data, so every
    caller — each :class:`~repro.core.aspen_backend.AspenStageModels`, every
    ASPEN-backend shard worker, repeated CLI invocations in one process —
    shares a single parsed registry instead of re-lexing the files (the
    ``aspen_models`` perf-harness kernel pins the win).  Treat the returned
    registry as **read-only**; build a private :class:`ModelRegistry` to
    load additional files alongside the paper models.
    """
    reg = ModelRegistry()
    reg.load_file(_PAPER_MACHINE_FILE)
    for app in _PAPER_APP_FILES:
        reg.load_file(app)
    return reg
