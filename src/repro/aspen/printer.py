"""Pretty-printer: AST back to ASPEN source text.

Supports programmatic model authoring (build or transform an AST, then emit
a ``.aspen`` file) and enables the round-trip property the test suite
checks: ``parse(print(parse(src)))`` evaluates identically to ``parse(src)``.
"""

from __future__ import annotations

from ..exceptions import AspenError
from .ast_nodes import (
    BinOp,
    Call,
    Clause,
    ComponentDecl,
    ComponentRef,
    ExecuteBlock,
    Expr,
    IncludeDecl,
    Iterate,
    KernelCall,
    KernelDecl,
    MachineDecl,
    ModelDecl,
    Num,
    ParamRef,
    ParBlock,
    SeqBlock,
    SourceFile,
    Statement,
    UnaryOp,
)

__all__ = ["format_expr", "format_source"]

_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "^": 3}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""
    if isinstance(expr, Num):
        v = expr.value
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return repr(v)
    if isinstance(expr, ParamRef):
        return expr.name
    if isinstance(expr, UnaryOp):
        inner = format_expr(expr.operand, 4)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > 0 else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        # Left operand: same precedence binds left for + - * /; ^ is
        # right-associative, so a left ^ child needs parens.
        lhs = format_expr(expr.lhs, prec + (1 if expr.op == "^" else 0))
        rhs = format_expr(expr.rhs, prec + (0 if expr.op == "^" else 1))
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a, 0) for a in expr.args)
        return f"{expr.name}({args})"
    raise AspenError(f"cannot format expression node {expr!r}")


def _format_clause(clause: Clause, indent: str) -> str:
    parts = [f"{indent}{clause.resource} [{format_expr(clause.amount)}]"]
    if clause.traits:
        parts.append("as " + ", ".join(clause.traits))
    if clause.target is not None:
        # `from` vs `to` is not stored; `to` round-trips identically in this
        # grammar since both attach a data-set name.
        parts.append(f"to {clause.target}")
    if clause.of_size is not None:
        parts.append(f"of size [{format_expr(clause.of_size)}]")
    return " ".join(parts)


def _format_statement(stmt: Statement, indent: str) -> list[str]:
    if isinstance(stmt, ExecuteBlock):
        label = f" {stmt.label}" if stmt.label else ""
        head = f"{indent}execute{label} [{format_expr(stmt.count)}] {{"
        body = [_format_clause(c, indent + "  ") for c in stmt.clauses]
        return [head, *body, f"{indent}}}"]
    if isinstance(stmt, KernelCall):
        return [f"{indent}{stmt.name}"]
    if isinstance(stmt, Iterate):
        head = f"{indent}iterate [{format_expr(stmt.count)}] {{"
        body = [line for s in stmt.body for line in _format_statement(s, indent + "  ")]
        return [head, *body, f"{indent}}}"]
    if isinstance(stmt, (ParBlock, SeqBlock)):
        kw = "par" if isinstance(stmt, ParBlock) else "seq"
        body = [line for s in stmt.body for line in _format_statement(s, indent + "  ")]
        return [f"{indent}{kw} {{", *body, f"{indent}}}"]
    raise AspenError(f"cannot format statement {stmt!r}")


def _format_model(model: ModelDecl) -> list[str]:
    lines = [f"model {model.name} {{"]
    for p in model.params:
        lines.append(f"  param {p.name} = {format_expr(p.expr)}")
    for d in model.data:
        lines.append(
            f"  data {d.name} as Array({format_expr(d.count)}, "
            f"{format_expr(d.element_bytes)})"
        )
    for k in model.kernels:
        lines.append(f"  kernel {k.name} {{")
        for stmt in k.body:
            lines.extend(_format_statement(stmt, "    "))
        lines.append("  }")
    lines.append("}")
    return lines


def _format_component_ref(ref: ComponentRef, indent: str) -> str:
    if ref.role == "link":
        return f"{indent}linked with {ref.name}"
    count = format_expr(ref.count)
    return f"{indent}[{count}] {ref.name} {ref.role}"


def _format_component(comp: ComponentDecl) -> list[str]:
    lines = [f"{comp.kind} {comp.name} {{"]
    for p in comp.params:
        lines.append(f"  param {p.name} = {format_expr(p.expr)}")
    for prop in comp.properties:
        lines.append(f"  property {prop.name} [{format_expr(prop.expr)}]")
    for res in comp.resources:
        head = f"  resource {res.name}({res.arg}) [{format_expr(res.cost)}]"
        if res.traits:
            traits = ", ".join(f"{n} [{format_expr(e)}]" for n, e in res.traits)
            head += f" with {traits}"
        lines.append(head)
    for ref in comp.components:
        lines.append(_format_component_ref(ref, "  "))
    lines.append("}")
    return lines


def _format_machine(machine: MachineDecl) -> list[str]:
    lines = [f"machine {machine.name} {{"]
    for ref in machine.components:
        lines.append(_format_component_ref(ref, "  "))
    lines.append("}")
    return lines


def format_source(src: SourceFile) -> str:
    """Render a full source file (includes, models, machines, components)."""
    blocks: list[str] = []
    for inc in src.includes:
        blocks.append(f"include {inc.path}")
    for machine in src.machines:
        blocks.append("\n".join(_format_machine(machine)))
    for comp in src.components:
        blocks.append("\n".join(_format_component(comp)))
    for model in src.models:
        blocks.append("\n".join(_format_model(model)))
    return "\n\n".join(blocks) + "\n"


def _format_include(inc: IncludeDecl) -> str:  # pragma: no cover - trivial
    return f"include {inc.path}"
