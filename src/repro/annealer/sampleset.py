"""Readout containers: ensembles of spin samples with their energies.

The QPU "effectively generates a classical representation of the quantum
computation" at readout (paper Sec. 2); Stage 3 of the application model
then *sorts* the ensemble by energy — "although only the lowest energy state
is necessary, it is useful to first sort the results to identify the
multiplicity for each value and avoid redundant computation" (Sec. 3.2).
:class:`SampleSet` implements exactly that: energy-sorted storage (heapsort,
as the paper's Stage-3 model assumes), aggregation with multiplicities, and
ground-state statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..qubo import IsingModel

__all__ = ["SampleSet"]


@dataclass(frozen=True)
class SampleSet:
    """An energy-sorted ensemble of spin configurations.

    Attributes
    ----------
    samples:
        ``(k, n)`` int8 array of spins in {-1, +1}, sorted ascending by energy.
    energies:
        ``(k,)`` float64 array aligned with ``samples``.
    num_occurrences:
        ``(k,)`` int64 multiplicities (all ones unless aggregated).
    """

    samples: np.ndarray
    energies: np.ndarray
    num_occurrences: np.ndarray

    def __post_init__(self) -> None:
        s = np.asarray(self.samples, dtype=np.int8)
        e = np.asarray(self.energies, dtype=np.float64)
        o = np.asarray(self.num_occurrences, dtype=np.int64)
        if s.ndim != 2 or e.shape != (s.shape[0],) or o.shape != (s.shape[0],):
            raise ValidationError(
                f"inconsistent shapes: samples {s.shape}, energies {e.shape}, "
                f"occurrences {o.shape}"
            )
        if np.any(np.diff(e) < 0):
            raise ValidationError("samples must be sorted ascending by energy")
        for a in (s, e, o):
            a.setflags(write=False)
        object.__setattr__(self, "samples", s)
        object.__setattr__(self, "energies", e)
        object.__setattr__(self, "num_occurrences", o)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_samples(cls, model: IsingModel, samples: np.ndarray) -> "SampleSet":
        """Evaluate and heap-sort raw readout samples against ``model``.

        The sort uses NumPy's heapsort to mirror the paper's Stage-3 cost
        model (``SortOps = Results * log(Results)``).
        """
        S = np.asarray(samples, dtype=np.int8)
        if S.ndim != 2:
            raise ValidationError(f"samples must be 2-D, got shape {S.shape}")
        if not np.isin(S, (-1, 1)).all():
            raise ValidationError("samples must contain only -1/+1 spins")
        e = model.energies(S)
        order = np.argsort(e, kind="heapsort")
        return cls(S[order], e[order], np.ones(S.shape[0], dtype=np.int64))

    @classmethod
    def empty(cls, num_spins: int) -> "SampleSet":
        """A sample set with zero reads."""
        return cls(
            np.zeros((0, num_spins), dtype=np.int8),
            np.zeros(0, dtype=np.float64),
            np.zeros(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_reads(self) -> int:
        """Total number of reads, counting multiplicities."""
        return int(self.num_occurrences.sum())

    @property
    def num_rows(self) -> int:
        """Number of stored rows (distinct states if aggregated)."""
        return int(self.samples.shape[0])

    @property
    def num_spins(self) -> int:
        return int(self.samples.shape[1])

    @property
    def first(self) -> tuple[np.ndarray, float]:
        """The lowest-energy ``(state, energy)`` pair."""
        if self.num_rows == 0:
            raise ValidationError("sample set is empty")
        return self.samples[0], float(self.energies[0])

    @property
    def lowest_energy(self) -> float:
        """Lowest observed energy."""
        return self.first[1]

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def aggregated(self) -> "SampleSet":
        """Collapse duplicate states, accumulating multiplicities.

        This is the Stage-3 "identify the multiplicity for each value and
        avoid redundant computation" step.
        """
        if self.num_rows == 0:
            return self
        _, idx, inv = np.unique(
            self.samples, axis=0, return_index=True, return_inverse=True
        )
        counts = np.bincount(inv, weights=self.num_occurrences.astype(np.float64))
        reps = idx  # one representative row per unique state
        e = self.energies[reps]
        order = np.argsort(e, kind="heapsort")
        return SampleSet(
            self.samples[reps][order],
            e[order],
            counts.astype(np.int64)[order],
        )

    def truncated(self, k: int) -> "SampleSet":
        """Keep only the ``k`` lowest-energy rows."""
        if k < 0:
            raise ValidationError(f"k must be non-negative, got {k}")
        return SampleSet(self.samples[:k], self.energies[:k], self.num_occurrences[:k])

    def ground_state_probability(self, ground_energy: float, atol: float = 1e-9) -> float:
        """Empirical probability that a read landed within ``atol`` of ``ground_energy``.

        This is the paper's characteristic single-run success probability
        ``p_s`` (Sec. 3.2), estimated from the ensemble.
        """
        if self.num_reads == 0:
            raise ValidationError("cannot estimate a probability from zero reads")
        hit = self.energies <= ground_energy + atol
        return float(self.num_occurrences[hit].sum() / self.num_reads)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = f"{self.energies[0]:.6g}" if self.num_rows else "n/a"
        return (
            f"SampleSet(num_rows={self.num_rows}, num_reads={self.num_reads}, "
            f"lowest_energy={lo})"
        )
