"""Vectorized simulated-annealing sampler — the QPU physics surrogate.

The physical quantum annealer is unavailable offline, so the library follows
the substitution rule laid out in DESIGN.md: the paper's performance models
consume only the QPU's *behavioral* interface — stochastic low-energy
samples with a characteristic single-run success probability ``p_s`` — and a
heat-bath (Glauber) simulated annealer over the same embedded Ising
Hamiltonian reproduces exactly that interface.

Heat-bath acceptance ``p(flip) = 1 / (1 + exp(beta * dE))`` is used instead
of Metropolis ``min(1, exp(-beta * dE))`` deliberately: with fixed-order
sweeps, Metropolis' *deterministic* downhill moves make the composed scan
kernel non-ergodic (it acquires extra unit eigenvalues), so the chain
equilibrates to a mixture rather than the Boltzmann distribution — an
effect the statistical test suite reproduces.  Glauber probabilities are
strictly inside (0, 1) at finite beta, which restores ergodicity while
preserving the same stationary distribution per single-spin kernel.

Implementation notes (per the project's HPC guides): all ``num_reads``
replicas are annealed simultaneously as one ``(reads, spins)`` array; spins
are updated color-class by color-class (a greedy proper coloring of the
interaction graph) so that each update step is a dense-sparse matrix product
instead of a Python-level loop over spins.  Chimera graphs are bipartite, so
embedded problems need exactly two color classes per sweep.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .._rng import as_rng
from ..exceptions import SamplerError
from ..qubo import IsingModel
from .sampler import Sampler
from .sampleset import SampleSet
from .schedule import AnnealSchedule, geometric_schedule

__all__ = ["SimulatedAnnealingSampler", "color_classes"]


def color_classes(model: IsingModel) -> list[np.ndarray]:
    """Greedy proper coloring of the interaction graph, as index arrays.

    Spins within one class share no coupling, so they can be updated
    simultaneously without biasing the Metropolis dynamics.
    """
    g = model.graph()
    coloring = nx.greedy_color(g, strategy="largest_first")
    num_colors = 1 + max(coloring.values(), default=0)
    classes: list[list[int]] = [[] for _ in range(num_colors)]
    for node, color in coloring.items():
        classes[color].append(node)
    return [np.asarray(sorted(c), dtype=np.intp) for c in classes if c]


class SimulatedAnnealingSampler(Sampler):
    """Heat-bath simulated annealing over {-1, +1} spins.

    Parameters
    ----------
    schedule:
        Default :class:`AnnealSchedule`; overridable per call.

    Notes
    -----
    Energies follow the library convention
    ``E(s) = h.s + sum_{i<j} J_ij s_i s_j + offset``; flipping spin ``i``
    changes the energy by ``dE = -2 s_i (h_i + sum_j M_ij s_j)`` with ``M``
    the symmetric coupling matrix.  Acceptance is heat-bath (Glauber); see
    the module docstring for why Metropolis is avoided.
    """

    def __init__(self, schedule: AnnealSchedule | None = None):
        self.schedule = schedule or geometric_schedule()

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        schedule: AnnealSchedule | None = None,
        initial_states: np.ndarray | None = None,
        aggregate: bool = False,
    ) -> SampleSet:
        """Anneal ``num_reads`` independent replicas and return the readouts.

        Parameters
        ----------
        model:
            The Ising model to sample.
        num_reads:
            Number of independent annealing runs (the paper's repetitions).
        rng:
            Seed or generator.
        schedule:
            Inverse-temperature waveform; defaults to the sampler's.
        initial_states:
            Optional ``(num_reads, n)`` array of {-1, +1} starting spins;
            random infinite-temperature states otherwise.
        aggregate:
            If True, collapse duplicate readouts with multiplicities.
        """
        self._check_num_reads(num_reads)
        gen = as_rng(rng)
        sched = schedule or self.schedule
        n = model.num_spins
        if n == 0:
            raise SamplerError("cannot sample a zero-spin model")

        if initial_states is not None:
            S = np.array(initial_states, dtype=np.int8, copy=True)
            if S.shape != (num_reads, n):
                raise SamplerError(
                    f"initial_states must have shape ({num_reads}, {n}), got {S.shape}"
                )
            if not np.isin(S, (-1, 1)).all():
                raise SamplerError("initial_states must contain only -1/+1 spins")
        else:
            S = (gen.integers(0, 2, size=(num_reads, n), dtype=np.int8) * 2 - 1).astype(
                np.int8
            )

        h = model.h
        classes = color_classes(model)
        # Per-class coupling blocks, precomputed once: rows of the symmetric
        # coupling matrix restricted to the class, in CSR for fast
        # sparse @ dense products inside the sweep loop.
        if model.num_interactions:
            M = model.adjacency_csr()
            blocks = [M[cls, :] for cls in classes]
        else:
            blocks = [None] * len(classes)

        Sf = S.astype(np.float64)
        for beta in sched.betas:
            for cls, blk in zip(classes, blocks):
                # Local field on the class spins: f_i = h_i + sum_j M_ij s_j.
                if blk is not None:
                    f = (blk @ Sf.T).T + h[cls]
                else:
                    f = np.broadcast_to(h[cls], (num_reads, cls.size))
                dE = -2.0 * Sf[:, cls] * f
                # Heat-bath (Glauber) acceptance: p = 1 / (1 + exp(beta*dE)),
                # computed stably via clipping.
                u = gen.random((num_reads, cls.size))
                p_accept = 1.0 / (1.0 + np.exp(np.clip(beta * dE, -700.0, 700.0)))
                flip = np.where(u < p_accept, -1.0, 1.0)
                Sf[:, cls] *= flip

        final = Sf.astype(np.int8)
        out = SampleSet.from_samples(model, final)
        return out.aggregated() if aggregate else out
