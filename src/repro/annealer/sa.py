"""Vectorized simulated-annealing sampler — the QPU physics surrogate.

The physical quantum annealer is unavailable offline, so the library follows
the substitution rule laid out in DESIGN.md: the paper's performance models
consume only the QPU's *behavioral* interface — stochastic low-energy
samples with a characteristic single-run success probability ``p_s`` — and a
heat-bath (Glauber) simulated annealer over the same embedded Ising
Hamiltonian reproduces exactly that interface.

Heat-bath acceptance ``p(flip) = 1 / (1 + exp(beta * dE))`` is used instead
of Metropolis ``min(1, exp(-beta * dE))`` deliberately: with fixed-order
sweeps, Metropolis' *deterministic* downhill moves make the composed scan
kernel non-ergodic (it acquires extra unit eigenvalues), so the chain
equilibrates to a mixture rather than the Boltzmann distribution — an
effect the statistical test suite reproduces.  Glauber probabilities are
strictly inside (0, 1) at finite beta, which restores ergodicity while
preserving the same stationary distribution per single-spin kernel.

Implementation notes (per the project's HPC guides and DESIGN.md's
"Performance architecture"): all ``num_reads`` replicas are annealed
simultaneously as one state matrix; spins are updated color-class by
color-class (a greedy proper coloring of the interaction graph) so that each
update step is a dense-sparse matrix product instead of a Python-level loop
over spins.  Chimera graphs are bipartite, so embedded problems need exactly
two color classes per sweep.  The per-model sweep structure — the CSR
coupling matrix, the coloring, and the per-class coupling blocks in a
spin-permuted layout that makes every class a *contiguous* row block of the
state matrix — is memoized on the immutable :class:`IsingModel`, so repeated
``sample()`` calls on one model (the paper's Eq.-6 repetition batches) pay
for structure exactly once.  Per-sweep uniforms are drawn with a single
generator call into a preallocated buffer, and acceptance probabilities use
``scipy.special.expit``.  The permuted coupling blocks keep each row's
stored entries in the *original* column order, so every floating-point
accumulation matches the pre-optimization implementation bit for bit — for
a fixed seed the sampler returns bit-identical samples (pinned by the
golden-seed reproducibility tests).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.special import expit

def _probe_csr_matvecs():
    """Import scipy's private CSR multivector kernel, or ``None`` to fall back.

    ``csr_matvecs`` carries no API-stability promise, so a tiny smoke
    multiplication guards against signature drift as well as removal; any
    failure downgrades every sweep to the public ``csr @ dense`` path.
    """
    try:  # pragma: no cover - exercised indirectly; absence is a soft fallback
        from scipy.sparse._sparsetools import csr_matvecs

        y = np.zeros(2)
        csr_matvecs(
            1, 1, 2,
            np.array([0, 1], dtype=np.int64), np.array([0], dtype=np.int64),
            np.array([2.0]), np.array([3.0, 4.0]), y,
        )
        if not np.array_equal(y, [6.0, 8.0]):
            return None
        return csr_matvecs
    except Exception:  # pragma: no cover
        return None


_csr_matvecs = _probe_csr_matvecs()

from .._rng import as_rng
from ..exceptions import SamplerError
from ..qubo import IsingModel
from .sampler import Sampler
from .sampleset import SampleSet
from .schedule import AnnealSchedule, geometric_schedule

__all__ = ["SimulatedAnnealingSampler", "color_classes"]


def color_classes(model: IsingModel) -> list[np.ndarray]:
    """Greedy proper coloring of the interaction graph, as index arrays.

    Spins within one class share no coupling, so they can be updated
    simultaneously without biasing the single-spin dynamics.  The coloring
    is memoized on the (immutable) model; see
    :meth:`repro.qubo.ising.IsingModel.color_classes`.
    """
    return list(model.color_classes())


class _SweepPlan:
    """Per-model sweep structure, computed once and memoized on the model.

    Attributes
    ----------
    perm:
        Spin permutation concatenating the color classes, so class ``k``
        occupies the contiguous row block ``starts[k]:starts[k+1]`` of the
        permuted ``(n, num_reads)`` state matrix.
    h_cols:
        Permuted local fields as an ``(n, 1)`` column, ready to broadcast.
    blocks:
        Per-class CSR fragments ``(indptr, indices, data, csr)`` of the
        symmetric coupling matrix: rows are the class spins (ascending, as
        in the unpermuted implementation), columns live in the permuted
        space.  Each row's stored entries keep the original ascending-column
        data order, which keeps every dot-product accumulation bit-identical
        to the unpermuted CSR products.  ``None`` for coupling-free models.
    """

    __slots__ = ("n", "perm", "starts", "h_cols", "blocks", "_workspaces")

    def __init__(self, model: IsingModel):
        classes = model.color_classes()
        n = model.num_spins
        self.n = n
        self.perm = np.concatenate(classes) if classes else np.arange(0, dtype=np.intp)
        sizes = [c.size for c in classes]
        self.starts = np.concatenate([[0], np.cumsum(sizes)]).astype(np.intp)
        self.h_cols = np.ascontiguousarray(model.h[self.perm])[:, None]

        if model.num_interactions:
            inv = np.empty(n, dtype=self.perm.dtype)
            inv[self.perm] = np.arange(n, dtype=self.perm.dtype)
            rows_p = model.adjacency_csr()[self.perm, :]
            indices_p = inv[rows_p.indices]
            self.blocks = []
            for k in range(len(classes)):
                lo, hi = self.starts[k], self.starts[k + 1]
                p0, p1 = rows_p.indptr[lo], rows_p.indptr[hi]
                indptr = (rows_p.indptr[lo : hi + 1] - p0).astype(np.int64)
                indices = indices_p[p0:p1].astype(np.int64)
                data = rows_p.data[p0:p1]
                csr = sp.csr_array((data, indices, indptr), shape=(hi - lo, n))
                self.blocks.append((indptr, indices, data, csr))
        else:
            self.blocks = None
        self._workspaces: dict[int, _Workspace] = {}

    #: Workspaces kept per plan.  Bounds memory when one long-lived model is
    #: sampled with many distinct read counts (a reads-scaling study): only
    #: the most recently used few buffer sets stay alive.
    _MAX_WORKSPACES = 4

    def workspace(self, num_reads: int) -> "_Workspace":
        """The (cached, LRU-bounded) per-read-count buffer set for sweeps."""
        ws = self._workspaces.pop(num_reads, None)
        if ws is None:
            if len(self._workspaces) >= self._MAX_WORKSPACES:
                self._workspaces.pop(next(iter(self._workspaces)))
            ws = _Workspace(self, num_reads)
        self._workspaces[num_reads] = ws  # reinsert: dict order is LRU order
        return ws


class _Workspace:
    """Preallocated sweep buffers for one ``(model, num_reads)`` shape.

    Holds the permuted ``(n, num_reads)`` state matrix, the per-sweep
    uniform buffer, and one step tuple per color class bundling everything
    the inner loop touches (state block view, field/probability buffer,
    uniform view, permuted fields, CSR fragment).  Cached on the
    :class:`_SweepPlan`, so repeated same-shape ``sample()`` calls allocate
    nothing in the sweep loop.  ``sample()`` is synchronous and rewrites the
    state buffer on entry; the cache is not guarded against concurrent calls
    on one model from multiple threads (nothing in the sampler is).
    """

    __slots__ = ("Sp", "Sp_flat", "U", "steps")

    def __init__(self, plan: _SweepPlan, num_reads: int):
        n = plan.n
        starts, blocks = plan.starts, plan.blocks
        self.Sp = np.empty((n, num_reads), dtype=np.float64)
        self.Sp_flat = self.Sp.reshape(-1)
        self.U = np.empty(num_reads * n, dtype=np.float64)
        self.steps = []
        for k in range(starts.shape[0] - 1):
            lo, hi = starts[k], starts[k + 1]
            F = np.empty((hi - lo, num_reads))
            # Transposed view so element (spin, read) matches the
            # (read, spin) draw order of the reference implementation.
            u_view = (
                self.U[lo * num_reads : hi * num_reads]
                .reshape(num_reads, hi - lo)
                .T
            )
            block = blocks[k] if blocks is not None else None
            self.steps.append(
                (hi - lo, self.Sp[lo:hi], F, F.reshape(-1), u_view,
                 plan.h_cols[lo:hi], block)
            )


class SimulatedAnnealingSampler(Sampler):
    """Heat-bath simulated annealing over {-1, +1} spins.

    Parameters
    ----------
    schedule:
        Default :class:`AnnealSchedule`; overridable per call.

    Notes
    -----
    Energies follow the library convention
    ``E(s) = h.s + sum_{i<j} J_ij s_i s_j + offset``; flipping spin ``i``
    changes the energy by ``dE = -2 s_i (h_i + sum_j M_ij s_j)`` with ``M``
    the symmetric coupling matrix.  Acceptance is heat-bath (Glauber); see
    the module docstring for why Metropolis is avoided.
    """

    def __init__(self, schedule: AnnealSchedule | None = None):
        self.schedule = schedule or geometric_schedule()

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        schedule: AnnealSchedule | None = None,
        initial_states: np.ndarray | None = None,
        aggregate: bool = False,
    ) -> SampleSet:
        """Anneal ``num_reads`` independent replicas and return the readouts.

        Parameters
        ----------
        model:
            The Ising model to sample.
        num_reads:
            Number of independent annealing runs (the paper's repetitions).
        rng:
            Seed or generator.
        schedule:
            Inverse-temperature waveform; defaults to the sampler's.
        initial_states:
            Optional ``(num_reads, n)`` array of {-1, +1} starting spins;
            random infinite-temperature states otherwise.
        aggregate:
            If True, collapse duplicate readouts with multiplicities.
        """
        self._check_num_reads(num_reads)
        gen = as_rng(rng)
        sched = schedule or self.schedule
        n = model.num_spins
        if n == 0:
            raise SamplerError("cannot sample a zero-spin model")

        if initial_states is not None:
            S = np.array(initial_states, dtype=np.int8, copy=True)
            if S.shape != (num_reads, n):
                raise SamplerError(
                    f"initial_states must have shape ({num_reads}, {n}), got {S.shape}"
                )
            if not np.isin(S, (-1, 1)).all():
                raise SamplerError("initial_states must contain only -1/+1 spins")
        else:
            S = (gen.integers(0, 2, size=(num_reads, n), dtype=np.int8) * 2 - 1).astype(
                np.int8
            )

        plan: _SweepPlan = model._memo("sa_sweep_plan", lambda: _SweepPlan(model))

        # Cached buffers for this (model, num_reads) shape: the sweep loop
        # below touches only preallocated arrays and views.
        ws = plan.workspace(num_reads)
        Sp, Sp_flat, U, steps = ws.Sp, ws.Sp_flat, ws.U, ws.steps
        # Permuted state: class k is the contiguous row block of Sp given by
        # the plan's starts; int8 -> float64 conversion happens in-place.
        Sp[...] = S.T[plan.perm]

        fill = np.copyto  # np.copyto(F, 0.0) ~ F.fill(0.0), bound once
        for beta in sched.betas:
            gen.random(out=U)
            # Glauber acceptance is p = expit(2 * beta * s * (h + M s));
            # doubling is exact, so the single fused scale below matches the
            # reference's dE = -2 s (h + M s), p = expit(-beta * dE) bit for
            # bit.
            scale = 2.0 * beta
            for csize, Sk, F, F_flat, u_view, h_col, block in steps:
                if block is not None:
                    indptr, indices, data, csr = block
                    if _csr_matvecs is not None:
                        fill(F, 0.0)
                        _csr_matvecs(
                            csize, n, num_reads, indptr, indices, data,
                            Sp_flat, F_flat,
                        )
                    else:
                        F[...] = csr @ Sp
                    F += h_col
                    np.multiply(Sk, F, out=F)
                else:
                    np.multiply(Sk, h_col, out=F)
                F *= scale
                expit(F, out=F)
                # flip = copysign(1, u - p): -1 exactly where u < p (ties
                # u == p give +0 -> +1, matching the reference's strict <).
                np.subtract(u_view, F, out=F)
                np.copysign(1.0, F, out=F)
                Sk *= F

        final = np.empty((num_reads, n), dtype=np.int8)
        final[:, plan.perm] = Sp.T
        out = SampleSet.from_samples(model, final)
        return out.aggregated() if aggregate else out
