"""Composable sampler layers (the dimod composite pattern).

The paper's middleware stack (Fig. 2) wraps the QPU in layers — embedding,
parameter setting, decoding, post-processing — each of which consumes a
problem, delegates a transformed problem to the layer below, and maps the
results back.  This module adopts dimod's *composed sampler* pattern for
that stack: a :class:`ComposedSampler` wraps any :class:`Sampler` (bare or
itself composed), preserving the full ``sample`` / :class:`SampleSet`
contract, so layers stack freely::

    sampler = TruncateComposite(
        FixedVariableComposite(
            EmbeddingComposite(SimulatedAnnealingSampler(), device=device),
            fixed={0: +1},
        ),
        k=5,
    )
    result = sampler.sample(model, num_reads=50, rng=7)

Every composite returns energies evaluated against the *original* logical
model (re-sorted ascending), so differential tests against the bare child
sampler compare like with like.
"""

from __future__ import annotations

import math
from typing import Mapping

import numpy as np

from .._rng import as_rng
from ..embedding import Embedding, embed_ising, find_embedding_cmr
from ..exceptions import SamplerError
from ..qubo import IsingModel
from .sampler import Sampler
from .sampleset import SampleSet
from .schedule import AnnealSchedule, linear_schedule

__all__ = [
    "ComposedSampler",
    "EmbeddingComposite",
    "FixedVariableComposite",
    "TruncateComposite",
    "ParallelTemperingComposite",
]


class ComposedSampler(Sampler):
    """A sampler that delegates to a wrapped child sampler.

    Subclasses transform the model on the way down and/or the sample set on
    the way up; the child may itself be composed, so layers stack to any
    depth.  ``unwrapped`` walks to the innermost bare sampler.
    """

    def __init__(self, child: Sampler) -> None:
        if not isinstance(child, Sampler):
            raise SamplerError(
                f"child must be a Sampler, got {type(child).__name__}"
            )
        self.child = child

    @property
    def children(self) -> tuple[Sampler, ...]:
        return (self.child,)

    @property
    def unwrapped(self) -> Sampler:
        """The innermost non-composed sampler of the stack."""
        s: Sampler = self.child
        while isinstance(s, ComposedSampler):
            s = s.child
        return s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.child!r})"


def _resorted(samples: np.ndarray, model: IsingModel, occurrences: np.ndarray) -> SampleSet:
    """Build a SampleSet from decoded samples, re-evaluated on ``model``.

    Heapsort mirrors the paper's Stage-3 sort; occurrences follow their rows.
    """
    e = model.energies(np.asarray(samples, dtype=np.int8))
    order = np.argsort(e, kind="heapsort")
    return SampleSet(
        np.asarray(samples, dtype=np.int8)[order],
        e[order],
        np.asarray(occurrences, dtype=np.int64)[order],
    )


class TruncateComposite(ComposedSampler):
    """Keep only the ``k`` lowest-energy rows of the child's sample set.

    The composite form of ``SampleSet.truncated`` — the paper's "only the
    lowest energy state is necessary" observation applied as a middleware
    layer.
    """

    def __init__(self, child: Sampler, k: int) -> None:
        super().__init__(child)
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise SamplerError(f"k must be a positive integer, got {k!r}")
        self.k = k

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        **kwargs,
    ) -> SampleSet:
        result = self.child.sample(model, num_reads=num_reads, rng=rng, **kwargs)
        if result.num_rows <= self.k:
            return result
        return result.truncated(self.k)


class FixedVariableComposite(ComposedSampler):
    """Fix selected spins, sample the reduced model, reinsert the spins.

    Fixing spin ``i`` to ``s_i`` folds its field into the offset
    (``offset += h_i s_i``), its couplings to free neighbors into their
    fields (``h_j += J_ij s_i``), and fixed-fixed couplings into the offset.
    Returned energies are re-evaluated against the *original* model, so they
    agree with the bare sampler's accounting.
    """

    def __init__(self, child: Sampler, fixed: Mapping[int, int]) -> None:
        super().__init__(child)
        clean: dict[int, int] = {}
        for var, spin in dict(fixed).items():
            if isinstance(var, bool) or not isinstance(var, (int, np.integer)):
                raise SamplerError(f"fixed variable indices must be ints, got {var!r}")
            if spin not in (-1, 1):
                raise SamplerError(
                    f"fixed values must be -1 or +1 spins, got {var}: {spin!r}"
                )
            clean[int(var)] = int(spin)
        self.fixed = clean

    def _reduced_model(self, model: IsingModel) -> tuple[IsingModel, list[int]]:
        n = model.num_spins
        for var in self.fixed:
            if not 0 <= var < n:
                raise SamplerError(
                    f"fixed variable {var} out of range for a {n}-spin model"
                )
        free = [i for i in range(n) if i not in self.fixed]
        pos = {orig: new for new, orig in enumerate(free)}
        h = model.h
        h_red = [float(h[i]) for i in free]
        offset = float(model.offset)
        for i, s in self.fixed.items():
            offset += float(h[i]) * s
        couplings: dict[tuple[int, int], float] = {}
        for i, j, v in model.iter_couplings():
            si = self.fixed.get(i)
            sj = self.fixed.get(j)
            if si is not None and sj is not None:
                offset += v * si * sj
            elif si is not None:
                h_red[pos[j]] += v * si
            elif sj is not None:
                h_red[pos[i]] += v * sj
            else:
                a, b = pos[i], pos[j]
                key = (min(a, b), max(a, b))
                couplings[key] = couplings.get(key, 0.0) + v
        return IsingModel(h_red, couplings, offset), free

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        **kwargs,
    ) -> SampleSet:
        self._check_num_reads(num_reads)
        reduced, free = self._reduced_model(model)
        n = model.num_spins
        if not self.fixed:
            return self.child.sample(model, num_reads=num_reads, rng=rng, **kwargs)
        if not free:
            # Fully determined: no sampling left to do.
            state = np.array([self.fixed[i] for i in range(n)], dtype=np.int8)
            S = np.repeat(state[None, :], num_reads, axis=0)
            return _resorted(S, model, np.ones(num_reads, dtype=np.int64))
        sub = self.child.sample(reduced, num_reads=num_reads, rng=rng, **kwargs)
        full = np.empty((sub.num_rows, n), dtype=np.int8)
        full[:, free] = sub.samples
        for i, s in self.fixed.items():
            full[:, i] = s
        return _resorted(full, model, sub.num_occurrences)


class EmbeddingComposite(ComposedSampler):
    """Minor-embed the problem into a device's working graph, then sample.

    The middleware embedding layer as a composite: the logical interaction
    graph is CMR-embedded into ``device.working_graph``, parameters are set
    (fields spread over chains, couplings over couplers, ferromagnetic chain
    couplers added), the *physical* model is handed to the child sampler,
    and readouts are decoded back through the chains (majority vote on
    broken chains).  Energies are re-evaluated on the logical model.

    The child — not the device's own sampler — does the sampling, so any
    sampler or composite stack can sit under the embedding layer.
    """

    def __init__(
        self,
        child: Sampler,
        device=None,
        chain_strength: float | None = None,
    ) -> None:
        super().__init__(child)
        if device is None:
            from .device import DWaveDevice

            device = DWaveDevice()
        if chain_strength is not None and not (
            math.isfinite(chain_strength) and chain_strength > 0
        ):
            raise SamplerError(
                f"chain_strength must be positive and finite, got {chain_strength!r}"
            )
        self.device = device
        self.chain_strength = chain_strength

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        embedding: Embedding | None = None,
        **kwargs,
    ) -> SampleSet:
        self._check_num_reads(num_reads)
        gen = as_rng(rng)
        if embedding is None:
            embedding = find_embedding_cmr(
                model.graph(), self.device.working_graph, rng=gen
            )
        embedded = embed_ising(
            model,
            embedding,
            self.device.working_graph,
            chain_strength=self.chain_strength,
        )
        physical = self.child.sample(
            embedded.physical, num_reads=num_reads, rng=gen, **kwargs
        )
        decoded = embedded.unembed(physical.samples)
        return _resorted(decoded, model, physical.num_occurrences)


class ParallelTemperingComposite(ComposedSampler):
    """Replica-exchange wrapper over an annealing-style child sampler.

    Maintains ``num_replicas`` temperature rungs, each a beta-scaled copy of
    the base schedule (hot rungs explore, the coldest exploits).  Each round
    re-anneals every rung from its current states via the child, then
    proposes Metropolis swaps between adjacent rungs with the standard
    acceptance ``min(1, exp((beta_a - beta_b) (E_a - E_b)))``.  The coldest
    rung's final ensemble is returned, evaluated on the model.

    The child must accept ``schedule`` and ``initial_states`` keyword
    options (the :class:`SimulatedAnnealingSampler` contract); samplers that
    reject them — e.g. ``ExactSolver`` — raise their own ``SamplerError``.
    """

    def __init__(
        self,
        child: Sampler,
        num_replicas: int = 4,
        rounds: int = 3,
        hot_factor: float = 0.25,
        schedule: AnnealSchedule | None = None,
    ) -> None:
        super().__init__(child)
        if not isinstance(num_replicas, int) or num_replicas < 2:
            raise SamplerError(f"num_replicas must be an int >= 2, got {num_replicas!r}")
        if not isinstance(rounds, int) or rounds < 1:
            raise SamplerError(f"rounds must be an int >= 1, got {rounds!r}")
        if not (math.isfinite(hot_factor) and 0 < hot_factor <= 1):
            raise SamplerError(
                f"hot_factor must lie in (0, 1], got {hot_factor!r}"
            )
        self.num_replicas = num_replicas
        self.rounds = rounds
        self.hot_factor = hot_factor
        self.schedule = schedule

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        schedule: AnnealSchedule | None = None,
        **kwargs,
    ) -> SampleSet:
        self._check_num_reads(num_reads)
        gen = as_rng(rng)
        n = model.num_spins
        if n == 0:
            raise SamplerError("cannot sample a zero-spin model")
        base = schedule or self.schedule or linear_schedule()
        scales = np.geomspace(self.hot_factor, 1.0, self.num_replicas)
        ladder = [AnnealSchedule(base.betas * s) for s in scales]
        beta_top = np.array([rung.betas[-1] for rung in ladder])

        states = [
            (gen.integers(0, 2, size=(num_reads, n), dtype=np.int8) * 2 - 1).astype(
                np.int8
            )
            for _ in range(self.num_replicas)
        ]
        energies = [model.energies(S) for S in states]

        for _ in range(self.rounds):
            for r in range(self.num_replicas):
                result = self.child.sample(
                    model,
                    num_reads=num_reads,
                    rng=gen,
                    schedule=ladder[r],
                    initial_states=states[r],
                    **kwargs,
                )
                states[r] = np.array(result.samples, dtype=np.int8, copy=True)
                energies[r] = np.array(result.energies, dtype=np.float64, copy=True)
            # Replica exchange: hot rung r vs colder rung r + 1, per replica.
            for r in range(self.num_replicas - 1):
                delta = (beta_top[r] - beta_top[r + 1]) * (
                    energies[r] - energies[r + 1]
                )
                accept = gen.random(num_reads) < np.exp(np.minimum(delta, 0.0))
                if not np.any(accept):
                    continue
                for arrays in (states, energies):
                    hot = arrays[r][accept].copy()
                    arrays[r][accept] = arrays[r + 1][accept]
                    arrays[r + 1][accept] = hot

        return SampleSet.from_samples(model, states[-1])
