"""Exact sampler: exhaustive enumeration packaged behind the Sampler API.

Used as ground truth for validating the simulated annealer, for estimating
the true ground energy when computing the characteristic success probability
``p_s``, and as the reference solver in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import SamplerError
from ..qubo import IsingModel, brute_force_ising
from .sampler import Sampler
from .sampleset import SampleSet

__all__ = ["ExactSolver"]


class ExactSolver(Sampler):
    """Enumerates the full state space (practical up to ~24 spins).

    ``sample`` deterministically returns the ``num_reads`` *distinct*
    lowest-energy states, each with multiplicity 1 (padding with the worst
    returned state when the space holds fewer than ``num_reads`` states).
    It is a "perfect annealer" in the sense that the true ground state is
    always present in the ensemble — but NOT in the sense of repeated
    ground-state draws: because the reads are distinct states,
    ``SampleSet.ground_state_probability`` evaluates to ``g / num_reads``
    (``g`` = ground-state degeneracy), e.g. ``1 / num_reads`` for a unique
    ground state, not 1.  Use ``num_reads=1`` (the default) when the success
    probability itself is the quantity of interest.
    """

    def __init__(self, max_spins: int = 24):
        if max_spins < 1:
            raise SamplerError(f"max_spins must be >= 1, got {max_spins}")
        self.max_spins = max_spins

    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        **kwargs,
    ) -> SampleSet:
        self._check_num_reads(num_reads)
        if kwargs:
            raise SamplerError(f"ExactSolver got unexpected options {sorted(kwargs)}")
        n = model.num_spins
        if n > self.max_spins:
            raise SamplerError(
                f"{n} spins exceeds ExactSolver limit of {self.max_spins}; "
                "use the simulated annealer"
            )
        states, energies = brute_force_ising(model, num_best=min(num_reads, 1 << n))
        if states.shape[0] < num_reads:
            # Fewer distinct states than requested reads: repeat the worst
            # returned state so multiplicity accounting stays consistent.
            pad = num_reads - states.shape[0]
            states = np.vstack([states, np.repeat(states[-1:], pad, axis=0)])
            energies = np.concatenate([energies, np.repeat(energies[-1:], pad)])
        occ = np.ones(states.shape[0], dtype=np.int64)
        return SampleSet(states.astype(np.int8), energies, occ)

    def ground_energy(self, model: IsingModel) -> float:
        """Exact minimum energy of the model."""
        if model.num_spins > self.max_spins:
            raise SamplerError(
                f"{model.num_spins} spins exceeds ExactSolver limit of {self.max_spins}"
            )
        _, e = brute_force_ising(model, num_best=1)
        return float(e[0])
