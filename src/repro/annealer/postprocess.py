"""Classical post-processing of readout samples: greedy local descent.

Production annealing systems optionally refine raw readouts with a fast
classical local search before returning them (the paper's MW layer "may
[perform] additional post-processing to construct a solution to the
original problem", Sec. 2).  This module implements vectorized steepest
descent: every sample walks downhill by single-spin flips until no flip
lowers its energy.  The refinement never increases a sample's energy and
strictly improves any sample that is not already a local minimum.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..qubo import IsingModel
from .sampleset import SampleSet

__all__ = ["greedy_descent", "refine_sampleset"]


def greedy_descent(
    model: IsingModel,
    samples: np.ndarray,
    max_sweeps: int = 1000,
) -> np.ndarray:
    """Steepest-descend each sample to a single-spin-flip local minimum.

    Parameters
    ----------
    model:
        The Ising model defining the energy landscape.
    samples:
        ``(k, n)`` array of spins in {-1, +1}.
    max_sweeps:
        Safety bound on descent rounds (each round flips the single best
        spin per sample; descent terminates in at most ``n * range``
        rounds regardless).

    Returns
    -------
    numpy.ndarray
        ``(k, n)`` int8 array of locally-minimal spins.
    """
    S = np.array(samples, dtype=np.float64, copy=True)
    if S.ndim != 2 or S.shape[1] != model.num_spins:
        raise ValidationError(
            f"expected samples of shape (k, {model.num_spins}), got {S.shape}"
        )
    if max_sweeps < 1:
        raise ValidationError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if S.size == 0:
        return S.astype(np.int8)
    if not np.isin(S, (-1.0, 1.0)).all():
        raise ValidationError("samples must contain only -1/+1 spins")

    h = model.h
    M = model.adjacency_csr() if model.num_interactions else None

    for _ in range(max_sweeps):
        # dE[r, i] = energy change from flipping spin i of sample r.
        fields = (M @ S.T).T if M is not None else np.zeros_like(S)
        dE = -2.0 * S * (h[None, :] + fields)
        best = np.argmin(dE, axis=1)
        rows = np.arange(S.shape[0])
        improving = dE[rows, best] < -1e-12
        if not improving.any():
            break
        flip_rows = rows[improving]
        S[flip_rows, best[improving]] *= -1.0
    return S.astype(np.int8)


def refine_sampleset(
    model: IsingModel,
    sampleset: SampleSet,
    max_sweeps: int = 1000,
) -> SampleSet:
    """Greedy-descend every sample of a :class:`SampleSet` and re-sort.

    Multiplicities are preserved; energies are recomputed against ``model``.
    """
    if sampleset.num_rows == 0:
        return sampleset
    refined = greedy_descent(model, sampleset.samples, max_sweeps=max_sweeps)
    energies = model.energies(refined)
    order = np.argsort(energies, kind="heapsort")
    return SampleSet(
        refined[order],
        energies[order],
        sampleset.num_occurrences[order],
    )
