"""Annealing schedules.

The QPU's "schedule for annealing the system to the final Hamiltonian …
characterized by the temporal waveform and duration" is a program option
(paper Sec. 2.2), restricted by the control hardware to pre-defined ranges.
For the simulated annealer standing in for the quantum hardware, the
schedule is the sequence of inverse temperatures (betas) applied across
Metropolis sweeps; the same monotone-waveform restriction is enforced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = ["AnnealSchedule", "linear_schedule", "geometric_schedule"]


@dataclass(frozen=True)
class AnnealSchedule:
    """A sweep-indexed inverse-temperature waveform.

    Attributes
    ----------
    betas:
        Monotonically non-decreasing array; one Metropolis sweep is
        performed at each value.
    """

    betas: np.ndarray

    def __post_init__(self) -> None:
        b = np.asarray(self.betas, dtype=np.float64)
        if b.ndim != 1 or b.size == 0:
            raise ValidationError("schedule must be a non-empty 1-D array of betas")
        if not np.all(np.isfinite(b)):
            raise ValidationError(
                "betas must be finite (NaN/inf would pass the sign and "
                "monotonicity checks unnoticed)"
            )
        if np.any(b < 0):
            raise ValidationError("betas must be non-negative")
        if np.any(np.diff(b) < 0):
            raise ValidationError(
                "betas must be non-decreasing (the control system only supports "
                "monotone annealing waveforms)"
            )
        b = b.copy()
        b.setflags(write=False)
        object.__setattr__(self, "betas", b)

    @property
    def num_sweeps(self) -> int:
        return int(self.betas.shape[0])

    def stretched(self, factor: float) -> "AnnealSchedule":
        """A schedule with ``round(factor * num_sweeps)`` sweeps, same waveform.

        Models changing the annealing *duration* while keeping its shape —
        the user-settable option the paper notes for the D-Wave QPU.
        """
        if not (math.isfinite(factor) and factor > 0):
            raise ValidationError(f"factor must be positive and finite, got {factor}")
        m = max(1, round(self.num_sweeps * factor))
        x_old = np.linspace(0.0, 1.0, self.num_sweeps)
        x_new = np.linspace(0.0, 1.0, m)
        return AnnealSchedule(np.interp(x_new, x_old, self.betas))


def linear_schedule(
    num_sweeps: int = 256, beta_min: float = 0.05, beta_max: float = 8.0
) -> AnnealSchedule:
    """Linearly interpolated betas from ``beta_min`` to ``beta_max``."""
    if num_sweeps < 1:
        raise ValidationError(f"num_sweeps must be >= 1, got {num_sweeps}")
    if not (math.isfinite(beta_min) and math.isfinite(beta_max)):
        raise ValidationError("beta_min and beta_max must be finite")
    if not 0 <= beta_min <= beta_max:
        raise ValidationError("need 0 <= beta_min <= beta_max")
    return AnnealSchedule(np.linspace(beta_min, beta_max, num_sweeps))


def geometric_schedule(
    num_sweeps: int = 256, beta_min: float = 0.05, beta_max: float = 8.0
) -> AnnealSchedule:
    """Geometrically interpolated betas (more sweeps at low temperature)."""
    if num_sweeps < 1:
        raise ValidationError(f"num_sweeps must be >= 1, got {num_sweeps}")
    if not (math.isfinite(beta_min) and math.isfinite(beta_max)):
        raise ValidationError("beta_min and beta_max must be finite")
    if not 0 < beta_min <= beta_max:
        raise ValidationError("need 0 < beta_min <= beta_max")
    return AnnealSchedule(np.geomspace(beta_min, beta_max, num_sweeps))
