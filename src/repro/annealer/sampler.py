"""The abstract sampler interface shared by all solvers.

A sampler consumes an Ising model and produces a :class:`SampleSet` — the
behavioral contract of the QPU as the paper models it: "a probabilistic
processor, [for which] multiple runs are required to collect statistics and
build confidence that the lowest observed energy state is likely the global
minimum" (Sec. 3.2).
"""

from __future__ import annotations

import abc

import numpy as np

from ..exceptions import SamplerError
from ..qubo import IsingModel, Qubo, qubo_to_ising
from .sampleset import SampleSet

__all__ = ["Sampler"]


class Sampler(abc.ABC):
    """Base class for Ising samplers."""

    @abc.abstractmethod
    def sample(
        self,
        model: IsingModel,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        **kwargs,
    ) -> SampleSet:
        """Draw ``num_reads`` samples from (an approximation of) the model's
        low-energy distribution, returned sorted by energy."""

    def sample_qubo(
        self,
        qubo: Qubo,
        num_reads: int = 1,
        rng: np.random.Generator | int | None = None,
        **kwargs,
    ) -> SampleSet:
        """Convenience wrapper: convert to Ising (Eqs. 4-5) and sample.

        Energies in the returned set are QUBO energies (offset included in
        the conversion), with spin states; map ``b = (s + 1) / 2``.
        """
        return self.sample(qubo_to_ising(qubo), num_reads=num_reads, rng=rng, **kwargs)

    @staticmethod
    def _check_num_reads(num_reads: int) -> None:
        if num_reads < 1:
            raise SamplerError(f"num_reads must be >= 1, got {num_reads}")
