"""The simulated D-Wave device: hardware + embedding + sampling + timing.

This facade is the library's stand-in for the physical QPU server.  It wires
together every hardware-side substrate exactly as the paper's middleware
stack does (Fig. 2): the logical problem is minor-embedded into the working
(fault-reduced) Chimera graph, parameters are set and degraded to the
control precision, the register is "annealed" by the simulated-annealing
surrogate, readouts are decoded back through the chains, and every step is
charged its DW2 timing cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._rng import as_rng
from ..embedding import (
    EmbeddedIsing,
    Embedding,
    embed_ising,
    find_embedding_cmr,
)
from ..embedding.unembedding import chain_break_fraction
from ..exceptions import SamplerError
from ..hardware import (
    DW2_PROPERTIES,
    DW2_TIMING,
    DW2X,
    PERFECT_YIELD,
    ChimeraTopology,
    DeviceProperties,
    DWaveTimingModel,
    FaultModel,
    ProgrammingReport,
    program_ising,
)
from ..qubo import IsingModel, Qubo, qubo_to_ising
from .sa import SimulatedAnnealingSampler
from .sampler import Sampler
from .sampleset import SampleSet
from .schedule import AnnealSchedule

__all__ = ["DeviceTiming", "DeviceResult", "DWaveDevice"]


@dataclass(frozen=True)
class DeviceTiming:
    """Wall-clock accounting of one device call (microseconds)."""

    programming_us: float
    anneal_us: float
    readout_us: float
    thermalization_us: float

    @property
    def sampling_us(self) -> float:
        """Total per-read pipeline time (anneal + readout + thermalization)."""
        return self.anneal_us + self.readout_us + self.thermalization_us

    @property
    def total_us(self) -> float:
        return self.programming_us + self.sampling_us

    @property
    def total_s(self) -> float:
        return self.total_us * 1e-6


@dataclass(frozen=True)
class DeviceResult:
    """Everything returned by one :meth:`DWaveDevice.solve_ising` call."""

    logical: SampleSet
    physical: SampleSet
    embedded: EmbeddedIsing
    programming: ProgrammingReport
    timing: DeviceTiming
    chain_break_fraction: float

    @property
    def best_state(self) -> np.ndarray:
        """Lowest-energy decoded logical state."""
        return self.logical.first[0]

    @property
    def best_energy(self) -> float:
        """Lowest decoded logical energy."""
        return self.logical.first[1]


class DWaveDevice:
    """A behaviorally faithful, timing-annotated QPU simulator.

    Parameters
    ----------
    topology:
        The Chimera lattice (default: the 1152-qubit DW2X of the paper).
    faults:
        Fabrication faults to remove from the lattice.
    properties:
        Programmable ranges / DAC precision.
    timing:
        DW2 timing constants; ``timing.anneal_us`` is the annealing duration.
    sampler:
        The physics surrogate (default: simulated annealing).
    """

    def __init__(
        self,
        topology: ChimeraTopology = DW2X,
        faults: FaultModel = PERFECT_YIELD,
        properties: DeviceProperties = DW2_PROPERTIES,
        timing: DWaveTimingModel = DW2_TIMING,
        sampler: Sampler | None = None,
    ) -> None:
        self.topology = topology
        self.faults = faults
        self.properties = properties
        self.timing = timing
        self.sampler = sampler or SimulatedAnnealingSampler()
        self.working_graph = topology.working_graph(faults)

    @property
    def num_working_qubits(self) -> int:
        """Qubits that survived fault deactivation."""
        return self.working_graph.number_of_nodes()

    # ------------------------------------------------------------------ #
    # Embedding
    # ------------------------------------------------------------------ #
    def embed(
        self,
        logical: IsingModel,
        rng: np.random.Generator | int | None = None,
    ) -> Embedding:
        """Minor-embed the logical interaction graph with the CMR heuristic."""
        return find_embedding_cmr(logical.graph(), self.working_graph, rng=rng)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve_ising(
        self,
        logical: IsingModel,
        num_reads: int = 100,
        embedding: Embedding | None = None,
        chain_strength: float | None = None,
        schedule: AnnealSchedule | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> DeviceResult:
        """Run the full middleware pipeline on a logical Ising model.

        Embed (unless a precomputed ``embedding`` is supplied — the paper's
        *offline embedding* alternative), set parameters, program with
        precision loss, sample, decode, and account for time.
        """
        if num_reads < 1:
            raise SamplerError(f"num_reads must be >= 1, got {num_reads}")
        gen = as_rng(rng)
        if embedding is None:
            embedding = self.embed(logical, rng=gen)

        embedded = embed_ising(
            logical, embedding, self.working_graph, chain_strength=chain_strength
        )
        programmed, report = program_ising(embedded.physical, self.properties)

        kwargs = {"schedule": schedule} if schedule is not None else {}
        physical = self.sampler.sample(programmed, num_reads=num_reads, rng=gen, **kwargs)

        decoded = embedded.unembed(physical.samples)
        logical_set = SampleSet.from_samples(logical, decoded)
        cbf = chain_break_fraction(physical.samples, embedded.dense_chains())

        timing = DeviceTiming(
            programming_us=self.timing.processor_initialize_us,
            anneal_us=num_reads * self.timing.anneal_us,
            readout_us=num_reads * self.timing.readout_us,
            thermalization_us=num_reads * self.timing.thermalization_us,
        )
        return DeviceResult(
            logical=logical_set,
            physical=physical,
            embedded=embedded,
            programming=report,
            timing=timing,
            chain_break_fraction=cbf,
        )

    def solve_qubo(self, qubo: Qubo, **kwargs) -> DeviceResult:
        """Convert a QUBO to Ising form (Eqs. 4-5) and solve it."""
        return self.solve_ising(qubo_to_ising(qubo), **kwargs)

    # ------------------------------------------------------------------ #
    # Characterization
    # ------------------------------------------------------------------ #
    def estimate_success_probability(
        self,
        logical: IsingModel,
        ground_energy: float,
        num_reads: int = 200,
        embedding: Embedding | None = None,
        rng: np.random.Generator | int | None = None,
        atol: float = 1e-9,
    ) -> float:
        """Monte-Carlo estimate of the single-run success probability ``p_s``.

        ``p_s`` is the paper's "characteristic probability that any single
        run finds the lowest-energy state" (Sec. 3.2, Eq. 6 input).
        """
        result = self.solve_ising(
            logical, num_reads=num_reads, embedding=embedding, rng=rng
        )
        return result.logical.ground_state_probability(ground_energy, atol=atol)
