"""The QPU surrogate: samplers, readout containers, and the timed device.

The paper treats the QPU behaviorally — "a probabilistic processor" whose
repeated anneal-read cycles return low-energy samples (Sec. 3.2).  This
package supplies that behavior (a vectorized Metropolis simulated annealer
plus an exact enumerator for ground truth) and the
:class:`~repro.annealer.device.DWaveDevice` facade that stitches embedding,
parameter programming, sampling, decoding, and DW2 timing into one call.
"""

from .composites import (
    ComposedSampler,
    EmbeddingComposite,
    FixedVariableComposite,
    ParallelTemperingComposite,
    TruncateComposite,
)
from .device import DeviceResult, DeviceTiming, DWaveDevice
from .exact import ExactSolver
from .postprocess import greedy_descent, refine_sampleset
from .sa import SimulatedAnnealingSampler, color_classes
from .sampler import Sampler
from .sampleset import SampleSet
from .schedule import AnnealSchedule, geometric_schedule, linear_schedule

__all__ = [
    "Sampler",
    "SampleSet",
    "ComposedSampler",
    "EmbeddingComposite",
    "FixedVariableComposite",
    "TruncateComposite",
    "ParallelTemperingComposite",
    "SimulatedAnnealingSampler",
    "color_classes",
    "ExactSolver",
    "greedy_descent",
    "refine_sampleset",
    "AnnealSchedule",
    "linear_schedule",
    "geometric_schedule",
    "DWaveDevice",
    "DeviceResult",
    "DeviceTiming",
]
