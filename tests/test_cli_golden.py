"""Golden CLI snapshots: user-facing output pinned to frozen fixtures.

``predict``, ``fig9``, and the ``study`` summary are the library's
user-facing report surfaces; this suite pins their exact text to fixtures
under ``tests/data/`` so formatting regressions fail loudly.  Volatile
fields (wall-clock lines, artifact paths) are normalized before comparing.

If an *intentional* formatting change breaks these tests, regenerate the
fixtures with::

    PYTHONPATH=src python tests/test_cli_golden.py --regen

and review the fixture diff like any other code change.  Never regenerate
to silence an unintended diff.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

DATA_DIR = Path(__file__).parent / "data"

#: Each golden case: fixture name -> CLI argv (argv may contain "{out}" which
#: is substituted with a scratch artifact path at run time).
GOLDEN_CASES: dict[str, list[str]] = {
    "cli_predict.txt": ["predict", "--lps", "30"],
    "cli_predict_offline.txt": ["predict", "--lps", "80", "--embedding-mode", "offline"],
    "cli_predict_aspen.txt": ["predict", "--lps", "30", "--backend", "aspen"],
    "cli_predict_des.txt": ["predict", "--lps", "80", "--backend", "des"],
    "cli_fig9.txt": ["fig9", "--max-lps", "50"],
    "cli_study.txt": [
        "study",
        "--lps", "1:31",
        "--accuracy", "0.9,0.99",
        "--embedding-mode", "online,offline",
        "--mc-trials", "32",
        "--seed", "11",
        "--name", "golden",
        "--out", "{out}",
    ],
    "cli_study_aspen.txt": [
        "study",
        "--lps", "1:31",
        "--accuracy", "0.9,0.99",
        "--backend", "aspen",
        "--mc-trials", "32",
        "--seed", "11",
        "--name", "golden-aspen",
        "--out", "{out}",
    ],
    "cli_study_des.txt": [
        "study",
        "--lps", "1:11",
        "--embedding-mode", "online,offline",
        "--backend", "des",
        "--name", "golden-des",
        "--out", "{out}",
    ],
    "cli_study_backends.txt": [
        "study",
        "--lps", "1:11",
        "--accuracy", "0.9,0.99",
        "--backend", "closed_form,aspen,des",
        "--name", "golden-backends",
        "--out", "{out}",
    ],
}

_VOLATILE = (
    (re.compile(r"^elapsed: .*$", re.MULTILINE), "elapsed: <TIME>"),
    (re.compile(r"^wrote .*$", re.MULTILINE), "wrote <PATH>"),
)


def normalize(text: str) -> str:
    """Blank the wall-clock and filesystem-path lines of CLI output."""
    for pattern, replacement in _VOLATILE:
        text = pattern.sub(replacement, text)
    return text


def _run_case(argv: list[str], out_path: Path) -> str:
    import contextlib
    import io

    from repro.cli import main

    argv = [a.replace("{out}", str(out_path)) for a in argv]
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        code = main(argv)
    assert code == 0, f"command {argv} exited {code}"
    return normalize(buffer.getvalue())


@pytest.mark.parametrize("fixture", sorted(GOLDEN_CASES))
def test_cli_output_matches_golden(fixture, tmp_path):
    path = DATA_DIR / fixture
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"`PYTHONPATH=src python tests/test_cli_golden.py --regen` and review the diff"
    )
    actual = _run_case(GOLDEN_CASES[fixture], tmp_path / "artifact.json")
    expected = path.read_text()
    assert actual == expected, (
        f"CLI output drifted from {fixture}; if the change is intentional, "
        f"regenerate via `PYTHONPATH=src python tests/test_cli_golden.py --regen` "
        f"and review the fixture diff"
    )


def test_study_golden_artifact_column_sanity(tmp_path):
    """The golden study's artifact stays loadable and internally consistent."""
    import numpy as np

    from repro.studies import StudyResults

    out = tmp_path / "artifact.json"
    _run_case(GOLDEN_CASES["cli_study.txt"], out)
    results = StudyResults.load(out)
    assert results.num_points == 120
    total = (
        results.column("stage1_s")
        + results.column("stage2_s")
        + results.column("stage3_s")
    )
    assert np.array_equal(total, results.column("total_s"))


def _regen() -> None:
    import tempfile

    DATA_DIR.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as scratch:
        for fixture, argv in GOLDEN_CASES.items():
            text = _run_case(argv, Path(scratch) / "artifact.json")
            (DATA_DIR / fixture).write_text(text)
            print(f"regenerated {DATA_DIR / fixture}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
