"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware import ChimeraTopology


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def cell() -> ChimeraTopology:
    """A single Chimera unit cell, C(1, 1, 4)."""
    return ChimeraTopology(1, 1, 4)


@pytest.fixture(scope="session")
def small_chimera() -> ChimeraTopology:
    """A small lattice big enough for interesting embeddings, C(3, 3, 4)."""
    return ChimeraTopology(3, 3, 4)
