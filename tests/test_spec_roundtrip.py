"""Property tests: ``ScenarioSpec.to_json``/``from_json`` is a true round trip.

The study service's wire format is the spec's canonical JSON, and its job
ids / shard cache keys hash what that JSON describes — so serialization
must preserve *everything* the executor consumes.  Hypothesis drives
arbitrary valid axis grids through the round trip and asserts the three
load-bearing invariants:

* the parsed spec equals the original (axes, name, mc_trials, seed);
* the grid re-enumerates to the **identical row-major point sequence**
  (point ``i`` means the same operating point on both sides of the wire);
* the content addresses are identical — the study key (job identity) and
  every shard key (cache identity) — so a spec shipped through the
  service hits exactly the cache entries a local run would.

Backend choice shapes what may sweep (capability enforcement: an axis a
backend does not honor may only sit at its default), so the strategy
draws the backend axis first and constrains the rest accordingly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.studies import ScenarioSpec, StudyCache, study_key
from repro.studies.executor import shard_ranges

#: Axes every registered backend honors (aspen's supported set).
_UNIVERSAL_AXES = ("lps", "accuracy", "success")
#: Axes only the full-surface backends (closed_form, des) honor.
_FULL_SURFACE_AXES = ("embedding_mode", "anneal_us", "clock_hz")

_VALUE_STRATEGIES = {
    "lps": st.lists(st.integers(0, 2000), min_size=1, max_size=4, unique=True),
    "accuracy": st.lists(
        st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
        min_size=1, max_size=3, unique=True,
    ),
    "success": st.lists(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        min_size=1, max_size=3, unique=True,
    ),
    "anneal_us": st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1, max_size=3, unique=True,
    ),
    "clock_hz": st.lists(
        st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
        min_size=1, max_size=3, unique=True,
    ),
    "embedding_mode": st.sampled_from(
        [["online"], ["offline"], ["online", "offline"], ["offline", "online"]]
    ),
}


@st.composite
def scenario_specs(draw) -> ScenarioSpec:
    axes: dict = {}
    # Backend axis first: sweeping aspen forbids sweeping full-surface axes.
    backend_axis = draw(
        st.sampled_from(
            [
                None,
                ["closed_form"],
                ["des"],
                ["closed_form", "des"],
                ["aspen"],
                ["closed_form", "aspen", "des"],
            ]
        )
    )
    sweepable = list(_UNIVERSAL_AXES)
    if backend_axis is None or "aspen" not in backend_axis:
        sweepable += _FULL_SURFACE_AXES
    if backend_axis is not None:
        axes["backend"] = backend_axis
    for axis_name in sweepable:
        if draw(st.booleans()):
            axes[axis_name] = draw(_VALUE_STRATEGIES[axis_name])
    return ScenarioSpec(
        axes=axes,
        name=draw(st.text(alphabet="abcXYZ 019_-/é", min_size=1, max_size=12)),
        mc_trials=draw(st.integers(0, 4)),
        seed=draw(st.integers(0, 2**32 - 1)),
    )


@settings(max_examples=60, deadline=None)
@given(spec=scenario_specs())
def test_to_json_from_json_round_trips_exactly(spec):
    text = spec.to_json()
    parsed = ScenarioSpec.from_json(text)
    assert parsed == spec
    assert parsed.name == spec.name
    assert parsed.mc_trials == spec.mc_trials
    assert parsed.seed == spec.seed
    # Serialization is idempotent: the canonical text is a fixed point.
    assert parsed.to_json() == text


@settings(max_examples=60, deadline=None)
@given(spec=scenario_specs())
def test_round_trip_re_enumerates_the_identical_row_major_grid(spec):
    parsed = ScenarioSpec.from_json(spec.to_json())
    assert parsed.shape == spec.shape
    assert parsed.num_points == spec.num_points
    assert list(parsed.iter_points()) == list(spec.iter_points())
    # Random access agrees with enumeration on both sides of the wire.
    last = spec.num_points - 1
    assert parsed.point(0) == spec.point(0)
    assert parsed.point(last) == spec.point(last)


@settings(max_examples=60, deadline=None)
@given(spec=scenario_specs(), shard_size=st.sampled_from([1, 3, 64, 4096]))
def test_round_trip_preserves_every_cache_key(spec, shard_size):
    parsed = ScenarioSpec.from_json(spec.to_json())
    # Job identity (the service's content-hash job id) ...
    assert study_key(parsed, shard_size) == study_key(spec, shard_size)
    # ... and every shard's content address in the StudyCache.
    for index, _ in enumerate(shard_ranges(spec.num_points, shard_size)):
        assert StudyCache.shard_key(parsed, shard_size, index) == StudyCache.shard_key(
            spec, shard_size, index
        )


# --------------------------------------------------------------------- #
# Deterministic edge cases
# --------------------------------------------------------------------- #
def test_explicit_default_axis_shares_shards_but_not_the_job():
    """Spelling out a default keeps the *shard* identity (effective grids
    collapse) but changes the *job* identity — the artifact's ``spec``
    field records the explicit spelling, so the bytes differ."""
    implicit = ScenarioSpec(axes={"accuracy": [0.9, 0.99]})
    explicit = ScenarioSpec(axes={"accuracy": [0.9, 0.99], "lps": [50]})
    assert StudyCache.shard_key(implicit, 64, 0) == StudyCache.shard_key(explicit, 64, 0)
    assert study_key(implicit, 64) != study_key(explicit, 64)


def test_relabelled_spec_shares_shards_but_not_the_job():
    one = ScenarioSpec(axes={"lps": [1, 2, 3]}, name="one")
    two = ScenarioSpec(axes={"lps": [1, 2, 3]}, name="two")
    assert StudyCache.shard_key(one, 64, 0) == StudyCache.shard_key(two, 64, 0)
    assert study_key(one, 64) != study_key(two, 64)


def test_study_key_depends_on_the_shard_grid():
    spec = ScenarioSpec(axes={"lps": [1, 2, 3]})
    assert study_key(spec, 64) != study_key(spec, 128)


def test_from_json_rejects_malformed_text():
    with pytest.raises(ValidationError, match="not valid JSON"):
        ScenarioSpec.from_json("{nope")
    with pytest.raises(ValidationError):
        ScenarioSpec.from_json('{"axes": {"lps": []}}')
