"""Reproducibility guarantees across the public API.

Every stochastic entry point accepts ``rng`` (seed or generator); equal
seeds must give bit-identical results, and passing a live generator must
consume from (not reseed) its stream — the contract documented in
``repro._rng``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.annealer import DWaveDevice, SimulatedAnnealingSampler
from repro.embedding import find_embedding_cmr
from repro.hardware import ChimeraTopology, random_faults
from repro.qubo import random_ising, random_qubo


class TestSeedDeterminism:
    def test_generators(self):
        assert random_qubo(7, rng=5) == random_qubo(7, rng=5)
        assert random_ising(7, rng=5) == random_ising(7, rng=5)
        assert random_qubo(7, rng=5) != random_qubo(7, rng=6)

    def test_faults(self, small_chimera):
        a = random_faults(small_chimera, 0.1, 0.05, rng=3)
        b = random_faults(small_chimera, 0.1, 0.05, rng=3)
        assert a == b

    def test_sampler(self):
        m = random_ising(8, rng=0)
        sa = SimulatedAnnealingSampler()
        a = sa.sample(m, num_reads=7, rng=9)
        b = sa.sample(m, num_reads=7, rng=9)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.energies, b.energies)

    def test_embedding(self, small_chimera):
        src = nx.cycle_graph(7)
        a = find_embedding_cmr(src, small_chimera.graph(), rng=11)
        b = find_embedding_cmr(src, small_chimera.graph(), rng=11)
        assert a == b

    def test_device_end_to_end(self):
        device = DWaveDevice(topology=ChimeraTopology(3, 3, 4))
        m = random_ising(5, rng=2)
        a = device.solve_ising(m, num_reads=10, rng=4)
        b = device.solve_ising(m, num_reads=10, rng=4)
        assert a.embedded.embedding == b.embedded.embedding
        assert np.array_equal(a.logical.samples, b.logical.samples)


class TestGeneratorStreams:
    def test_shared_generator_advances(self):
        """A live generator yields different draws on consecutive calls."""
        gen = np.random.default_rng(0)
        a = random_qubo(6, rng=gen)
        b = random_qubo(6, rng=gen)
        assert a != b

    def test_shared_generator_pipeline_reproducible(self):
        """Replaying the whole pipeline from one seed reproduces everything."""
        def run():
            gen = np.random.default_rng(123)
            model = random_ising(6, rng=gen)
            device = DWaveDevice(topology=ChimeraTopology(3, 3, 4))
            result = device.solve_ising(model, num_reads=8, rng=gen)
            return result.logical.samples.copy()

        assert np.array_equal(run(), run())

    def test_generator_not_reseeded(self):
        """Passing a generator must not reset its state (no hidden seeding)."""
        gen = np.random.default_rng(7)
        random_ising(5, rng=gen)
        after_use = gen.integers(0, 1 << 30)
        fresh = np.random.default_rng(7)
        first_draw = fresh.integers(0, 1 << 30)
        # The used generator has advanced past the fresh generator's start.
        assert after_use != first_draw or True  # states differ structurally:
        assert gen.bit_generator.state != np.random.default_rng(7).bit_generator.state
