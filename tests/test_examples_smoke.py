"""Examples smoke tier: every script in ``examples/`` must actually run.

The examples are the library's front door, but nothing exercised them —
an API refactor could silently rot all six.  This module runs each script
in-process (``runpy`` under ``__main__``, stdout captured), asserting it
exits cleanly and prints something.

The tier is marked ``examples`` and deselected by default (the scripts
deliberately do real work — embeddings, annealing sweeps, studies — and
would triple the tier-1 wall clock).  ``scripts/ci_check.sh`` runs it as
its own gate::

    python -m pytest -q -m examples
"""

from __future__ import annotations

import contextlib
import io
import runpy
from pathlib import Path

import pytest

pytestmark = pytest.mark.examples

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """The smoke tier discovers scripts; an empty glob means a broken path."""
    assert len(EXAMPLE_SCRIPTS) >= 6, (
        f"expected the six known example scripts under {EXAMPLES_DIR}, "
        f"found {[p.name for p in EXAMPLE_SCRIPTS]}"
    )


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[p.stem for p in EXAMPLE_SCRIPTS]
)
def test_example_runs_clean(script, tmp_path, monkeypatch):
    # Guard against examples growing filesystem side effects: run from a
    # scratch cwd so any relative-path writes land in tmp_path, then check
    # nothing appeared.
    monkeypatch.chdir(tmp_path)
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        runpy.run_path(str(script), run_name="__main__")
    assert stdout.getvalue().strip(), f"{script.name} printed nothing"
    leftovers = [p.name for p in tmp_path.iterdir()]
    assert not leftovers, f"{script.name} wrote files into its cwd: {leftovers}"
