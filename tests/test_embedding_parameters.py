"""Tests for embedded-Ising parameter setting (Choi / paper Sec. 2.2)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.embedding import (
    Embedding,
    clique_embedding,
    default_chain_strength,
    embed_ising,
    minimal_clique_topology,
)
from repro.exceptions import EmbeddingError, ValidationError
from repro.qubo import IsingModel, random_ising


@pytest.fixture
def k4_setup():
    logical = random_ising(4, rng=0)
    topo = minimal_clique_topology(4)
    emb = clique_embedding(4, topo)
    return logical, emb, topo.working_graph()


class TestChainStrength:
    def test_default_scales_with_parameters(self):
        weak = IsingModel([0.1], {})
        strong = IsingModel([10.0], {})
        assert default_chain_strength(strong) > default_chain_strength(weak)

    def test_default_floor(self):
        zero = IsingModel(np.zeros(3), {})
        assert default_chain_strength(zero) == 2.0

    def test_factor_guard(self):
        with pytest.raises(ValidationError):
            default_chain_strength(IsingModel([1.0], {}), factor=0.0)


class TestEmbedIsing:
    def test_field_distribution(self, k4_setup):
        logical, emb, hw = k4_setup
        ei = embed_ising(logical, emb, hw)
        # Each chain's physical fields sum to the logical field.
        pos = {q: p for p, q in enumerate(ei.hardware_nodes)}
        for v, chain in enumerate(emb.chains):
            total = sum(ei.physical.h[pos[q]] for q in chain)
            assert total == pytest.approx(logical.h[v])

    def test_coupling_distribution(self, k4_setup):
        logical, emb, hw = k4_setup
        ei = embed_ising(logical, emb, hw)
        pos = {q: p for p, q in enumerate(ei.hardware_nodes)}
        chain_dense = [set(pos[q] for q in c) for c in emb.chains]
        for i, j, val in logical.iter_couplings():
            # Sum of physical couplers between the two chains equals J_ij.
            total = 0.0
            for (p, q), v in ei.physical.coupling_dict().items():
                if (p in chain_dense[i] and q in chain_dense[j]) or (
                    p in chain_dense[j] and q in chain_dense[i]
                ):
                    total += v
            assert total == pytest.approx(val)

    def test_intra_chain_couplers_ferromagnetic(self, k4_setup):
        logical, emb, hw = k4_setup
        cs = 3.5
        ei = embed_ising(logical, emb, hw, chain_strength=cs)
        pos = {q: p for p, q in enumerate(ei.hardware_nodes)}
        chain_dense = [set(pos[q] for q in c) for c in emb.chains]
        found_intra = 0
        for (p, q), v in ei.physical.coupling_dict().items():
            for cd in chain_dense:
                if p in cd and q in cd:
                    assert v == pytest.approx(-cs)
                    found_intra += 1
        assert found_intra > 0

    def test_ground_state_preserved_through_embedding(self):
        """Decoding the physical ground state recovers the logical one."""
        from repro.qubo import brute_force_ising

        logical = random_ising(3, rng=5)
        topo = minimal_clique_topology(3)
        emb = clique_embedding(3, topo)
        ei = embed_ising(logical, emb, topo.working_graph())
        phys_states, _ = brute_force_ising(ei.physical)
        decoded = ei.unembed(phys_states[:1])
        logical_states, _ = brute_force_ising(logical)
        assert logical.energy(decoded[0]) == pytest.approx(
            logical.energy(logical_states[0])
        )

    def test_num_spins_is_hardware_size(self, k4_setup):
        logical, emb, hw = k4_setup
        ei = embed_ising(logical, emb, hw)
        assert ei.num_physical_spins == hw.number_of_nodes()

    def test_offset_carried(self, k4_setup):
        logical, emb, hw = k4_setup
        shifted = IsingModel(logical.h, logical.coupling_dict(), offset=5.0)
        ei = embed_ising(shifted, emb, hw)
        assert ei.physical.offset == 5.0

    def test_chain_count_mismatch_rejected(self, k4_setup):
        logical, emb, hw = k4_setup
        small = IsingModel([1.0], {})
        with pytest.raises(EmbeddingError, match="chains"):
            embed_ising(small, emb, hw)

    def test_missing_coupler_rejected(self):
        logical = IsingModel([0.0, 0.0], {(0, 1): 1.0})
        hardware = nx.path_graph(4)  # 0-1-2-3
        bad = Embedding(((0,), (3,)))  # chains not adjacent
        with pytest.raises(EmbeddingError, match="no hardware coupler"):
            embed_ising(logical, bad, hardware)

    def test_negative_chain_strength_rejected(self, k4_setup):
        logical, emb, hw = k4_setup
        with pytest.raises(ValidationError):
            embed_ising(logical, emb, hw, chain_strength=-1.0)

    def test_dense_chains_roundtrip(self, k4_setup):
        logical, emb, hw = k4_setup
        ei = embed_ising(logical, emb, hw)
        dense = ei.dense_chains()
        assert len(dense) == emb.num_logical
        for dchain, chain in zip(dense, emb.chains):
            assert [ei.hardware_nodes[p] for p in dchain] == list(chain)
