"""Tests for the closed-form Stage 1-3 models."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    Stage1Model,
    Stage2Model,
    Stage3Model,
    XEON_E5_2680,
)
from repro.exceptions import ValidationError
from repro.hardware import DW2_TIMING


class TestHostParams:
    def test_trait_rates(self):
        h = XEON_E5_2680
        assert h.flops_sp == pytest.approx(2.7e9)
        assert h.flops_sp_simd == pytest.approx(2.7e9 * 8)
        assert h.flops_sp_fmad_simd == pytest.approx(2.7e9 * 16)

    def test_pcie_latency_plus_bandwidth(self):
        h = XEON_E5_2680
        assert h.pcie_seconds(0) == pytest.approx(10e-6)
        assert h.pcie_seconds(6e9) == pytest.approx(1.0 + 10e-6)

    def test_guards(self):
        with pytest.raises(ValidationError):
            XEON_E5_2680.memory_seconds(-1)


class TestStage1:
    def test_graph_constants(self):
        m = Stage1Model()
        assert m.hardware_nodes == 1152
        assert m.hardware_edges == 3360
        assert Stage1Model.logical_edges(30) == 435

    def test_operation_counts(self):
        m = Stage1Model()
        assert m.ising_generation_ops(30) == 900
        assert m.parameter_setting_ops(30) == 27000
        expected = (3360 + 1152 * math.log(1152)) * (2 * 435) * 30 * 1152
        assert m.embedding_ops(30) == pytest.approx(expected)

    def test_breakdown_total(self):
        m = Stage1Model()
        b = m.breakdown(50)
        assert b.total == pytest.approx(m.seconds(50))
        assert b.classical_translation == pytest.approx(
            b.total - b.processor_initialize
        )

    def test_processor_initialize(self):
        assert Stage1Model().breakdown(1).processor_initialize == pytest.approx(
            DW2_TIMING.processor_initialize_s
        )

    def test_embedding_dominates_large(self):
        m = Stage1Model()
        assert m.dominant_term(100) == "embedding_flops"

    def test_constant_dominates_small(self):
        m = Stage1Model()
        assert m.dominant_term(1) == "processor_initialize"

    def test_crossover_size(self):
        m = Stage1Model()
        k = m.crossover_size()
        b_lo, b_hi = m.breakdown(k - 1), m.breakdown(k)
        assert b_lo.embedding_flops <= b_lo.processor_initialize
        assert b_hi.embedding_flops > b_hi.processor_initialize

    def test_rate_scale(self):
        base = Stage1Model()
        fast = Stage1Model(embed_rate_scale=10.0)
        assert fast.breakdown(50).embedding_flops == pytest.approx(
            base.breakdown(50).embedding_flops / 10.0
        )

    def test_embedded_graph_size_worst_case(self):
        assert Stage1Model().embedded_graph_size(30) == 900

    def test_guards(self):
        with pytest.raises(ValidationError):
            Stage1Model().breakdown(-1)
        with pytest.raises(ValidationError):
            Stage1Model(embed_rate_scale=0.0)
        with pytest.raises(ValidationError):
            Stage1Model(m=0)

    def test_nonfinite_embed_rate_scale_rejected(self):
        """Regression: `nan <= 0` is False, so NaN slipped past the guard."""
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValidationError, match="finite"):
                Stage1Model(embed_rate_scale=bad)

    def test_embedding_seconds_alias(self):
        """`embedding_flops` stores seconds (frozen misnomer); the alias
        exposes the honest name on both scalar and array breakdowns."""
        m = Stage1Model()
        b = m.breakdown(30)
        assert b.embedding_seconds == b.embedding_flops
        arrays = m.breakdown_arrays(np.array([1, 10, 30], dtype=np.int64))
        assert np.array_equal(arrays.embedding_seconds, arrays.embedding_flops)
        # And it is truly ops / rate, i.e. a duration.
        rate = m.host.flops_sp_simd * m.embed_rate_scale
        assert b.embedding_seconds == m.embedding_ops(30) / rate


class TestStage2:
    def test_listing_faithful_default(self):
        """Readout/thermalization charged once, as in Fig. 7."""
        m = Stage2Model()
        b = m.breakdown(0.99, 0.7)
        assert b.repetitions == 4
        assert b.anneal == pytest.approx(4 * 20e-6)
        assert b.readout == pytest.approx(320e-6)
        assert b.thermalization == pytest.approx(5e-6)
        assert b.total == pytest.approx(405e-6)

    def test_device_accurate_mode(self):
        m = Stage2Model(per_read=True)
        b = m.breakdown(0.99, 0.7)
        assert b.readout == pytest.approx(4 * 320e-6)
        assert b.total == pytest.approx(4 * 345e-6)

    def test_anneal_time_option(self):
        slow = Stage2Model().with_anneal_time(100.0)
        b = slow.breakdown(0.99, 0.7)
        assert b.anneal == pytest.approx(4 * 100e-6)
        with pytest.raises(ValidationError):
            Stage2Model().with_anneal_time(-1)

    def test_flat_in_accuracy_above_06(self):
        """Fig. 9(b): nearly constant for ps > 0.6."""
        m = Stage2Model()
        times = [m.seconds(pa, 0.7) for pa in (0.5, 0.9, 0.99, 0.999, 0.9999)]
        assert max(times) / min(times) < 2.0

    def test_zero_accuracy(self):
        b = Stage2Model().breakdown(0.0, 0.7)
        assert b.repetitions == 0
        assert b.anneal == 0.0


class TestStage3:
    def test_listing_defaults(self):
        m = Stage3Model()
        assert m.results() == 4  # ceil(log(0.01)/log(0.25))

    def test_sort_ops(self):
        m = Stage3Model()
        assert m.sort_ops(4) == pytest.approx(4 * math.log(4))
        assert m.sort_ops(1) == 0.0
        assert m.sort_ops(0) == 0.0
        with pytest.raises(ValidationError):
            m.sort_ops(-1)

    def test_breakdown(self):
        m = Stage3Model()
        b = m.breakdown(50)
        assert b.results == 4
        assert b.loads == pytest.approx(XEON_E5_2680.memory_seconds(4 * 4 * 50))
        assert b.stores == pytest.approx(XEON_E5_2680.memory_seconds(4))
        assert b.total == pytest.approx(b.sort_flops + b.loads + b.stores)

    def test_nearly_linear(self):
        m = Stage3Model()
        assert m.seconds(100) / m.seconds(50) == pytest.approx(2.0, rel=0.3)

    def test_override_probabilities(self):
        m = Stage3Model()
        assert m.results(accuracy=0.999, success=0.5) == 10

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            Stage3Model().breakdown(-5)
