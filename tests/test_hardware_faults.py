"""Tests for fabrication-fault models."""

from __future__ import annotations

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    PERFECT_YIELD,
    ChimeraTopology,
    FaultModel,
    random_faults,
)


class TestFaultModel:
    def test_normalization(self):
        f = FaultModel({3, 3, 5}, {(7, 2), (2, 7)})
        assert f.dead_qubits == frozenset({3, 5})
        assert f.dead_couplers == frozenset({(2, 7)})
        assert f.num_dead_qubits == 2
        assert f.num_dead_couplers == 1

    def test_validate_accepts_real_elements(self, cell):
        edge = next(iter(cell.iter_edges()))
        FaultModel({0}, {edge}).validate(cell)

    def test_validate_rejects_bad_qubit(self, cell):
        with pytest.raises(HardwareError, match="dead qubit"):
            FaultModel({999}).validate(cell)

    def test_validate_rejects_non_coupler(self, cell):
        # Two same-shore qubits are not coupled in a Chimera cell.
        with pytest.raises(HardwareError, match="not a coupler"):
            FaultModel(dead_couplers={(0, 1)}).validate(cell)

    def test_union(self):
        a = FaultModel({1}, {(0, 4)})
        b = FaultModel({2}, {(1, 4)})
        u = a.union(b)
        assert u.dead_qubits == frozenset({1, 2})
        assert u.dead_couplers == frozenset({(0, 4), (1, 4)})

    def test_yield_fraction(self, cell):
        assert PERFECT_YIELD.yield_fraction(cell) == 1.0
        assert FaultModel({0, 1}).yield_fraction(cell) == pytest.approx(6 / 8)


class TestWorkingGraph:
    def test_perfect_yield_is_copy(self, cell):
        g = cell.working_graph(PERFECT_YIELD)
        assert g.number_of_nodes() == 8
        g.remove_node(0)  # mutating the copy must not corrupt the cache
        assert cell.graph().number_of_nodes() == 8

    def test_dead_qubit_removed_with_couplers(self, cell):
        g = cell.working_graph(FaultModel({0}))
        assert g.number_of_nodes() == 7
        assert g.number_of_edges() == 12  # 0 had degree 4

    def test_dead_coupler_removed(self, cell):
        edge = next(iter(cell.iter_edges()))
        g = cell.working_graph(FaultModel(dead_couplers={edge}))
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 15

    def test_working_graph_validates(self, cell):
        with pytest.raises(HardwareError):
            cell.working_graph(FaultModel({123}))


class TestRandomFaults:
    def test_reproducible(self, small_chimera):
        a = random_faults(small_chimera, 0.1, 0.05, rng=7)
        b = random_faults(small_chimera, 0.1, 0.05, rng=7)
        assert a == b

    def test_rates_zero(self, small_chimera):
        f = random_faults(small_chimera, 0.0, 0.0, rng=0)
        assert f == PERFECT_YIELD

    def test_rates_one_kills_everything(self, small_chimera):
        f = random_faults(small_chimera, 1.0, 0.0, rng=0)
        assert f.num_dead_qubits == small_chimera.num_qubits

    def test_coupler_faults_avoid_dead_qubits(self, small_chimera):
        f = random_faults(small_chimera, 0.3, 0.3, rng=3)
        for p, q in f.dead_couplers:
            assert p not in f.dead_qubits and q not in f.dead_qubits

    def test_bad_rates(self, small_chimera):
        with pytest.raises(HardwareError):
            random_faults(small_chimera, -0.1)
        with pytest.raises(HardwareError):
            random_faults(small_chimera, 0.0, 1.5)

    def test_typical_rate_ballpark(self):
        topo = ChimeraTopology(12, 12, 4)
        f = random_faults(topo, qubit_fault_rate=0.02, rng=11)
        assert 0 < f.num_dead_qubits < 60  # ~23 expected of 1152
        f.validate(topo)
