"""Tests for the backtracking unit-chain (subgraph) embedder."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.embedding import (
    find_subgraph_embedding,
    subgraph_embedding_exists,
    verify_embedding,
)
from repro.exceptions import EmbeddingError


class TestBasics:
    def test_empty(self, cell):
        emb = find_subgraph_embedding(nx.empty_graph(0), cell.graph())
        assert emb.num_logical == 0

    def test_single_vertex(self, cell):
        emb = find_subgraph_embedding(nx.empty_graph(1), cell.graph())
        assert emb.chain_lengths() == [1]

    def test_unit_chains_only(self, cell):
        emb = find_subgraph_embedding(nx.cycle_graph(4), cell.graph())
        assert set(emb.chain_lengths()) == {1}
        verify_embedding(emb, nx.cycle_graph(4), cell.graph())

    def test_too_big_source_rejected(self, cell):
        with pytest.raises(EmbeddingError, match="more vertices"):
            find_subgraph_embedding(nx.empty_graph(9), cell.graph())

    def test_node_limit_guard(self, small_chimera):
        with pytest.raises(EmbeddingError, match="node_limit"):
            find_subgraph_embedding(
                nx.path_graph(2), small_chimera.graph(), node_limit=10
            )

    def test_non_canonical_labels_rejected(self, cell):
        g = nx.Graph()
        g.add_edge("x", "y")
        with pytest.raises(EmbeddingError, match="range"):
            find_subgraph_embedding(g, cell.graph())


class TestCorrectness:
    def test_triangle_not_in_bipartite_cell(self, cell):
        """K3 has no unit-chain embedding in the bipartite K_{4,4} cell."""
        with pytest.raises(EmbeddingError, match="no unit-chain"):
            find_subgraph_embedding(nx.complete_graph(3), cell.graph())
        assert not subgraph_embedding_exists(nx.complete_graph(3), cell.graph())

    def test_k44_fills_cell_exactly(self, cell):
        source = nx.complete_bipartite_graph(4, 4)
        emb = find_subgraph_embedding(source, cell.graph())
        verify_embedding(emb, source, cell.graph())
        assert emb.num_physical == 8

    def test_c8_in_cell(self, cell):
        source = nx.cycle_graph(8)
        emb = find_subgraph_embedding(source, cell.graph())
        verify_embedding(emb, source, cell.graph())

    def test_path_across_cells(self, small_chimera):
        source = nx.path_graph(10)
        emb = find_subgraph_embedding(source, small_chimera.graph())
        verify_embedding(emb, source, small_chimera.graph())

    def test_odd_cycle_impossible_in_bipartite_hardware(self, small_chimera):
        """Chimera is bipartite; odd cycles need chains, not unit embeddings."""
        assert not subgraph_embedding_exists(
            nx.cycle_graph(5), small_chimera.graph()
        )

    def test_high_degree_pruning(self, cell):
        """A degree-5 hub cannot map into a cell whose max degree is 4."""
        assert not subgraph_embedding_exists(nx.star_graph(5), cell.graph())

    def test_exact_on_non_chimera_hardware(self):
        hardware = nx.petersen_graph()
        source = nx.cycle_graph(5)
        emb = find_subgraph_embedding(source, hardware)
        verify_embedding(emb, source, hardware)

    def test_matches_networkx_monomorphism_oracle(self):
        """Cross-check against networkx's GraphMatcher on small instances."""
        from networkx.algorithms.isomorphism import GraphMatcher

        hardware = nx.random_regular_graph(3, 10, seed=4)
        for seed in range(6):
            source = nx.gnp_random_graph(5, 0.4, seed=seed)
            expected = GraphMatcher(hardware, source).subgraph_monomorphisms_iter()
            has_oracle = next(expected, None) is not None
            assert subgraph_embedding_exists(source, hardware) == has_oracle
