"""Tests for report formatting helpers."""

from __future__ import annotations

import pytest

from repro.core import format_seconds, format_series, format_table
from repro.exceptions import ValidationError


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0 s"),
            (1.5, "1.5 s"),
            (0.0025, "2.5 ms"),
            (5e-6, "5 us"),
            (3e-9, "3 ns"),
            (1234.0, "1.23e+03 s"),
        ],
    )
    def test_values(self, value, expected):
        assert format_seconds(value) == expected

    def test_sub_nanosecond(self):
        assert "ns" in format_seconds(1e-12)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_seconds(-1.0)

    def test_infinity(self):
        assert format_seconds(float("inf")) == "inf"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # fixed width

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456789]])
        assert "1.235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValidationError):
            format_table(["a", "b"], [[1]])


class TestFormatSeries:
    def test_renders_pairs(self):
        out = format_series([1, 2], [0.5, 0.001], "n", "time")
        assert "n" in out and "time" in out
        assert "500 ms" in out and "1 ms" in out

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            format_series([1], [1.0, 2.0], "x", "y")
