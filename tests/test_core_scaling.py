"""Tests for scaling studies (series, slopes, crossovers, dominance table)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    SplitExecutionModel,
    Stage1Model,
    crossover_point,
    loglog_slope,
    series,
    stage_dominance_table,
)
from repro.exceptions import ValidationError


class TestSeries:
    def test_series_evaluates(self):
        out = series(lambda n: float(n * n), [1, 2, 3])
        assert np.allclose(out, [1.0, 4.0, 9.0])


class TestLogLogSlope:
    def test_pure_power_law(self):
        xs = np.arange(1, 50)
        assert loglog_slope(xs, xs**3.0) == pytest.approx(3.0)

    def test_embedding_term_is_cubic(self):
        """EmbeddingOps ~ n^3 asymptotically (EH*NH = n^3/2 for cliques)."""
        m = Stage1Model()
        xs = np.arange(50, 200, 10)
        ys = [m.embedding_ops(int(n)) for n in xs]
        assert loglog_slope(xs, ys) == pytest.approx(3.0, abs=0.05)

    def test_stage1_total_slope_large_n(self):
        m = Stage1Model()
        xs = np.arange(100, 400, 25)
        ys = [m.seconds(int(n)) for n in xs]
        assert 2.8 < loglog_slope(xs, ys) < 3.2

    def test_guards(self):
        with pytest.raises(ValidationError):
            loglog_slope([1.0], [1.0])
        with pytest.raises(ValidationError):
            loglog_slope([1.0, 2.0], [0.0, 1.0])
        with pytest.raises(ValidationError):
            loglog_slope([1.0, 2.0], [1.0])


class TestCrossover:
    def test_simple_crossover(self):
        k = crossover_point(lambda x: float(x), lambda x: 10.0, lo=1, hi=100)
        assert k == 10

    def test_at_lower_bound(self):
        assert crossover_point(lambda x: 5.0, lambda x: 1.0, lo=3, hi=10) == 3

    def test_none_when_no_crossover(self):
        assert crossover_point(lambda x: 0.0, lambda x: 1.0, lo=1, hi=50) is None

    def test_stage1_embedding_vs_constant(self):
        """Where embedding flops overtake the 0.32 s programming constant."""
        m = Stage1Model()
        k = crossover_point(
            lambda n: m.breakdown(n).embedding_flops,
            lambda n: m.breakdown(n).processor_initialize,
            lo=1,
            hi=200,
        )
        assert k == m.crossover_size()
        assert 2 <= k <= 60

    def test_empty_range(self):
        with pytest.raises(ValidationError):
            crossover_point(lambda x: 1.0, lambda x: 0.0, lo=5, hi=4)


class TestDominanceTable:
    def test_rows(self):
        rows = stage_dominance_table(SplitExecutionModel(), [10, 50])
        assert len(rows) == 2
        assert rows[0]["lps"] == 10
        for row in rows:
            assert row["dominant"] == "stage1"
            assert row["stage1_over_stage2"] > 1.0
            assert row["total_s"] == pytest.approx(
                row["stage1_s"] + row["stage2_s"] + row["stage3_s"]
            )

    def test_quantum_fraction_decreases(self):
        rows = stage_dominance_table(SplitExecutionModel(), [10, 30, 100])
        fracs = [row["quantum_fraction"] for row in rows]
        assert fracs == sorted(fracs, reverse=True)
