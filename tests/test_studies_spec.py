"""Tests for the declarative scenario-spec layer: validation + enumeration."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.studies import AXIS_ORDER, Axis, ScenarioSpec, axis_default


class TestAxisValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValidationError, match="unknown axis"):
            Axis("qubits", (1, 2))
        with pytest.raises(ValidationError, match="unknown axes"):
            ScenarioSpec(axes={"qubits": [1, 2]})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValidationError, match="at least one value"):
            Axis("lps", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Axis("accuracy", (0.9, 0.9))

    def test_lps_must_be_nonnegative_integers(self):
        assert Axis("lps", (1, 2.0, 5)).values == (1, 2, 5)
        with pytest.raises(ValidationError, match="integers"):
            Axis("lps", (1.5,))
        with pytest.raises(ValidationError, match="non-negative"):
            Axis("lps", (-1,))

    def test_probability_domains(self):
        with pytest.raises(ValidationError, match="accuracy"):
            Axis("accuracy", (1.0,))
        with pytest.raises(ValidationError, match="success"):
            Axis("success", (0.0,))
        assert Axis("success", (1.0,)).values == (1.0,)

    def test_embedding_mode_values(self):
        assert Axis("embedding_mode", ("online", "offline")).values == ("online", "offline")
        with pytest.raises(ValidationError, match="embedding_mode"):
            Axis("embedding_mode", ("quantum",))

    def test_machine_rates_positive(self):
        with pytest.raises(ValidationError, match="positive"):
            Axis("clock_hz", (0.0,))
        with pytest.raises(ValidationError, match="finite"):
            Axis("anneal_us", (float("inf"),))

    def test_nonfinite_integer_axis_values_rejected(self):
        """Regression: `int(nan)` raises ValueError and `int(inf)` raises
        OverflowError — both used to escape as raw exceptions instead of
        ValidationError."""
        with pytest.raises(ValidationError, match="integers"):
            Axis("lps", (float("nan"),))
        with pytest.raises(ValidationError, match="integers"):
            Axis("lps", (float("inf"),))
        with pytest.raises(ValidationError, match="integers"):
            Axis("sessions", (float("nan"),))
        with pytest.raises(ValidationError, match="integers"):
            Axis("sessions", (1, float("-inf")))

    def test_non_numeric_float_axis_values_rejected(self):
        with pytest.raises(ValidationError, match="numbers"):
            Axis("accuracy", ("high",))
        with pytest.raises(ValidationError, match="numbers"):
            Axis("clock_hz", (None,))


class TestGridGeometry:
    def test_defaults_fill_absent_axes(self):
        spec = ScenarioSpec(axes={"lps": [10, 20]})
        assert spec.num_points == 2
        point = spec.point(0)
        assert set(point) == set(AXIS_ORDER)
        assert point["accuracy"] == axis_default("accuracy")
        assert point["success"] == axis_default("success")
        assert point["embedding_mode"] == "online"

    def test_enumeration_is_row_major_lps_innermost(self):
        spec = ScenarioSpec(
            axes={"lps": [1, 2, 3], "accuracy": [0.9, 0.99], "embedding_mode": ["online", "offline"]}
        )
        points = list(spec.iter_points())
        assert [p["lps"] for p in points[:3]] == [1, 2, 3]
        assert points[0]["accuracy"] == 0.9 and points[3]["accuracy"] == 0.99
        assert points[0]["embedding_mode"] == "online"
        assert points[6]["embedding_mode"] == "offline"
        # point(i) agrees with the iterator everywhere
        assert all(spec.point(i) == p for i, p in enumerate(points))

    def test_point_index_bounds(self):
        spec = ScenarioSpec(axes={"lps": [1]})
        with pytest.raises(ValidationError, match="out of range"):
            spec.point(1)

    def test_config_blocks_tile_the_grid(self):
        spec = ScenarioSpec(axes={"lps": [5, 10], "success": [0.6, 0.7, 0.8]})
        blocks = list(spec.config_blocks())
        assert len(blocks) == 3
        assert [start for start, _, _ in blocks] == [0, 2, 4]
        for start, config, lps_values in blocks:
            assert lps_values == (5, 10)
            for offset, lps in enumerate(lps_values):
                point = spec.point(start + offset)
                assert point["lps"] == lps
                assert point["success"] == config["success"]

    def test_axis_instances_accepted_as_values(self):
        spec = ScenarioSpec(axes={"lps": Axis("lps", (1, 2)), "accuracy": [0.9]})
        assert spec.lps_values == (1, 2)
        assert spec == ScenarioSpec(axes={"lps": [1, 2], "accuracy": [0.9]})
        with pytest.raises(ValidationError, match="stored under key"):
            ScenarioSpec(axes={"lps": Axis("accuracy", (0.9,))})

    def test_config_random_access_matches_enumeration(self):
        spec = ScenarioSpec(
            axes={"lps": [1, 2, 3], "success": [0.6, 0.7], "embedding_mode": ["online", "offline"]}
        )
        assert spec.num_configs == 4
        for start, config, _ in spec.config_blocks():
            assert spec.config(start // 3) == config
        with pytest.raises(ValidationError, match="out of range"):
            spec.config(4)

    def test_scanned_axes_in_canonical_order(self):
        spec = ScenarioSpec(axes={"lps": [1, 2], "embedding_mode": ["online", "offline"]})
        assert spec.scanned_axes == ("embedding_mode", "lps")

    def test_value_order_is_preserved_not_sorted(self):
        spec = ScenarioSpec(axes={"lps": [50, 10, 30]})
        assert spec.lps_values == (50, 10, 30)


class TestSerialization:
    def test_round_trip(self):
        spec = ScenarioSpec(
            axes={"lps": [1, 2], "accuracy": [0.9, 0.99]},
            name="rt",
            mc_trials=16,
            seed=5,
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"name": "f", "axes": {"lps": [3, 4]}}))
        spec = ScenarioSpec.from_file(path)
        assert spec.name == "f" and spec.lps_values == (3, 4)

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ValidationError, match="not valid JSON"):
            ScenarioSpec.from_file(path)

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown spec keys"):
            ScenarioSpec.from_dict({"axes": {}, "workers": 4})

    def test_negative_mc_trials_rejected(self):
        with pytest.raises(ValidationError, match="mc_trials"):
            ScenarioSpec(axes={"lps": [1]}, mc_trials=-1)
