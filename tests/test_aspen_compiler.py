"""The ASPEN sweep compiler: exact lowering, fallback, and backend wiring.

The contract under test is bit-identity: for every model the compiler
accepts, ``compile_sweep(...)(AXIS=xs)[i]`` must equal
``evaluator.evaluate(app, socket, {AXIS: xs[i]}).total_seconds`` *bitwise*
(``np.array_equal``, not ``allclose``).  Models the compiler cannot lower
must raise :class:`AspenLoweringError` at compile time, and the callers
(:class:`AspenStageModels`, the aspen backend's ``sweep``) must fall back
to the tree walk and still produce identical arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aspen import (
    ApplicationModel,
    AspenEvaluator,
    AspenLoweringError,
    MachineModel,
    ModelRegistry,
    compile_sweep,
    load_paper_models,
    parse_source,
)
from repro.aspen import expressions as aspen_expressions
from repro.exceptions import AspenEvaluationError
from repro.backends import get
from repro.backends.base import SweepColumns

MACHINE_SRC = """
machine TestBox { [1] N nodes }
node N { [1] S sockets }
socket S {
  [2] C cores
  M memory
  linked with L
}
core C {
  param hz = 1e9
  resource flops(number) [number / hz]
    with sp [ base ], dp [ base * 2 ], simd [ base / 4 ], fmad [ base / 2 ]
}
memory M {
  param bw = 1e9
  property capacity [1e12]
  resource loads(bytes) [bytes / bw]
  resource stores(bytes) [bytes / bw]
}
interconnect L {
  resource intracomm(bytes) [1e-6 + bytes / 2e9]
}
"""


@pytest.fixture(scope="module")
def machine() -> MachineModel:
    reg = ModelRegistry()
    reg.load_text(MACHINE_SRC)
    return reg.machine("TestBox")


@pytest.fixture(scope="module")
def paper():
    return load_paper_models()


def app_from(src: str) -> ApplicationModel:
    return ApplicationModel(parse_source(src).models[0])


def reference(app, machine, socket, xs, axis="N", params=None):
    """The tree-walking totals the compiled closure must reproduce."""
    ev = AspenEvaluator(machine)
    out = []
    for x in xs:
        p = dict(params or {})
        p[axis] = float(x)
        out.append(ev.evaluate(app, socket=socket, params=p).total_seconds)
    return np.array(out, dtype=np.float64)


def assert_bit_identical(compiled, ref, **axes):
    got = compiled(**axes)
    assert got.dtype == np.float64
    assert np.array_equal(got, ref), (
        f"compiled sweep diverged from the evaluator: "
        f"max |delta| = {np.max(np.abs(got - ref))}"
    )


# --------------------------------------------------------------------- #
# Synthetic models: every lowering path
# --------------------------------------------------------------------- #
class TestSyntheticLowering:
    def test_polynomial_flops_with_traits(self, machine):
        app = app_from(
            """
            model Poly {
              param N = 4
              param Work = N^2 + 3 * N - 1
              kernel main {
                execute [1] { flops [Work] as sp, fmad, simd }
              }
            }
            """
        )
        xs = np.arange(1.0, 200.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_iterate_par_seq_structure(self, machine):
        app = app_from(
            """
            model Shape {
              param N = 4
              kernel inner {
                execute [2] {
                  flops [N * N] as sp
                  seconds [N / 100]
                }
              }
              kernel main {
                iterate [N] { inner }
                par {
                  execute [1] { seconds [N * 2] }
                  execute [1] { seconds [5] }
                }
                seq {
                  execute [1] { seconds [1] }
                  execute [1] { seconds [N] }
                }
              }
            }
            """
        )
        xs = np.arange(1.0, 64.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_transcendental_on_varying_argument_is_exact(self, machine):
        # log() on a varying operand takes the elementwise-map path: the
        # evaluator's own libm call per element, not numpy's SIMD log.
        app = app_from(
            """
            model Logs {
              param N = 4
              kernel main {
                execute [1] { flops [N * log(N) + sqrt(N)] as sp }
              }
            }
            """
        )
        xs = np.arange(1.0, 300.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_varying_power_operator_is_exact(self, machine):
        app = app_from(
            """
            model Pow {
              param N = 4
              kernel main { execute [1] { seconds [N ^ 2.5 / 1e6] } }
            }
            """
        )
        xs = np.arange(1.0, 50.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_min_max_fold_matches_python(self, machine):
        app = app_from(
            """
            model Clamp {
              param N = 4
              kernel main {
                execute [1] { seconds [max(min(N, 100), 10, N / 2)] }
              }
            }
            """
        )
        xs = np.arange(0.0, 250.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_constant_model_broadcasts(self, machine):
        app = app_from(
            "model K { param N = 4 kernel main { execute [1] { seconds [7] } } }"
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        out = compiled(N=np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(out, np.full(3, 7.0))

    def test_constant_folding_goes_through_the_scalar_evaluator(self, machine):
        # The folded constant must be the tree walk's float, not a
        # reassociated one: use a sum whose grouping matters in float64.
        app = app_from(
            """
            model Fold {
              param N = 4
              param C = 0.1 + 0.2 + 0.3
              kernel main { execute [1] { seconds [C + 0 * N] } }
            }
            """
        )
        xs = np.array([5.0])
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_multiplier_association_matches_evaluator(self, machine):
        # iterate [N] { execute [M] } must price as combined * (N * M)
        # in the evaluator's association order, not (combined * N) * M.
        app = app_from(
            """
            model Nest {
              param N = 4
              kernel main {
                iterate [N] {
                  iterate [7] {
                    execute [3] { seconds [0.1 * N + 0.7] }
                  }
                }
              }
            }
            """
        )
        xs = np.arange(1.0, 120.0)
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)

    def test_negative_varying_count_raises_at_call_time(self, machine):
        app = app_from(
            """
            model Neg {
              param N = 4
              kernel main { iterate [N - 10] { execute [1] { seconds [1] } } }
            }
            """
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert compiled(N=np.array([11.0]))[0] >= 0
        with pytest.raises(AspenEvaluationError, match="negative"):
            compiled(N=np.array([3.0]))

    def test_varying_division_by_zero_raises(self, machine):
        app = app_from(
            """
            model Div {
              param N = 4
              kernel main { execute [1] { seconds [1 / N] } }
            }
            """
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        with pytest.raises(AspenEvaluationError, match="division by zero"):
            compiled(N=np.array([1.0, 0.0]))

    def test_unmatched_trait_warning_surfaces_at_compile_time(self, machine):
        app = app_from(
            """
            model W {
              param N = 4
              kernel main { execute [1] { flops [N] as sp, bogus } }
            }
            """
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert any("bogus" in w for w in compiled.warnings)
        xs = np.arange(1.0, 5.0)
        assert_bit_identical(compiled, reference(app, machine, "S", xs), N=xs)


class TestCompiledSweepApi:
    def test_axis_names_are_validated(self, machine):
        app = app_from(
            "model A { param N = 4 kernel main { execute [1] { seconds [N] } } }"
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        with pytest.raises(AspenEvaluationError, match="takes axes"):
            compiled(M=np.array([1.0]))
        with pytest.raises(AspenEvaluationError, match="takes axes"):
            compiled()

    def test_axes_params_overlap_rejected(self, machine):
        app = app_from(
            "model A { param N = 4 kernel main { execute [1] { seconds [N] } } }"
        )
        with pytest.raises(AspenEvaluationError, match="overlap"):
            compile_sweep(app, machine.socket("S"), axes=("N",), params={"N": 3.0})

    def test_empty_axes_rejected(self, machine):
        app = app_from(
            "model A { param N = 4 kernel main { execute [1] { seconds [N] } } }"
        )
        with pytest.raises(AspenEvaluationError, match="at least one"):
            compile_sweep(app, machine.socket("S"), axes=())

    def test_scalar_axis_value_accepted(self, machine):
        app = app_from(
            "model A { param N = 4 kernel main { execute [1] { seconds [N * 2] } } }"
        )
        compiled = compile_sweep(app, machine.socket("S"), axes=("N",))
        assert float(compiled(N=3.0)) == 6.0


class TestFallback:
    def test_extension_function_on_varying_arg_is_unlowerable(
        self, machine, monkeypatch
    ):
        # An extension registered into the evaluator's function table is
        # evaluable but not lowerable: the compiler must refuse rather
        # than guess, so callers fall back to the tree walk.
        monkeypatch.setitem(aspen_expressions.FUNCTIONS, "erfinv", lambda x: x)
        app = app_from(
            """
            model Ext {
              param N = 4
              kernel main { execute [1] { seconds [erfinv(N)] } }
            }
            """
        )
        ev = AspenEvaluator(machine)
        assert ev.evaluate(app, "S", {"N": 2.0}).total_seconds == 2.0
        with pytest.raises(AspenLoweringError, match="erfinv"):
            compile_sweep(app, machine.socket("S"), axes=("N",))
        # ...but the same extension in a constant subtree folds fine.
        assert (
            float(compile_sweep(app, machine.socket("S"), axes=("M",),
                                params={"N": 2.0})(M=1.0))
            == 2.0
        )

    def test_stage_models_fall_back_to_tree_walk(self, monkeypatch):
        from repro.core.aspen_backend import AspenStageModels

        def refuse(self, app, socket, axes, params=None, kernel="main"):
            raise AspenLoweringError("forced fallback for test")

        monkeypatch.setattr(AspenEvaluator, "compile_sweep", refuse)
        models = AspenStageModels()
        lps = np.array([1, 10, 50], dtype=np.int64)
        s1 = models.stage1_seconds_array(lps)
        s3 = models.stage3_seconds_array(lps, accuracy=0.9, success=0.5)
        assert np.array_equal(
            s1, np.array([models.stage1_seconds(int(n)) for n in lps])
        )
        assert np.array_equal(
            s3,
            np.array(
                [models.stage3_seconds(int(n), 0.9, 0.5) for n in lps]
            ),
        )


# --------------------------------------------------------------------- #
# The paper listings: the differential grid
# --------------------------------------------------------------------- #
class TestPaperListings:
    def test_stage1_bit_identical_over_lps(self, paper):
        app = paper.application("Stage1")
        machine = paper.machine("SimpleNode")
        xs = np.arange(1.0, 501.0)
        compiled = compile_sweep(
            app, machine.socket("intel_xeon_e5_2680"), axes=("LPS",)
        )
        ref = reference(app, machine, "intel_xeon_e5_2680", xs, axis="LPS")
        assert_bit_identical(compiled, ref, LPS=xs)

    def test_stage2_bit_identical_over_accuracy(self, paper):
        # Stage 2's Accuracy feeds straight into ceil(log/log): the
        # transcendental-on-varying-argument path on a real listing.
        app = paper.application("Stage2")
        machine = paper.machine("SimpleNode")
        xs = np.arange(1.0, 100.0)
        compiled = compile_sweep(
            app,
            machine.socket("dwave_vesuvius_20"),
            axes=("Accuracy",),
            params={"Success": 0.5},
        )
        ref = reference(
            app, machine, "dwave_vesuvius_20", xs,
            axis="Accuracy", params={"Success": 0.5},
        )
        assert_bit_identical(compiled, ref, Accuracy=xs)

    @pytest.mark.parametrize(
        "params",
        [
            {},
            {"Accuracy": 0.9, "Success": 0.5},
            {"Accuracy": 0.999, "Success": 0.9},
        ],
    )
    def test_stage3_bit_identical_over_lps(self, paper, params):
        app = paper.application("Stage3")
        machine = paper.machine("SimpleNode")
        xs = np.arange(1.0, 301.0)
        compiled = compile_sweep(
            app, machine.socket("intel_xeon_e5_2680"), axes=("LPS",),
            params=params,
        )
        ref = reference(
            app, machine, "intel_xeon_e5_2680", xs, axis="LPS", params=params
        )
        assert_bit_identical(compiled, ref, LPS=xs)

    def test_evaluator_compile_sweep_entry_point(self, paper):
        ev = AspenEvaluator(paper.machine("SimpleNode"))
        compiled = ev.compile_sweep(
            paper.application("Stage1"), "intel_xeon_e5_2680", axes=("LPS",)
        )
        assert compiled.model == "Stage1"
        assert compiled.axes == ("LPS",)
        one = ev.evaluate(
            paper.application("Stage1"), "intel_xeon_e5_2680", {"LPS": 42.0}
        ).total_seconds
        assert float(compiled(LPS=42.0)) == one


# --------------------------------------------------------------------- #
# Backend wiring: sweep == evaluate loop, bit for bit
# --------------------------------------------------------------------- #
class TestBackendWiring:
    COLUMNS = (
        "stage1_s", "stage2_s", "stage3_s", "total_s",
        "quantum_fraction", "dominant_stage", "repetitions",
    )

    @pytest.mark.parametrize(
        "config",
        [
            {"accuracy": 0.99, "success": 0.75},
            {"accuracy": 0.9, "success": 0.5},
            {"accuracy": 0.999, "success": 0.9},
        ],
    )
    def test_aspen_sweep_matches_evaluate_loop(self, config):
        backend = get("aspen")
        lps = list(range(1, 120))
        fast = backend.sweep(config, lps)
        ref = SweepColumns.from_timings(
            [backend.evaluate({**config, "lps": n}) for n in lps]
        )
        for name in self.COLUMNS:
            a, b = getattr(fast, name), getattr(ref, name)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name

    def test_compiled_closures_are_cached(self):
        from repro.core.aspen_backend import AspenStageModels

        models = AspenStageModels()
        lps = np.arange(1, 10, dtype=np.int64)
        models.stage1_seconds_array(lps)
        models.stage3_seconds_array(lps, accuracy=0.9, success=0.5)
        models.stage3_seconds_array(lps, accuracy=0.9, success=0.5)
        keys = sorted(k[0] for k in models._compiled)
        assert keys == ["stage1", "stage3"]
