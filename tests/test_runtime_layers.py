"""Tests for the Fig.-2 layered request sequence and traces."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.runtime import (
    RequestProfile,
    Simulator,
    Trace,
    run_single_session,
    split_execution_session,
)


@pytest.fixture
def profile() -> RequestProfile:
    return RequestProfile(
        ising_generation=0.001,
        embedding=0.5,
        processor_init=0.32,
        quantum_execution=0.0004,
        postprocessing=1e-6,
        network_latency=0.0002,
        payload_transfer=0.00001,
    )


class TestProfile:
    def test_total_service_time(self, profile):
        expected = (
            2 * (0.0002 + 0.00001) + 0.001 + 0.5 + 0.32 + 0.0004 + 1e-6
        )
        assert profile.total_service_time == pytest.approx(expected)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            RequestProfile(-1, 0, 0, 0, 0)


class TestSingleSession:
    def test_latency_matches_profile(self, profile):
        latency, _ = run_single_session(profile)
        assert latency == pytest.approx(profile.total_service_time)

    def test_trace_order_follows_fig2(self, profile):
        _, trace = run_single_session(profile)
        ops = [s.operation for s in sorted(trace.spans, key=lambda s: s.start)]
        assert ops == [
            "push_problem",
            "generate_ising",
            "minor_embedding",
            "program_processor",
            "anneal_and_readout",
            "postprocess_sort",
            "return_solution",
        ]

    def test_layers_assigned(self, profile):
        _, trace = run_single_session(profile)
        by_op = {s.operation: s.layer for s in trace.spans}
        assert by_op["minor_embedding"] == "mw"
        assert by_op["program_processor"] == "qhw"
        assert by_op["push_problem"] == "network"

    def test_no_network_spans_when_local(self):
        p = RequestProfile(0.01, 0.02, 0.03, 0.004, 0.001)
        _, trace = run_single_session(p)
        assert all(s.layer != "network" for s in trace.spans)

    def test_embedding_dominates_trace(self, profile):
        """The paper's bottleneck shows up in the span accounting."""
        _, trace = run_single_session(profile)
        per_op = trace.total_by_operation()
        assert per_op["minor_embedding"] > per_op["anneal_and_readout"] * 100


class TestContention:
    def test_second_session_queues(self, profile):
        sim = Simulator()
        trace = Trace()
        qpu = sim.resource(capacity=1, name="qpu")
        p1 = sim.process(split_execution_session(sim, qpu, profile, trace, 0))
        p2 = sim.process(split_execution_session(sim, qpu, profile, trace, 1))
        sim.run()
        lat1, lat2 = float(p1.value), float(p2.value)
        assert lat2 > lat1  # the second session waited for the QPU
        waits = [s for s in trace.spans if s.operation == "queue_wait"]
        assert len(waits) == 1 and waits[0].session == 1

    def test_queue_wait_duration(self, profile):
        sim = Simulator()
        trace = Trace()
        qpu = sim.resource(capacity=1)
        sim.process(split_execution_session(sim, qpu, profile, trace, 0))
        sim.process(split_execution_session(sim, qpu, profile, trace, 1))
        sim.run()
        wait = next(s for s in trace.spans if s.operation == "queue_wait")
        qpu_hold = profile.processor_init + profile.quantum_execution
        assert wait.duration == pytest.approx(qpu_hold, rel=1e-6)


class TestTrace:
    def test_span_validation(self):
        with pytest.raises(ValidationError):
            Trace().record("sw", "x", 2.0, 1.0)

    def test_makespan(self):
        t = Trace()
        t.record("sw", "a", 0.0, 1.0)
        t.record("mw", "b", 2.0, 5.0)
        assert t.makespan == 5.0
        assert Trace().makespan == 0.0

    def test_total_by_layer(self):
        t = Trace()
        t.record("sw", "a", 0.0, 1.0)
        t.record("sw", "b", 1.0, 3.0)
        t.record("mw", "c", 0.0, 0.5)
        totals = t.total_by_layer()
        assert totals["sw"] == pytest.approx(3.0)
        assert totals["mw"] == pytest.approx(0.5)

    def test_session_latency(self):
        t = Trace()
        t.record("sw", "a", 1.0, 2.0, session=3)
        t.record("mw", "b", 2.0, 7.0, session=3)
        assert t.session_latency(3) == pytest.approx(6.0)
        with pytest.raises(ValidationError):
            t.session_latency(99)

    def test_sessions_listing(self):
        t = Trace()
        t.record("sw", "a", 0, 1, session=2)
        t.record("sw", "a", 0, 1, session=0)
        assert t.sessions() == [0, 2]

    def test_to_table_renders(self, profile):
        _, trace = run_single_session(profile)
        table = trace.to_table("ms")
        assert "minor_embedding" in table
        assert "start [ms]" in table
        with pytest.raises(ValidationError):
            trace.to_table("hours")
