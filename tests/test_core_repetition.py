"""Tests for Eq. (6): the repetition planner."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    achieved_accuracy,
    required_repetitions,
    required_success_probability,
)
from repro.exceptions import ValidationError

probs_open = st.floats(min_value=0.01, max_value=0.99)


class TestRequiredRepetitions:
    def test_paper_example(self):
        """ps = 0.7, pa = 0.99 -> 4 runs (the Fig. 9(b) regime)."""
        assert required_repetitions(0.99, 0.7) == 4

    def test_stage3_listing_values(self):
        """Fig. 8 defaults: Success = 0.75, Accuracy = 0.99 -> Results = 4."""
        assert required_repetitions(0.99, 0.75) == 4

    def test_formula(self):
        for pa, ps in [(0.9, 0.5), (0.999, 0.6), (0.5, 0.1)]:
            expected = math.ceil(math.log(1 - pa) / math.log(1 - ps))
            assert required_repetitions(pa, ps) == expected

    def test_zero_accuracy(self):
        assert required_repetitions(0.0, 0.5) == 0

    def test_perfect_device(self):
        assert required_repetitions(0.99, 1.0) == 1

    def test_guards(self):
        with pytest.raises(ValidationError):
            required_repetitions(1.0, 0.5)  # pa must be < 1
        with pytest.raises(ValidationError):
            required_repetitions(0.5, 0.0)  # ps must be > 0
        with pytest.raises(ValidationError):
            required_repetitions(-0.1, 0.5)

    def test_few_iterations_above_ps_06(self):
        """Paper Sec. 3.3: for ps > 0.6, pa > 0.99 needs only a few runs."""
        for ps in (0.61, 0.7, 0.8, 0.9):
            assert required_repetitions(0.99, ps) <= 5

    def test_insensitive_above_06(self):
        """The Fig. 9(b) observation: the curve is ~the same for all ps > 0.6."""
        reps = {ps: required_repetitions(0.99, ps) for ps in (0.62, 0.7, 0.8)}
        assert max(reps.values()) - min(reps.values()) <= 2


class TestAchievedAccuracy:
    def test_inverse_relationship(self):
        s = required_repetitions(0.99, 0.7)
        assert achieved_accuracy(s, 0.7) >= 0.99
        if s > 1:
            assert achieved_accuracy(s - 1, 0.7) < 0.99

    def test_zero_runs(self):
        assert achieved_accuracy(0, 0.7) == 0.0

    def test_guards(self):
        with pytest.raises(ValidationError):
            achieved_accuracy(-1, 0.5)


class TestRequiredSuccess:
    def test_round_trip(self):
        ps = required_success_probability(0.99, 4)
        assert achieved_accuracy(4, ps) == pytest.approx(0.99)

    def test_single_run(self):
        assert required_success_probability(0.9, 1) == pytest.approx(0.9)

    def test_guards(self):
        with pytest.raises(ValidationError):
            required_success_probability(0.5, 0)
        assert required_success_probability(0.0, 0) == 0.0


@settings(max_examples=120, deadline=None)
@given(pa=probs_open, ps=probs_open)
def test_property_repetitions_sufficient_and_tight(pa, ps):
    """s runs reach pa; s-1 runs do not (up to the ceiling)."""
    s = required_repetitions(pa, ps)
    assert achieved_accuracy(s, ps) >= pa - 1e-12
    if s > 0:
        assert achieved_accuracy(s - 1, ps) < pa + 1e-9


@settings(max_examples=60, deadline=None)
@given(pa=probs_open, ps1=probs_open, ps2=probs_open)
def test_property_monotone_in_success(pa, ps1, ps2):
    lo, hi = sorted((ps1, ps2))
    assert required_repetitions(pa, hi) <= required_repetitions(pa, lo)


@settings(max_examples=60, deadline=None)
@given(pa1=probs_open, pa2=probs_open, ps=probs_open)
def test_property_monotone_in_accuracy(pa1, pa2, ps):
    lo, hi = sorted((pa1, pa2))
    assert required_repetitions(lo, ps) <= required_repetitions(hi, ps)


def test_monte_carlo_validation():
    """Eq. 6 against the simulated annealer: s repetitions reach the target
    accuracy within statistical tolerance."""
    import numpy as np

    from repro.annealer import ExactSolver, SimulatedAnnealingSampler, geometric_schedule
    from repro.qubo import random_ising

    m = random_ising(10, density=0.6, rng=42)
    ground = ExactSolver().ground_energy(m)
    sa = SimulatedAnnealingSampler(geometric_schedule(60))

    # Estimate ps empirically.
    big = sa.sample(m, num_reads=400, rng=0)
    ps = big.ground_state_probability(ground)
    assert 0.05 < ps < 0.999  # informative regime

    pa = 0.9
    s = required_repetitions(pa, ps)
    # Run many batches of s reads; the fraction containing the ground state
    # should be ~>= pa.
    batches, hits = 200, 0
    rng = np.random.default_rng(1)
    for _ in range(batches):
        ss = sa.sample(m, num_reads=s, rng=rng)
        hits += ss.lowest_energy <= ground + 1e-9
    observed = hits / batches
    assert observed >= pa - 0.07  # 3-sigma-ish slack for 200 batches
