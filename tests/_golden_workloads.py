"""Golden-workload definitions for the kernel-reproducibility tests.

The hot kernels (``SimulatedAnnealingSampler.sample``, ``brute_force_ising``,
``brute_force_qubo``) have been rewritten for speed; the contract is that for
a fixed seed they return *bit-identical* spin/state arrays (and energies to
float64 round-off) compared with the original reference implementation.
``tests/data/golden_kernels.json`` holds outputs frozen from that reference
implementation; ``tests/test_perf_golden.py`` replays the workloads below and
compares.

Regenerate (only if a workload is added — never to paper over a mismatch)::

    PYTHONPATH=src python tests/_golden_workloads.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_kernels.json"


def _ring_model():
    from repro.qubo import IsingModel

    # Zero fields + ferromagnetic ring: heavily degenerate spectrum, which
    # exercises the deterministic integer-value tiebreak of the brute-force
    # top-k pool.
    return IsingModel(np.zeros(8), {(i, (i + 1) % 8): -1.0 for i in range(8)})


def _fields_and_chain_model():
    from repro.qubo import IsingModel

    h = [0.5, -1.0, 0.25, 0.0, -0.75, 1.5, -0.125, 0.625, -0.375, 1.0]
    J = {(i, i + 1): (-1.0) ** i * 0.8 for i in range(9)}
    return IsingModel(h, J, offset=0.25)


def sa_cases() -> dict[str, dict]:
    """Simulated-annealing golden workloads (name -> kwargs description)."""
    from repro.annealer import geometric_schedule, linear_schedule
    from repro.qubo import random_ising

    cases = {
        "sa_random12": dict(
            model=random_ising(12, density=0.5, rng=5),
            schedule=geometric_schedule(48),
            num_reads=16,
            rng=101,
        ),
        "sa_random14": dict(
            model=random_ising(14, density=0.6, rng=42),
            schedule=geometric_schedule(32),
            num_reads=8,
            rng=7,
        ),
        "sa_sparse_fields": dict(
            model=_fields_and_chain_model(),
            schedule=geometric_schedule(20),
            num_reads=4,
            rng=3,
        ),
        "sa_initial_states": dict(
            model=random_ising(8, rng=3),
            schedule=linear_schedule(16),
            num_reads=5,
            rng=13,
            initial_states=np.ones((5, 8), dtype=np.int8),
        ),
    }
    return cases


def brute_force_cases() -> dict[str, dict]:
    """Brute-force golden workloads (name -> kwargs description)."""
    from repro.qubo import random_ising, random_qubo

    return {
        "bf_ising_random10": dict(problem=random_ising(10, rng=2), num_best=5),
        "bf_qubo_random9": dict(problem=random_qubo(9, rng=4), num_best=3),
        "bf_ising_ties": dict(problem=_ring_model(), num_best=6),
        "bf_ising_multichunk": dict(
            problem=random_ising(17, density=0.3, rng=6), num_best=4
        ),
    }


def run_sa_case(case: dict):
    from repro.annealer import SimulatedAnnealingSampler

    sampler = SimulatedAnnealingSampler(case["schedule"])
    return sampler.sample(
        case["model"],
        num_reads=case["num_reads"],
        rng=case["rng"],
        initial_states=case.get("initial_states"),
    )


def run_brute_force_case(case: dict):
    from repro.qubo import IsingModel, brute_force_ising, brute_force_qubo

    problem = case["problem"]
    if isinstance(problem, IsingModel):
        return brute_force_ising(problem, num_best=case["num_best"])
    return brute_force_qubo(problem, num_best=case["num_best"])


def generate() -> dict:
    out: dict = {"sa": {}, "brute_force": {}}
    for name, case in sa_cases().items():
        ss = run_sa_case(case)
        out["sa"][name] = {
            "samples": ss.samples.tolist(),
            "energies": ss.energies.tolist(),
            "num_occurrences": ss.num_occurrences.tolist(),
        }
    for name, case in brute_force_cases().items():
        states, energies = run_brute_force_case(case)
        out["brute_force"][name] = {
            "states": states.tolist(),
            "energies": energies.tolist(),
        }
    return out


def main(argv: list[str]) -> int:
    if "--regenerate" not in argv:
        print(__doc__)
        return 2
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(generate(), indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
