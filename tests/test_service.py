"""End-to-end tests of the study job service over live HTTP.

Every test here talks to a real :class:`StudyServer` bound to an ephemeral
port through raw ``http.client`` — deliberately *not* through
``repro.service.client``, so the server is pinned against the wire
protocol itself (the client library gets its own suite in
``tests/test_service_client.py``).

The load-bearing assertions, mirroring the acceptance criteria:

* an HTTP-served artifact is byte-identical to a direct ``run_study``
  artifact of the same spec;
* a repeated submission deduplicates onto the same content-hash job id and
  never re-executes a shard; a fresh server over a warm ``StudyCache``
  serves the whole job from cache and says so in the marker header;
* concurrent submissions of distinct specs all complete with correct
  artifacts;
* invalid specs, unknown backends, and unknown job ids produce structured
  4xx bodies with machine-readable codes.

A golden HTTP transcript (``tests/data/service_http.txt``) pins the exact
response surface, following the ``cli_*.txt`` fixture pattern.  Regenerate
after an intentional protocol change with::

    PYTHONPATH=src python tests/test_service.py --regen
"""

from __future__ import annotations

import http.client
import json
import re
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.service import StudyServer
from repro.service.jobs import Job, JobState
from repro.service.protocol import (
    ERR_INVALID_JSON,
    ERR_INVALID_SPEC,
    ERR_JOB_NOT_READY,
    ERR_METHOD_NOT_ALLOWED,
    ERR_NOT_FOUND,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_BACKEND,
    ERR_UNKNOWN_JOB,
    HEADER_CACHE_SHARDS,
    HEADER_SERVED_FROM_CACHE,
    JOB_ID_PATTERN,
)
from repro.studies import ScenarioSpec, run_study

DATA_DIR = Path(__file__).parent / "data"
GOLDEN_FIXTURE = DATA_DIR / "service_http.txt"

#: The suite's standard small spec: 10 points, one shard.
SPEC_PAYLOAD = {
    "name": "e2e",
    "axes": {"lps": [1, 2, 3, 4, 5], "accuracy": [0.9, 0.99]},
    "mc_trials": 0,
    "seed": 0,
}

NO_SUCH_JOB = "0" * 64


def request(server, method: str, path: str, payload=None, raw_body: bytes | None = None):
    """One HTTP exchange; returns ``(status, headers_dict, body_bytes)``."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        body = raw_body
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        if body is not None:
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


def wait_done(server, job_id: str, timeout: float = 60.0) -> dict:
    """Poll the status endpoint until the job is terminal."""
    deadline = time.monotonic() + timeout
    while True:
        status, _, body = request(server, "GET", f"/studies/{job_id}")
        assert status == 200
        snapshot = json.loads(body)
        if snapshot["state"] in ("done", "failed"):
            return snapshot
        assert time.monotonic() < deadline, f"job {job_id} stuck {snapshot['state']}"
        time.sleep(0.02)


def direct_artifact(payload: dict, shard_size: int | None = None) -> bytes:
    """The reference bytes: a local run_study of the same spec."""
    from repro.studies.executor import DEFAULT_SHARD_SIZE

    spec = ScenarioSpec.from_dict(payload)
    results = run_study(spec, shard_size=shard_size or DEFAULT_SHARD_SIZE)
    return results.artifact_bytes()


@pytest.fixture()
def server(tmp_path):
    with StudyServer(cache=tmp_path / "cache", job_workers=2) as srv:
        yield srv


@pytest.fixture()
def paused_server():
    """A server whose jobs never run (no workers): queued state is observable."""
    with StudyServer(job_workers=0, queue_size=1) as srv:
        yield srv


# --------------------------------------------------------------------- #
# Happy path
# --------------------------------------------------------------------- #
def test_submit_poll_fetch_happy_path(server):
    status, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
    assert status == 202
    submitted = json.loads(body)
    assert JOB_ID_PATTERN.match(submitted["job_id"])
    assert submitted["deduplicated"] is False
    assert submitted["state"] == "queued"
    assert submitted["num_points"] == 10
    assert submitted["links"]["artifact"].endswith("/artifact")

    snapshot = wait_done(server, submitted["job_id"])
    assert snapshot["state"] == "done"
    progress = snapshot["progress"]
    assert progress["shards_done"] == progress["shards_total"] == 1
    assert progress["shards_from_cache"] == 0
    assert snapshot["error"] is None

    status, headers, artifact = request(
        server, "GET", submitted["links"]["artifact"]
    )
    assert status == 200
    assert headers["Content-Type"].startswith("application/json")
    assert headers["ETag"] == f'"{submitted["job_id"]}"'
    assert headers[HEADER_SERVED_FROM_CACHE] == "false"
    assert headers[HEADER_CACHE_SHARDS] == "0/1"
    assert artifact == direct_artifact(SPEC_PAYLOAD)


def test_served_artifact_parses_as_study_results(server):
    from repro.studies import StudyResults

    _, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
    job_id = json.loads(body)["job_id"]
    wait_done(server, job_id)
    _, _, artifact = request(server, "GET", f"/studies/{job_id}/artifact")
    results = StudyResults.from_dict(json.loads(artifact))
    assert results.num_points == 10
    assert list(results.column("lps")[:5]) == [1, 2, 3, 4, 5]


def test_progress_reports_every_shard(tmp_path):
    # shard_size 4 over 10 points -> 3 shards, all visible in the status feed.
    with StudyServer(cache=tmp_path / "cache", shard_size=4) as srv:
        _, _, body = request(srv, "POST", "/studies", SPEC_PAYLOAD)
        submitted = json.loads(body)
        assert submitted["progress"]["shards_total"] == 3
        snapshot = wait_done(srv, submitted["job_id"])
        assert snapshot["progress"] == {
            "shards_done": 3,
            "shards_total": 3,
            "shards_from_cache": 0,
            "workers": {},
        }
        _, _, artifact = request(srv, "GET", f"/studies/{submitted['job_id']}/artifact")
        assert artifact == direct_artifact(SPEC_PAYLOAD, shard_size=4)


def test_healthz_and_backends(server):
    status, _, body = request(server, "GET", "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["jobs"] == {"queued": 0, "running": 0, "done": 0, "failed": 0}
    assert health["queue_capacity"] == 64

    status, _, body = request(server, "GET", "/backends")
    assert status == 200
    listing = json.loads(body)
    names = [entry["name"] for entry in listing["backends"]]
    assert names == sorted(names)
    assert {"aspen", "closed_form", "des"} <= set(names)
    assert listing["default"] == "closed_form"
    for entry in listing["backends"]:
        assert entry["rtol"] >= 0 and entry["atol"] >= 0
        assert entry["supported_axes"]


# --------------------------------------------------------------------- #
# Dedup / cache service
# --------------------------------------------------------------------- #
def test_repeat_submission_deduplicates_without_reexecution(server):
    _, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
    first = json.loads(body)
    wait_done(server, first["job_id"])
    executed_before = server.manager.executed_shards
    _, _, artifact_one = request(server, "GET", f"/studies/{first['job_id']}/artifact")

    status, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
    assert status == 200  # attached to the known job, not 202-created
    second = json.loads(body)
    assert second["deduplicated"] is True
    assert second["job_id"] == first["job_id"]
    assert second["state"] == "done"

    _, _, artifact_two = request(server, "GET", f"/studies/{second['job_id']}/artifact")
    assert artifact_two == artifact_one
    assert server.manager.executed_shards == executed_before
    _, _, body = request(server, "GET", "/healthz")
    assert json.loads(body)["jobs"]["done"] == 1


def test_relabelled_spec_is_a_distinct_job_with_identical_cache_shards(server):
    # The display name is not part of the grid identity for *shards* (the
    # StudyCache serves them) but it is part of the artifact, so the job id
    # (and bytes) legitimately differ.
    _, _, body = request(server, "POST", "/studies", SPEC_PAYLOAD)
    first = json.loads(body)
    wait_done(server, first["job_id"])

    relabelled = {**SPEC_PAYLOAD, "name": "e2e-relabelled"}
    _, _, body = request(server, "POST", "/studies", relabelled)
    second = json.loads(body)
    assert second["deduplicated"] is False
    assert second["job_id"] != first["job_id"]
    snapshot = wait_done(server, second["job_id"])
    # Every shard of the relabelled grid came from the cache: no re-execution.
    assert snapshot["progress"]["shards_from_cache"] == 1
    _, headers, _ = request(server, "GET", f"/studies/{second['job_id']}/artifact")
    assert headers[HEADER_SERVED_FROM_CACHE] == "true"


def test_fresh_server_serves_known_grid_from_study_cache(tmp_path):
    cache_dir = tmp_path / "shared-cache"
    with StudyServer(cache=cache_dir) as first_server:
        _, _, body = request(first_server, "POST", "/studies", SPEC_PAYLOAD)
        job_id = json.loads(body)["job_id"]
        wait_done(first_server, job_id)
        _, _, cold_artifact = request(first_server, "GET", f"/studies/{job_id}/artifact")
        assert first_server.manager.executed_shards == 1

    # A brand-new server process over the same cache directory: the job
    # table is empty, but the shard store answers everything.
    with StudyServer(cache=cache_dir) as second_server:
        status, _, body = request(second_server, "POST", "/studies", SPEC_PAYLOAD)
        assert status == 202
        submitted = json.loads(body)
        assert submitted["deduplicated"] is False
        assert submitted["job_id"] == job_id  # content-hash ids are portable
        wait_done(second_server, job_id)
        status, headers, warm_artifact = request(
            second_server, "GET", f"/studies/{job_id}/artifact"
        )
        assert status == 200
        assert headers[HEADER_SERVED_FROM_CACHE] == "true"
        assert headers[HEADER_CACHE_SHARDS] == "1/1"
        assert warm_artifact == cold_artifact
        assert second_server.manager.executed_shards == 0


# --------------------------------------------------------------------- #
# Concurrency
# --------------------------------------------------------------------- #
def test_concurrent_distinct_submissions_all_complete_correctly(tmp_path):
    payloads = [
        {"name": f"conc-{i}", "axes": {"lps": list(range(1, 4 + i)), "success": [0.6, 0.7]}}
        for i in range(6)
    ]
    with StudyServer(cache=tmp_path / "cache", job_workers=4) as srv:
        responses: dict[int, dict] = {}
        errors: list[Exception] = []

        def submit(index: int) -> None:
            try:
                _, _, body = request(srv, "POST", "/studies", payloads[index])
                responses[index] = json.loads(body)
            except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(len(payloads))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(responses) == len(payloads)
        job_ids = {i: r["job_id"] for i, r in responses.items()}
        assert len(set(job_ids.values())) == len(payloads)  # all distinct grids

        for index, payload in enumerate(payloads):
            snapshot = wait_done(srv, job_ids[index])
            assert snapshot["state"] == "done", snapshot
            _, _, artifact = request(srv, "GET", f"/studies/{job_ids[index]}/artifact")
            assert artifact == direct_artifact(payload), f"artifact {index} drifted"


# --------------------------------------------------------------------- #
# Structured errors
# --------------------------------------------------------------------- #
def _error_code(body: bytes) -> str:
    payload = json.loads(body)
    assert set(payload) == {"error"}
    assert "message" in payload["error"]
    return payload["error"]["code"]


def test_invalid_json_body_is_structured_400(server):
    status, _, body = request(
        server, "POST", "/studies", raw_body=b"{not json"
    )
    assert status == 400
    assert _error_code(body) == ERR_INVALID_JSON


def test_invalid_spec_is_structured_400(server):
    for payload in (
        {"axes": {"lps": []}},                      # empty axis
        {"axes": {"nonsense_axis": [1]}},           # unknown axis
        {"axes": {"accuracy": [1.5]}},              # out of range
        {"axes": {"lps": [1]}, "bogus_key": 1},     # unknown spec key
        [1, 2, 3],                                  # not an object
    ):
        status, _, body = request(server, "POST", "/studies", payload)
        assert status == 400, payload
        assert _error_code(body) == ERR_INVALID_SPEC, payload


def test_unknown_backend_is_structured_400(server):
    status, _, body = request(
        server, "POST", "/studies", {"axes": {"lps": [1], "backend": ["warp_drive"]}}
    )
    assert status == 400
    payload = json.loads(body)
    assert payload["error"]["code"] == ERR_UNKNOWN_BACKEND
    assert "warp_drive" in payload["error"]["message"]
    assert "closed_form" in payload["error"]["message"]  # points at the registry


def test_unknown_job_id_is_structured_404(server):
    for path in (
        f"/studies/{NO_SUCH_JOB}",
        f"/studies/{NO_SUCH_JOB}/artifact",
        "/studies/not-even-hex",
        "/studies/not-even-hex/artifact",
    ):
        status, _, body = request(server, "GET", path)
        assert status == 404, path
        assert _error_code(body) == ERR_UNKNOWN_JOB, path


def test_artifact_before_done_is_structured_409(paused_server):
    _, _, body = request(paused_server, "POST", "/studies", SPEC_PAYLOAD)
    submitted = json.loads(body)
    assert submitted["state"] == "queued"
    status, _, body = request(
        paused_server, "GET", f"/studies/{submitted['job_id']}/artifact"
    )
    assert status == 409
    payload = json.loads(body)
    assert payload["error"]["code"] == ERR_JOB_NOT_READY
    assert payload["error"]["state"] == "queued"


def test_bounded_queue_rejects_with_structured_429(paused_server):
    # Capacity 1, no workers draining: the second distinct grid must bounce.
    _, _, _ = request(paused_server, "POST", "/studies", SPEC_PAYLOAD)
    other = {"axes": {"lps": [7, 8, 9]}}
    status, _, body = request(paused_server, "POST", "/studies", other)
    assert status == 429
    assert _error_code(body) == ERR_QUEUE_FULL
    # The rejected grid was not half-registered: resubmitting the *first*
    # spec still deduplicates, the second is still unknown.
    status, _, body = request(paused_server, "POST", "/studies", SPEC_PAYLOAD)
    assert status == 200 and json.loads(body)["deduplicated"] is True
    _, _, body = request(paused_server, "GET", "/healthz")
    assert json.loads(body)["jobs"] == {"queued": 1, "running": 0, "done": 0, "failed": 0}


def test_unknown_route_and_method_not_allowed(server):
    status, _, body = request(server, "GET", "/nope")
    assert status == 404
    assert _error_code(body) == ERR_NOT_FOUND

    status, _, body = request(server, "POST", "/healthz")
    assert status == 404
    assert _error_code(body) == ERR_NOT_FOUND

    for method in ("DELETE", "PUT", "PATCH"):
        status, _, body = request(server, method, "/healthz")
        assert status == 405, method
        assert _error_code(body) == ERR_METHOD_NOT_ALLOWED, method


# --------------------------------------------------------------------- #
# Retention / shutdown
# --------------------------------------------------------------------- #
def test_finished_jobs_are_evicted_beyond_the_retention_bound(tmp_path):
    payloads = [{"name": f"evict-{i}", "axes": {"lps": [1, 2]}} for i in range(3)]
    with StudyServer(cache=tmp_path / "cache", max_retained_jobs=2) as srv:
        job_ids = []
        for payload in payloads:
            _, _, body = request(srv, "POST", "/studies", payload)
            job_id = json.loads(body)["job_id"]
            wait_done(srv, job_id)
            job_ids.append(job_id)
        # The oldest finished job fell off the table ...
        status, _, body = request(srv, "GET", f"/studies/{job_ids[0]}")
        assert status == 404 and _error_code(body) == ERR_UNKNOWN_JOB
        # ... the newer two are still served ...
        for job_id in job_ids[1:]:
            status, _, _ = request(srv, "GET", f"/studies/{job_id}/artifact")
            assert status == 200
        # ... and the evicted grid resubmits as a fresh, fully cache-served job.
        _, _, body = request(srv, "POST", "/studies", payloads[0])
        resubmitted = json.loads(body)
        assert resubmitted["deduplicated"] is False
        assert resubmitted["job_id"] == job_ids[0]
        snapshot = wait_done(srv, job_ids[0])
        assert snapshot["served_from_cache"] is True


def test_stop_leaves_the_backlog_queued_instead_of_executing_it():
    from repro.service import JobManager

    # No workers consume while we fill the queue; stop() must come back
    # promptly without running anything.
    manager = JobManager(job_workers=0, queue_size=4)
    job_ids = []
    for i in range(3):
        snapshot, _ = manager.submit(ScenarioSpec(axes={"lps": [1, 2]}, name=f"bk-{i}"))
        job_ids.append(snapshot["job_id"])
    manager.start()
    manager.stop()
    assert manager.executed_shards == 0
    for job_id in job_ids:
        assert manager.status(job_id)["state"] == "queued"


# --------------------------------------------------------------------- #
# Job-state machine (unit)
# --------------------------------------------------------------------- #
def test_job_transitions_are_deterministic():
    spec = ScenarioSpec(axes={"lps": [1]})
    job = Job(job_id="a" * 64, spec=spec, shard_size=64, shards_total=1)
    assert job.state is JobState.QUEUED
    with pytest.raises(ValidationError):
        job.transition(JobState.DONE)  # cannot skip running
    job.transition(JobState.RUNNING)
    with pytest.raises(ValidationError):
        job.transition(JobState.QUEUED)  # cannot move backwards
    job.transition(JobState.DONE)
    for state in JobState:
        with pytest.raises(ValidationError):
            job.transition(state)  # terminal states are terminal


# --------------------------------------------------------------------- #
# Golden HTTP transcript
# --------------------------------------------------------------------- #
#: Headers worth pinning (everything else — Date, Content-Length — is
#: either volatile or redundant with the body line).
_PINNED_HEADERS = ("Content-Type", "ETag", HEADER_SERVED_FROM_CACHE, HEADER_CACHE_SHARDS)

_JOB_ID_RE = re.compile(r"[0-9a-f]{64}")

#: Wall-clock job timestamps are volatile by nature; the transcript pins
#: their *presence* (and null-ness before completion), never their value.
_TIMESTAMP_RE = re.compile(r'"(submitted|finished)_unix":\s?[0-9]+(?:\.[0-9]+)?(?:e[+-]?[0-9]+)?')

GOLDEN_SPEC = {"name": "golden-service", "axes": {"lps": [1, 2]}, "mc_trials": 0, "seed": 0}


def _normalize(text: str) -> str:
    text = _JOB_ID_RE.sub("<JOB-ID>", text)
    return _TIMESTAMP_RE.sub(r'"\1_unix":"<UNIX-TIME>"', text)


def _transcript() -> str:
    """Run the pinned exchange sequence against a fresh server."""
    lines: list[str] = []
    with StudyServer(job_workers=2, queue_size=8) as srv:

        def record(method: str, path: str, payload=None, raw_body=None) -> None:
            status, headers, body = request(srv, method, path, payload, raw_body)
            lines.append(f"### {method} {_normalize(path)}")
            lines.append(str(status))
            for name in _PINNED_HEADERS:
                if name in headers:
                    lines.append(f"{name}: {_normalize(headers[name])}")
            lines.append(_normalize(body.decode("utf-8").rstrip("\n")))
            lines.append("")

        record("GET", "/healthz")
        record("GET", "/backends")
        record("POST", "/studies", GOLDEN_SPEC)
        _, _, body = request(srv, "POST", "/studies", GOLDEN_SPEC)
        job_id = json.loads(body)["job_id"]
        wait_done(srv, job_id)
        record("GET", f"/studies/{job_id}")
        record("GET", f"/studies/{job_id}/artifact")
        record("GET", "/studies")                       # the job listing
        record("POST", "/studies", GOLDEN_SPEC)          # deduplicated, done
        record("POST", "/studies", {"axes": {"lps": []}})  # invalid spec
        record("POST", "/studies", {"axes": {"lps": [1], "backend": ["warp_drive"]}})
        record("GET", f"/studies/{NO_SUCH_JOB}")
        record("GET", "/nope")
        record("DELETE", "/healthz")
    return "\n".join(lines)


def test_http_responses_match_golden_transcript():
    assert GOLDEN_FIXTURE.exists(), (
        f"missing golden fixture {GOLDEN_FIXTURE}; generate it with "
        f"`PYTHONPATH=src python tests/test_service.py --regen` and review the diff"
    )
    actual = _transcript()
    expected = GOLDEN_FIXTURE.read_text()
    assert actual == expected, (
        "service HTTP responses drifted from the golden transcript; if the "
        "protocol change is intentional, regenerate via "
        "`PYTHONPATH=src python tests/test_service.py --regen` and review the diff"
    )


def _regen() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    GOLDEN_FIXTURE.write_text(_transcript())
    print(f"regenerated {GOLDEN_FIXTURE}")


if __name__ == "__main__":
    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
