"""Tests for ASPEN expression evaluation and the parameter environment."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aspen import Environment, evaluate_expr, parse_expression
from repro.exceptions import AspenEvaluationError, AspenNameError


def ev(text: str, **params: float) -> float:
    return evaluate_expr(parse_expression(text), Environment(overrides=params))


class TestArithmetic:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7.0),
            ("(1 + 2) * 3", 9.0),
            ("2 ^ 10", 1024.0),
            ("2 ^ 3 ^ 2", 512.0),  # right associative
            ("-4 + 1", -3.0),
            ("10 / 4", 2.5),
            ("1e3 + 1", 1001.0),
            ("7 - 2 - 1", 4.0),  # left associative
        ],
    )
    def test_values(self, text, expected):
        assert ev(text) == pytest.approx(expected)

    def test_division_by_zero(self):
        with pytest.raises(AspenEvaluationError, match="zero"):
            ev("1 / 0")

    def test_params(self):
        assert ev("LPS^2 + 1", LPS=10) == 101.0

    def test_undefined_param(self):
        with pytest.raises(AspenNameError, match="undefined"):
            ev("missing + 1")


class TestFunctions:
    def test_log_is_natural(self):
        assert ev("log(2.718281828459045)") == pytest.approx(1.0)

    def test_log_bases(self):
        assert ev("log2(8)") == pytest.approx(3.0)
        assert ev("log10(1000)") == pytest.approx(3.0)

    def test_log_of_nonpositive(self):
        with pytest.raises(AspenEvaluationError, match="log"):
            ev("log(0)")

    def test_ceil_floor_sqrt_abs(self):
        assert ev("ceil(1.2)") == 2.0
        assert ev("floor(1.8)") == 1.0
        assert ev("sqrt(16)") == 4.0
        assert ev("abs(0 - 5)") == 5.0

    def test_min_max(self):
        assert ev("min(3, 1, 2)") == 1.0
        assert ev("max(3, 1, 2)") == 3.0

    def test_eq6_repetition_expression(self):
        """The paper's Stage-2 QuOps amount."""
        got = ev("ceil(log(1-(Accuracy/100))/log(1-Success))", Accuracy=99.0, Success=0.7)
        expected = math.ceil(math.log(0.01) / math.log(0.3))
        assert got == expected == 4

    def test_unknown_function(self):
        with pytest.raises(AspenNameError, match="unknown function"):
            ev("sin(1)")

    def test_wrong_arity(self):
        with pytest.raises(AspenEvaluationError, match="argument"):
            ev("log(1, 2)")


class TestEnvironment:
    def test_lazy_interdependent_params(self):
        env = Environment(
            declarations={
                "A": parse_expression("B + 1"),
                "B": parse_expression("2"),
            }
        )
        assert env.lookup("A") == 3.0

    def test_override_shadows_declaration(self):
        env = Environment(
            declarations={"A": parse_expression("1")}, overrides={"A": 42.0}
        )
        assert env.lookup("A") == 42.0

    def test_override_as_expression(self):
        env = Environment(overrides={"A": parse_expression("2 * 3")})
        assert env.lookup("A") == 6.0

    def test_cycle_detected(self):
        env = Environment(
            declarations={
                "A": parse_expression("B"),
                "B": parse_expression("A"),
            }
        )
        with pytest.raises(AspenEvaluationError, match="cyclic"):
            env.lookup("A")

    def test_child_scope_fallback(self):
        parent = Environment(overrides={"X": 5.0})
        child = parent.child(overrides={"Y": 1.0})
        assert child.lookup("X") == 5.0
        assert child.lookup("Y") == 1.0
        assert child.defines("X") and not parent.defines("Y")

    def test_memoization_consistency(self):
        env = Environment(declarations={"A": parse_expression("2^20")})
        assert env.lookup("A") == env.lookup("A") == 2.0**20

    def test_resolved_snapshot(self):
        env = Environment(
            declarations={"A": parse_expression("1"), "B": parse_expression("A*2")}
        )
        assert env.resolved() == {"A": 1.0, "B": 2.0}


@settings(max_examples=100, deadline=None)
@given(
    a=st.floats(min_value=-100, max_value=100, allow_nan=False),
    b=st.floats(min_value=0.1, max_value=100, allow_nan=False),
)
def test_property_expression_matches_python(a, b):
    """Random (a op b) expressions agree with Python arithmetic."""
    env = Environment(overrides={"a": a, "b": b})
    assert evaluate_expr(parse_expression("a + b"), env) == pytest.approx(a + b)
    assert evaluate_expr(parse_expression("a - b"), env) == pytest.approx(a - b)
    assert evaluate_expr(parse_expression("a * b"), env) == pytest.approx(a * b)
    assert evaluate_expr(parse_expression("a / b"), env) == pytest.approx(a / b)
