"""The shard coordinator: leases, verification, requeue, and the cache."""

import hashlib

import numpy as np
import pytest

pytestmark = pytest.mark.distributed

from repro.distributed import ShardCoordinator
from repro.exceptions import PushRejected, ShardError, ValidationError
from repro.studies import ScenarioSpec, StudyCache, run_study, study_key
from repro.studies.executor import _run_shard


SPEC = ScenarioSpec(
    name="coord",
    axes={"lps": list(range(1, 13)), "backend": ["closed_form"]},
)
SHARD_SIZE = 3  # 12 points -> 4 shards


class FakeClock:
    """An advanceable monotonic clock for deterministic lease expiry."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make(clock=None, **kwargs):
    return ShardCoordinator(clock=clock or FakeClock(), **kwargs)


def shard_bytes(spec, k, ranges, shard_size):
    start, stop = ranges[k]
    data = _run_shard(spec.to_dict(), k, start, stop, shard_size, True).tobytes()
    return data, hashlib.sha256(data).hexdigest()


class TestLeasing:
    def test_lease_descriptor_is_self_describing(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        lease = coord.lease("w0")
        assert lease["study_id"] == sid
        assert lease["shard_size"] == SHARD_SIZE
        assert lease["attempt"] == 0
        assert (lease["stop"] - lease["start"]) <= SHARD_SIZE
        assert ScenarioSpec.from_dict(lease["spec"]).cache_identity() == (
            SPEC.cache_identity()
        )

    def test_idle_coordinator_leases_none(self):
        assert make().lease("w0") is None

    def test_each_shard_leased_once_while_unexpired(self):
        coord = make()
        coord.register_study(SPEC, shard_size=SHARD_SIZE)
        indices = [coord.lease("w0")["shard_index"] for _ in range(4)]
        assert sorted(indices) == [0, 1, 2, 3]
        assert coord.lease("w0") is None  # all leased, none expired

    def test_empty_worker_id_rejected(self):
        with pytest.raises(ValidationError, match="worker_id"):
            make().lease("")

    def test_default_study_id_is_the_content_address(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        assert sid == study_key(SPEC, SHARD_SIZE)

    def test_active_duplicate_registration_rejected(self):
        coord = make()
        coord.register_study(SPEC, shard_size=SHARD_SIZE)
        with pytest.raises(ValidationError, match="already registered"):
            coord.register_study(SPEC, shard_size=SHARD_SIZE)

    def test_settled_study_is_replaced_on_reregistration(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        coord.drain_inline(sid)
        assert coord.results(sid).num_points == SPEC.num_points
        # A settled id re-registers cleanly (the evicted-job resubmission).
        assert coord.register_study(SPEC, shard_size=SHARD_SIZE) == sid
        assert coord.progress_snapshot(sid)["done"] == 0


class TestLeaseExpiry:
    def test_expired_lease_requeues_with_bumped_attempt(self):
        clock = FakeClock()
        coord = make(clock=clock, lease_ttl_s=10.0)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        first = coord.lease("w0")
        k = first["shard_index"]
        clock.now += 11.0  # past the deadline
        second = coord.lease("w0")
        assert second["shard_index"] == k  # the shard comes back to its owner
        assert second["attempt"] == first["attempt"] + 1
        assert coord.stats.requeues == 1
        assert coord.progress_snapshot(sid)["done"] == 0

    def test_unexpired_lease_blocks_redispatch(self):
        clock = FakeClock()
        coord = make(clock=clock, lease_ttl_s=10.0)
        coord.register_study(
            ScenarioSpec(name="one", axes={"lps": [1, 2]}), shard_size=2
        )
        assert coord.lease("w0") is not None
        clock.now += 9.0
        assert coord.lease("w1") is None

    def test_requeue_budget_exhaustion_fails_the_study(self):
        clock = FakeClock()
        coord = make(clock=clock, lease_ttl_s=1.0, max_requeues=2)
        sid = coord.register_study(
            ScenarioSpec(name="one", axes={"lps": [1, 2]}), shard_size=2
        )
        for _ in range(3):
            coord.lease("w0")
            clock.now += 2.0
        with pytest.raises(ShardError, match="expired"):
            coord.wait(sid, timeout=1.0)

    def test_cooperative_fail_requeues_immediately(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        lease = coord.lease("w0")
        coord.fail(lease["lease_id"], "worker exploded")
        again = coord.lease("w0")
        assert again["shard_index"] == lease["shard_index"]
        assert again["attempt"] == 1
        assert coord.stats.worker_failures == 1
        assert coord.progress_snapshot(sid)["pending"] == 3


class TestRequeueAccounting:
    """Every path that puts a shard back in the queue — lease expiry,
    cooperative ``fail()``, rejected push — lands in the same ``requeues``
    gauge and consumes the same per-shard budget."""

    def test_cooperative_fail_bumps_requeue_gauge(self):
        coord = make()
        coord.register_study(SPEC, shard_size=SHARD_SIZE)
        lease = coord.lease("w0")
        coord.fail(lease["lease_id"], "worker exploded")
        assert coord.stats.requeues == 1
        assert coord.stats.worker_failures == 1
        assert coord.health()["requeues"] == 1

    def test_rejected_push_bumps_requeue_gauge(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        study = coord._study(sid)
        lease = coord.lease("w0")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, study.ranges, SHARD_SIZE)
        corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
        with pytest.raises(PushRejected):
            coord.push(
                sid, k, corrupted, digest,
                worker_id="w0", lease_id=lease["lease_id"],
            )
        assert coord.stats.requeues == 1
        assert coord.stats.rejected_pushes == 1

    def test_repeated_corrupt_pushes_exhaust_requeue_budget(self):
        # A worker that keeps pushing corrupt bytes must burn through the
        # requeue budget and fail the study — never retry forever.
        coord = make(max_requeues=3)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        study = coord._study(sid)
        rejections = 0
        while True:
            lease = coord.lease("w0")
            if lease is None:
                break
            k = lease["shard_index"]
            data, digest = shard_bytes(SPEC, k, study.ranges, SHARD_SIZE)
            corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
            with pytest.raises(PushRejected):
                coord.push(
                    sid, k, corrupted, digest,
                    worker_id="w0", lease_id=lease["lease_id"],
                )
            rejections += 1
            assert rejections <= 4 * (coord.max_requeues + 1), (
                "requeue budget did not bound the corrupt-push loop"
            )
        with pytest.raises(ShardError, match="rejected"):
            coord.results(sid)
        assert coord.stats.rejected_pushes == rejections
        assert coord.stats.requeues == rejections

    def test_corrupt_push_without_lease_id_consumes_budget(self):
        # A push that presents no lease id still resolves the shard's held
        # lease and routes through the same attempt accounting.
        coord = make(max_requeues=2)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        study = coord._study(sid)
        lease = coord.lease("w0")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, study.ranges, SHARD_SIZE)
        corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
        with pytest.raises(PushRejected):
            coord.push(sid, k, corrupted, digest, worker_id="w1")
        assert coord.stats.requeues == 1
        assert study.attempts[k] == 1
        # The shard is back in the queue with its attempt bumped.
        again = coord.lease("w0")
        assert again["shard_index"] == k
        assert again["attempt"] == 1


class TestPushVerification:
    def setup_method(self):
        self.coord = make()
        self.sid = self.coord.register_study(SPEC, shard_size=SHARD_SIZE)
        self.study = self.coord._study(self.sid)

    def test_verified_push_lands(self):
        lease = self.coord.lease("w0")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, self.study.ranges, SHARD_SIZE)
        out = self.coord.push(
            self.sid, k, data, digest, worker_id="w0", lease_id=lease["lease_id"]
        )
        assert out == {"accepted": True, "duplicate": False, "done": 1, "total": 4}
        assert self.coord.worker_shards(self.sid) == {"w0": 1}

    def test_duplicate_push_is_idempotent_accept(self):
        lease = self.coord.lease("w0")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, self.study.ranges, SHARD_SIZE)
        self.coord.push(self.sid, k, data, digest, worker_id="w0")
        before = bytes(self.study.table)
        out = self.coord.push(self.sid, k, data, digest, worker_id="w1")
        assert out["accepted"] and out["duplicate"]
        assert bytes(self.study.table) == before  # first landing wins
        assert self.coord.stats.duplicate_pushes == 1
        # The late pusher gets no attribution: the shard landed once.
        assert self.coord.worker_shards(self.sid) == {"w0": 1}

    def test_hash_mismatch_rejected_and_requeued(self):
        lease = self.coord.lease("w0")
        k = lease["shard_index"]
        data, _ = shard_bytes(SPEC, k, self.study.ranges, SHARD_SIZE)
        with pytest.raises(PushRejected, match="hash") as excinfo:
            self.coord.push(
                self.sid, k, data, "0" * 64,
                worker_id="w0", lease_id=lease["lease_id"],
            )
        assert excinfo.value.reason == "hash-mismatch"
        assert self.coord.stats.rejected_pushes == 1
        # The shard went straight back in the queue, attempt bumped.
        again = self.coord.lease("w0")
        assert again["shard_index"] == k
        assert again["attempt"] == 1

    def test_corrupted_payload_rejected(self):
        lease = self.coord.lease("w0")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, self.study.ranges, SHARD_SIZE)
        corrupted = bytes([data[0] ^ 0xFF]) + data[1:]
        with pytest.raises(PushRejected, match="hash"):
            self.coord.push(self.sid, k, corrupted, digest)

    def test_wrong_size_rejected(self):
        lease = self.coord.lease("w0")
        k = lease["shard_index"]
        data, _ = shard_bytes(SPEC, k, self.study.ranges, SHARD_SIZE)
        short = data[:-8]
        digest = hashlib.sha256(short).hexdigest()
        with pytest.raises(PushRejected, match="bytes") as excinfo:
            self.coord.push(self.sid, k, short, digest)
        assert excinfo.value.reason == "wrong-size"

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValidationError, match="out of range"):
            self.coord.push(self.sid, 99, b"", hashlib.sha256(b"").hexdigest())

    def test_unknown_study_rejected(self):
        with pytest.raises(ValidationError, match="unknown study"):
            self.coord.push("nope", 0, b"", "")
        assert not self.coord.has_study("nope")
        assert self.coord.has_study(self.sid)


class TestInlineAndCache:
    def test_drain_inline_matches_run_study_bytes(self):
        coord = make()
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        coord.drain_inline(sid)
        local = run_study(SPEC, shard_size=SHARD_SIZE)
        assert coord.results(sid).table.tobytes() == local.table.tobytes()
        assert coord.stats.inline_shards == 4

    def test_run_study_with_no_workers_is_the_inline_path(self):
        coord = make()
        results = coord.run_study(SPEC, shard_size=SHARD_SIZE, timeout=30.0)
        local = run_study(SPEC, shard_size=SHARD_SIZE)
        assert results.artifact_bytes() == local.artifact_bytes()

    def test_registration_pre_pass_serves_cached_shards(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)  # warm it
        coord = make(cache=cache)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        assert coord.stats.cache_served_shards == 4
        assert coord.lease("w0") is None  # nothing left to dispatch
        local = run_study(SPEC, shard_size=SHARD_SIZE)
        assert coord.results(sid).table.tobytes() == local.table.tobytes()

    def test_pushed_shards_populate_the_shared_cache(self, tmp_path):
        cache = StudyCache(tmp_path / "cache")
        coord = make(cache=cache)
        sid = coord.register_study(SPEC, shard_size=SHARD_SIZE)
        study = coord._study(sid)
        while (lease := coord.lease("w0")) is not None:
            k = lease["shard_index"]
            data, digest = shard_bytes(SPEC, k, study.ranges, SHARD_SIZE)
            coord.push(sid, k, data, digest, worker_id="w0")
        coord.wait(sid, timeout=5.0)
        # A local run over the same cache now re-serves every shard.
        warm = run_study(SPEC, shard_size=SHARD_SIZE, cache=cache)
        assert cache.hits == 4
        assert warm.table.tobytes() == coord.results(sid).table.tobytes()

    def test_progress_callback_sees_every_landing(self):
        events = []
        coord = make()
        sid = coord.register_study(
            SPEC, shard_size=SHARD_SIZE,
            progress=lambda k, cached, done, total, wid: events.append(
                (k, cached, done, total, wid)
            ),
        )
        study = coord._study(sid)
        lease = coord.lease("w7")
        k = lease["shard_index"]
        data, digest = shard_bytes(SPEC, k, study.ranges, SHARD_SIZE)
        coord.push(sid, k, data, digest, worker_id="w7", lease_id=lease["lease_id"])
        coord.drain_inline(sid)
        assert len(events) == 4
        assert events[0] == (k, False, 1, 4, "w7")
        assert all(wid is None for _, _, _, _, wid in events[1:])  # inline

    def test_health_reports_fleet_and_dispatch_state(self):
        coord = make()
        coord.register_study(SPEC, shard_size=SHARD_SIZE)
        coord.lease("w0")
        coord.lease("w1")
        health = coord.health()
        assert health["workers"] == 2
        assert health["outstanding_leases"] == 2
        assert health["studies_active"] == 1
        assert health["leases_granted"] == 2
        assert health["scheduler"] == "static"
