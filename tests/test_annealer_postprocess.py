"""Tests for greedy-descent post-processing of readout samples."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealer import (
    ExactSolver,
    SampleSet,
    SimulatedAnnealingSampler,
    geometric_schedule,
    greedy_descent,
    refine_sampleset,
)
from repro.exceptions import ValidationError
from repro.qubo import IsingModel, random_ising


class TestGreedyDescent:
    def test_never_increases_energy(self, rng):
        m = random_ising(10, density=0.5, rng=0)
        S = (rng.integers(0, 2, size=(30, 10)) * 2 - 1).astype(np.int8)
        refined = greedy_descent(m, S)
        assert np.all(m.energies(refined) <= m.energies(S) + 1e-12)

    def test_reaches_local_minimum(self, rng):
        m = random_ising(8, density=0.6, rng=1)
        S = (rng.integers(0, 2, size=(20, 8)) * 2 - 1).astype(np.int8)
        refined = greedy_descent(m, S)
        # No single flip improves any refined sample.
        base = m.energies(refined)
        for i in range(8):
            flipped = refined.copy()
            flipped[:, i] = -flipped[:, i]
            assert np.all(m.energies(flipped) >= base - 1e-9)

    def test_ground_state_fixed_point(self):
        m = random_ising(8, rng=2)
        states, _ = __import__("repro.qubo", fromlist=["brute_force_ising"]).brute_force_ising(m)
        refined = greedy_descent(m, states[:1])
        assert np.array_equal(refined, states[:1])

    def test_ferromagnet_from_near_aligned(self):
        n = 6
        m = IsingModel(np.zeros(n), {(i, j): -1.0 for i in range(n) for j in range(i + 1, n)})
        start = np.ones((1, n), dtype=np.int8)
        start[0, 0] = -1  # one spin off
        refined = greedy_descent(m, start)
        assert np.all(refined == 1)

    def test_fields_only_model(self):
        m = IsingModel([2.0, -3.0], {})
        refined = greedy_descent(m, np.array([[1, -1]], dtype=np.int8))
        assert refined.tolist() == [[-1, 1]]

    def test_empty_batch(self):
        m = random_ising(4, rng=3)
        out = greedy_descent(m, np.zeros((0, 4), dtype=np.int8))
        assert out.shape == (0, 4)

    def test_validation(self):
        m = random_ising(4, rng=3)
        with pytest.raises(ValidationError):
            greedy_descent(m, np.ones((2, 3), dtype=np.int8))
        with pytest.raises(ValidationError):
            greedy_descent(m, np.zeros((2, 4), dtype=np.int8))
        with pytest.raises(ValidationError):
            greedy_descent(m, np.ones((2, 4), dtype=np.int8), max_sweeps=0)


class TestRefineSampleset:
    def test_improves_weak_anneal(self):
        m = random_ising(12, density=0.6, rng=4)
        weak = SimulatedAnnealingSampler(geometric_schedule(4))
        raw = weak.sample(m, num_reads=40, rng=0)
        refined = refine_sampleset(m, raw)
        assert refined.lowest_energy <= raw.lowest_energy
        assert float(refined.energies.mean()) < float(raw.energies.mean())

    def test_reaches_ground_state_often(self):
        m = random_ising(10, density=0.6, rng=5)
        ground = ExactSolver().ground_energy(m)
        weak = SimulatedAnnealingSampler(geometric_schedule(6))
        raw = weak.sample(m, num_reads=60, rng=1)
        refined = refine_sampleset(m, raw)
        assert refined.ground_state_probability(ground) >= raw.ground_state_probability(ground)

    def test_multiplicities_preserved(self):
        m = random_ising(6, rng=6)
        ss = SampleSet(
            np.ones((2, 6), dtype=np.int8),
            m.energies(np.ones((2, 6))),
            np.array([3, 7], dtype=np.int64),
        )
        refined = refine_sampleset(m, ss)
        assert refined.num_reads == 10

    def test_empty_passthrough(self):
        m = random_ising(3, rng=7)
        ss = SampleSet.empty(3)
        assert refine_sampleset(m, ss) is ss

    def test_sorted_output(self):
        m = random_ising(9, density=0.5, rng=8)
        raw = SimulatedAnnealingSampler(geometric_schedule(3)).sample(m, num_reads=25, rng=2)
        refined = refine_sampleset(m, raw)
        assert np.all(np.diff(refined.energies) >= 0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    k=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_descent_monotone_and_idempotent(n, k, seed):
    gen = np.random.default_rng(seed)
    m = random_ising(n, density=0.7, rng=seed)
    S = (gen.integers(0, 2, size=(k, n)) * 2 - 1).astype(np.int8)
    once = greedy_descent(m, S)
    twice = greedy_descent(m, once)
    assert np.all(m.energies(once) <= m.energies(S) + 1e-12)
    assert np.array_equal(once, twice)  # local minima are fixed points


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    k=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_refine_sampleset_invariants(n, k, seed):
    """refine_sampleset never raises an energy, keeps reads, is idempotent."""
    gen = np.random.default_rng(seed)
    m = random_ising(n, density=0.7, rng=seed)
    S = (gen.integers(0, 2, size=(k, n)) * 2 - 1).astype(np.int8)
    occ = gen.integers(1, 4, size=k).astype(np.int64)
    e = m.energies(S)
    order = np.argsort(e, kind="heapsort")
    raw = SampleSet(S[order], e[order], occ[order])

    refined = refine_sampleset(m, raw)
    # Descent lowers every sample's energy pointwise; both ensembles are
    # sorted ascending, so the sorted arrays compare pointwise too.
    assert np.all(refined.energies <= raw.energies + 1e-12)
    assert refined.num_reads == raw.num_reads
    assert np.all(np.diff(refined.energies) >= 0)
    # Every refined sample sits at a local minimum, so refining again is a
    # no-op (idempotence at local minima).
    again = refine_sampleset(m, refined)
    assert np.array_equal(again.energies, refined.energies)
    assert again.num_reads == refined.num_reads
