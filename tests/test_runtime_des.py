"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.runtime import Simulator


class TestTimeouts:
    def test_single_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(5.0)
            log.append(sim.now)

        sim.process(proc())
        assert sim.run() == 5.0
        assert log == [5.0]

    def test_sequential_timeouts(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.0, 3.0]

    def test_zero_delay(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0.0)
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_deterministic_fifo_at_same_time(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(10.0)

        sim.process(proc())
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0


class TestProcesses:
    def test_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.value == 42

    def test_join_semantics(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(3.0)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            return (sim.now, result)

        p = sim.process(outer())
        sim.run()
        assert p.value == (3.0, "inner-done")

    def test_yield_none_reschedules(self):
        sim = Simulator()
        log = []

        def proc():
            log.append("first")
            yield None
            log.append("second")

        sim.process(proc())
        sim.run()
        assert log == ["first", "second"]

    def test_bad_yield_value(self):
        sim = Simulator()

        def proc():
            yield 123

        sim.process(proc())
        with pytest.raises(SimulationError, match="yielded"):
            sim.run()

    def test_event_succeed_once(self):
        sim = Simulator()
        evt = sim.event()
        evt.succeed()
        with pytest.raises(SimulationError, match="already"):
            evt.succeed()


class TestResources:
    def test_fifo_contention(self):
        sim = Simulator()
        res = sim.resource(capacity=1)
        order = []

        def proc(tag, hold):
            yield res.request()
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(proc("a", 2.0))
        sim.process(proc("b", 1.0))
        sim.process(proc("c", 1.0))
        sim.run()
        assert order == [("a", 0.0), ("b", 2.0), ("c", 3.0)]

    def test_capacity_two(self):
        sim = Simulator()
        res = sim.resource(capacity=2)
        grants = []

        def proc(tag):
            yield res.request()
            grants.append((tag, sim.now))
            yield sim.timeout(1.0)
            res.release()

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        times = dict((t, at) for t, at in grants)
        assert times["a"] == 0.0 and times["b"] == 0.0 and times["c"] == 1.0

    def test_wait_statistics(self):
        sim = Simulator()
        res = sim.resource(capacity=1)

        def proc(hold):
            yield res.request()
            yield sim.timeout(hold)
            res.release()

        sim.process(proc(4.0))
        sim.process(proc(1.0))
        sim.run()
        assert res.total_grants == 2
        assert res.mean_wait == pytest.approx(2.0)  # (0 + 4) / 2

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = sim.resource()
        with pytest.raises(SimulationError, match="idle"):
            res.release()

    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.resource(capacity=0)

    def test_queue_length(self):
        sim = Simulator()
        res = sim.resource(capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=5.0)
        assert res.queue_length == 1


class TestCausality:
    def test_cannot_schedule_into_past(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)

        sim.process(proc())
        sim.run()
        with pytest.raises(SimulationError, match="past"):
            sim._schedule(1.0, lambda e: None, None)

    def test_time_monotone_across_events(self):
        sim = Simulator()
        stamps = []

        def proc(delay):
            yield sim.timeout(delay)
            stamps.append(sim.now)

        for d in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.process(proc(d))
        sim.run()
        assert stamps == sorted(stamps)
