"""Tests for the parallel embedding searcher (the paper's Sec.-4 extension)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.embedding import (
    find_embedding_parallel,
    verify_embedding,
)
from repro.embedding.cmr import CmrParams
from repro.exceptions import EmbeddingError
from repro.hardware import ChimeraTopology


class TestParallelSearch:
    def test_valid_embedding_produced(self, small_chimera):
        source = nx.complete_graph(8)
        emb = find_embedding_parallel(
            source, small_chimera.graph(), num_workers=2, rng=0
        )
        verify_embedding(emb, source, small_chimera.graph())

    def test_diagnostics(self, small_chimera):
        source = nx.cycle_graph(6)
        emb, diag = find_embedding_parallel(
            source,
            small_chimera.graph(),
            num_workers=2,
            rng=1,
            return_diagnostics=True,
        )
        verify_embedding(emb, source, small_chimera.graph())
        assert diag.num_workers == 2
        assert diag.waves >= 1
        assert diag.tries_launched >= 1

    def test_single_worker_degenerates_to_serial(self, small_chimera):
        source = nx.path_graph(5)
        emb = find_embedding_parallel(
            source, small_chimera.graph(), num_workers=1, rng=2
        )
        verify_embedding(emb, source, small_chimera.graph())

    def test_budget_exhaustion_raises(self):
        # Impossible instance: K5 into a 4-node path.
        hardware = nx.path_graph(4)
        source = nx.complete_graph(4)
        with pytest.raises(EmbeddingError, match="parallel CMR failed"):
            find_embedding_parallel(
                source,
                hardware,
                params=CmrParams(max_tries=4, max_passes=2),
                num_workers=2,
                rng=0,
            )

    def test_non_canonical_labels_rejected(self, cell):
        g = nx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(EmbeddingError, match="range"):
            find_embedding_parallel(g, cell.graph(), num_workers=1)

    def test_bad_wave_size(self, cell):
        with pytest.raises(EmbeddingError, match="tries_per_wave"):
            find_embedding_parallel(
                nx.path_graph(2), cell.graph(), tries_per_wave=0, num_workers=1
            )

    def test_dense_instance_on_larger_lattice(self):
        topo = ChimeraTopology(6, 6, 4)
        source = nx.complete_graph(12)
        emb = find_embedding_parallel(source, topo.graph(), num_workers=4, rng=3)
        verify_embedding(emb, source, topo.graph())
