"""Tests for the ASPEN parser (AST construction)."""

from __future__ import annotations

import pytest

from repro.aspen import parse_expression, parse_source
from repro.aspen.ast_nodes import (
    BinOp,
    Call,
    Clause,
    ExecuteBlock,
    Iterate,
    KernelCall,
    Num,
    ParamRef,
    ParBlock,
    SeqBlock,
    UnaryOp,
)
from repro.exceptions import AspenSyntaxError


class TestExpressions:
    def test_precedence(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "*"

    def test_power_right_associative(self):
        e = parse_expression("2 ^ 3 ^ 2")
        assert isinstance(e, BinOp) and e.op == "^"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "^"
        assert isinstance(e.lhs, Num)

    def test_power_binds_tighter_than_mul(self):
        e = parse_expression("2 * x ^ 3")
        assert e.op == "*"
        assert isinstance(e.rhs, BinOp) and e.rhs.op == "^"

    def test_unary_minus(self):
        e = parse_expression("-x + 1")
        assert isinstance(e, BinOp)
        assert isinstance(e.lhs, UnaryOp) and e.lhs.op == "-"

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"
        assert isinstance(e.lhs, BinOp) and e.lhs.op == "+"

    def test_function_call(self):
        e = parse_expression("ceil(log(1-x)/log(1-y))")
        assert isinstance(e, Call) and e.name == "ceil"
        inner = e.args[0]
        assert isinstance(inner, BinOp) and inner.op == "/"

    def test_multi_arg_call(self):
        e = parse_expression("max(a, b, 3)")
        assert isinstance(e, Call) and len(e.args) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(AspenSyntaxError, match="trailing"):
            parse_expression("1 + 2 extra")

    def test_missing_operand(self):
        with pytest.raises(AspenSyntaxError):
            parse_expression("1 +")


class TestModelParsing:
    SRC = """
    model Tiny {
      param A = 2
      param B = A^2
      data D as Array((A*A), 4)
      kernel main {
        execute work [1] {
          flops [B] as sp, simd
          loads [A*4] from D
          stores [A] to D of size [8]
          microseconds [5]
        }
      }
    }
    """

    def test_structure(self):
        src = parse_source(self.SRC)
        assert len(src.models) == 1
        m = src.models[0]
        assert m.name == "Tiny"
        assert [p.name for p in m.params] == ["A", "B"]
        assert m.data[0].name == "D"
        assert m.kernels[0].name == "main"

    def test_execute_block(self):
        m = parse_source(self.SRC).models[0]
        block = m.kernels[0].body[0]
        assert isinstance(block, ExecuteBlock)
        assert block.label == "work"
        assert len(block.clauses) == 4

    def test_clause_details(self):
        m = parse_source(self.SRC).models[0]
        flops, loads, stores, micro = m.kernels[0].body[0].clauses
        assert flops.resource == "flops" and flops.traits == ("sp", "simd")
        assert loads.resource == "loads" and loads.target == "D"
        assert stores.of_size is not None and stores.target == "D"
        assert micro.resource == "microseconds" and micro.traits == ()

    def test_kernel_calls_and_controls(self):
        src = parse_source(
            """
            model M {
              kernel a { execute [1] { seconds [1] } }
              kernel main {
                a
                iterate [3] { a }
                par { a a }
                seq { a }
              }
            }
            """
        )
        body = src.models[0].kernels[1].body
        assert isinstance(body[0], KernelCall)
        assert isinstance(body[1], Iterate)
        assert isinstance(body[2], ParBlock) and len(body[2].body) == 2
        assert isinstance(body[3], SeqBlock)

    def test_anonymous_execute_with_attached_bracket(self):
        # The paper writes `execute mainblock2[1]` without a space.
        src = parse_source(
            "model M { kernel main { execute mainblock2[1] { seconds [1] } } }"
        )
        block = src.models[0].kernels[0].body[0]
        assert block.label == "mainblock2"

    def test_bad_model_item(self):
        with pytest.raises(AspenSyntaxError, match="param"):
            parse_source("model M { bogus }")

    def test_bad_data_constructor(self):
        with pytest.raises(AspenSyntaxError, match="Array"):
            parse_source("model M { data D as Matrix(2, 2) }")


class TestMachineParsing:
    SRC = """
    include memory/fake.aspen
    machine Node { [2] SIMPLE nodes }
    node SIMPLE { [1] sock sockets }
    socket sock {
      param f = 2
      [4] c cores
      mem memory
      linked with net
    }
    core c {
      resource flops(n) [n / f] with sp [ base ], simd [ base / 8 ]
    }
    memory mem {
      property capacity [1e9]
      resource loads(bytes) [bytes / 1e9]
    }
    interconnect net {
      resource intracomm(bytes) [bytes / 5e9]
    }
    """

    def test_include_path(self):
        src = parse_source(self.SRC)
        assert src.includes[0].path == "memory/fake.aspen"

    def test_machine_and_components(self):
        src = parse_source(self.SRC)
        assert src.machines[0].name == "Node"
        kinds = {c.name: c.kind for c in src.components}
        assert kinds == {
            "SIMPLE": "node",
            "sock": "socket",
            "c": "core",
            "mem": "memory",
            "net": "interconnect",
        }

    def test_socket_components(self):
        src = parse_source(self.SRC)
        sock = next(c for c in src.components if c.name == "sock")
        roles = [(r.name, r.role) for r in sock.components]
        assert ("c", "cores") in roles
        assert ("mem", "memory") in roles
        assert ("net", "link") in roles

    def test_resource_traits(self):
        src = parse_source(self.SRC)
        core = next(c for c in src.components if c.kind == "core")
        res = core.resources[0]
        assert res.name == "flops" and res.arg == "n"
        assert [t[0] for t in res.traits] == ["sp", "simd"]

    def test_property(self):
        src = parse_source(self.SRC)
        mem = next(c for c in src.components if c.kind == "memory")
        assert mem.properties[0].name == "capacity"

    def test_top_level_garbage(self):
        with pytest.raises(AspenSyntaxError, match="include"):
            parse_source("bogus stuff")


class TestClauseParsing:
    def test_paper_stage3_load_clause(self):
        src = parse_source(
            "model M { kernel main { execute s [1] { loads [Results] of size [4*Length] } } }"
        )
        clause = src.models[0].kernels[0].body[0].clauses[0]
        assert isinstance(clause, Clause)
        assert clause.of_size is not None
        assert clause.target is None

    def test_quops_clause(self):
        src = parse_source(
            "model M { kernel main { execute [1] "
            "{ QuOps [ceil(log(1-(A/100))/log(1-S))] } } }"
        )
        clause = src.models[0].kernels[0].body[0].clauses[0]
        assert clause.resource == "QuOps"
        assert isinstance(clause.amount, Call)

    def test_default_count_is_one(self):
        src = parse_source("model M { kernel main { execute { seconds [2] } } }")
        block = src.models[0].kernels[0].body[0]
        assert isinstance(block.count, Num) and block.count.value == 1.0
