"""Tests for the dimod-style composed samplers.

Differential philosophy: every composite must preserve the ``SampleSet``
contract (sorted energies, honest multiplicities, energies evaluated on the
*logical* model) and, where the composite is a pure transformation
(truncation, variable fixing), agree exactly with the bare sampler plus the
equivalent post-hoc transformation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealer import (
    ComposedSampler,
    DWaveDevice,
    EmbeddingComposite,
    ExactSolver,
    FixedVariableComposite,
    ParallelTemperingComposite,
    SampleSet,
    Sampler,
    SimulatedAnnealingSampler,
    TruncateComposite,
    linear_schedule,
)
from repro.exceptions import SamplerError
from repro.hardware import ChimeraTopology
from repro.qubo import IsingModel, brute_force_ising, random_ising


@pytest.fixture(scope="module")
def small_device():
    return DWaveDevice(topology=ChimeraTopology(3, 3, 4))


@pytest.fixture()
def model():
    return IsingModel(
        [0.5, -0.25, 0.1, 0.0],
        {(0, 1): -1.0, (1, 2): 0.5, (2, 3): -0.75, (0, 3): 0.25},
        0.125,
    )


def assert_sampleset_contract(ss: SampleSet, model: IsingModel) -> None:
    assert np.all(np.diff(ss.energies) >= 0)
    assert np.isin(ss.samples, (-1, 1)).all()
    assert np.all(ss.num_occurrences >= 1)
    assert np.allclose(ss.energies, model.energies(ss.samples))


class TestComposedSamplerBase:
    def test_child_must_be_sampler(self):
        with pytest.raises(SamplerError, match="must be a Sampler"):
            TruncateComposite(object(), k=2)

    def test_unwrapped_walks_to_bare_sampler(self, small_device):
        sa = SimulatedAnnealingSampler()
        stack = TruncateComposite(
            FixedVariableComposite(EmbeddingComposite(sa, device=small_device), {0: 1}),
            k=3,
        )
        assert stack.unwrapped is sa
        assert isinstance(stack.child, FixedVariableComposite)
        assert stack.children == (stack.child,)

    def test_is_sampler(self):
        assert issubclass(ComposedSampler, Sampler)


class TestTruncateComposite:
    def test_differential_vs_bare_truncated(self, model):
        """Same seed: composite output == bare output post-hoc truncated."""
        sa = SimulatedAnnealingSampler()
        bare = sa.sample(model, num_reads=20, rng=5)
        composed = TruncateComposite(sa, k=4).sample(model, num_reads=20, rng=5)
        expected = bare.truncated(4)
        assert np.array_equal(composed.samples, expected.samples)
        assert np.array_equal(composed.energies, expected.energies)
        assert np.array_equal(composed.num_occurrences, expected.num_occurrences)

    def test_passthrough_when_fewer_rows(self, model):
        result = TruncateComposite(ExactSolver(), k=50).sample(model, num_reads=3)
        assert result.num_rows == 3

    def test_k_validation(self):
        sa = SimulatedAnnealingSampler()
        for bad in (0, -1, 1.5, True):
            with pytest.raises(SamplerError, match="positive integer"):
                TruncateComposite(sa, k=bad)

    def test_contract(self, model):
        ss = TruncateComposite(SimulatedAnnealingSampler(), k=5).sample(
            model, num_reads=12, rng=0
        )
        assert_sampleset_contract(ss, model)
        assert ss.num_rows == 5


class TestFixedVariableComposite:
    def test_differential_vs_restricted_enumeration(self, model):
        """With ExactSolver: minimum == brute-force minimum over states
        consistent with the fixed assignment."""
        fixed = {1: -1}
        composed = FixedVariableComposite(ExactSolver(), fixed)
        result = composed.sample(model, num_reads=4)
        states, energies = brute_force_ising(model, num_best=1 << 4)
        mask = states[:, 1] == -1
        assert result.lowest_energy == pytest.approx(energies[mask].min())
        assert np.all(result.samples[:, 1] == -1)

    def test_energies_are_original_model_energies(self, model):
        result = FixedVariableComposite(SimulatedAnnealingSampler(), {0: 1}).sample(
            model, num_reads=15, rng=2
        )
        assert_sampleset_contract(result, model)
        assert np.all(result.samples[:, 0] == 1)
        assert result.num_reads == 15

    def test_empty_fixed_is_passthrough(self, model):
        sa = SimulatedAnnealingSampler()
        bare = sa.sample(model, num_reads=10, rng=9)
        composed = FixedVariableComposite(sa, {}).sample(model, num_reads=10, rng=9)
        assert np.array_equal(bare.samples, composed.samples)
        assert np.array_equal(bare.energies, composed.energies)

    def test_all_variables_fixed(self, model):
        fixed = {0: 1, 1: 1, 2: -1, 3: -1}
        result = FixedVariableComposite(ExactSolver(), fixed).sample(
            model, num_reads=3
        )
        assert result.num_reads == 3
        expected = model.energy([1, 1, -1, -1])
        assert np.allclose(result.energies, expected)

    def test_validation(self, model):
        sa = SimulatedAnnealingSampler()
        with pytest.raises(SamplerError, match="-1 or \\+1"):
            FixedVariableComposite(sa, {0: 0})
        with pytest.raises(SamplerError, match="ints"):
            FixedVariableComposite(sa, {"a": 1})
        with pytest.raises(SamplerError, match="out of range"):
            FixedVariableComposite(sa, {99: 1}).sample(model, num_reads=2, rng=0)

    def test_offset_and_coupling_folding(self):
        """The reduced model's energies equal the original's on the slice."""
        m = random_ising(6, density=0.8, rng=11)
        comp = FixedVariableComposite(ExactSolver(), {2: 1, 4: -1})
        reduced, free = comp._reduced_model(m)
        assert free == [0, 1, 3, 5]
        gen = np.random.default_rng(0)
        for _ in range(10):
            sub = (gen.integers(0, 2, size=reduced.num_spins) * 2 - 1).astype(np.int8)
            full = np.empty(6, dtype=np.int8)
            full[free] = sub
            full[2], full[4] = 1, -1
            assert reduced.energy(sub) == pytest.approx(m.energy(full))


class TestEmbeddingComposite:
    def test_finds_ground_state(self, model, small_device):
        ex = ExactSolver()
        ground = ex.ground_energy(model)
        composed = EmbeddingComposite(SimulatedAnnealingSampler(), device=small_device)
        result = composed.sample(model, num_reads=60, rng=3)
        assert result.lowest_energy == pytest.approx(ground)
        assert result.num_reads == 60
        assert_sampleset_contract(result, model)

    def test_logical_width_restored(self, model, small_device):
        """Physical sampling happens on the device; logical columns return."""
        composed = EmbeddingComposite(SimulatedAnnealingSampler(), device=small_device)
        result = composed.sample(model, num_reads=5, rng=0)
        assert result.num_spins == model.num_spins
        assert small_device.num_working_qubits > model.num_spins

    def test_precomputed_embedding(self, model, small_device):
        embedding = small_device.embed(model, rng=7)
        composed = EmbeddingComposite(SimulatedAnnealingSampler(), device=small_device)
        result = composed.sample(model, num_reads=10, rng=1, embedding=embedding)
        assert_sampleset_contract(result, model)

    def test_chain_strength_validation(self, small_device):
        sa = SimulatedAnnealingSampler()
        with pytest.raises(SamplerError, match="chain_strength"):
            EmbeddingComposite(sa, device=small_device, chain_strength=float("nan"))
        with pytest.raises(SamplerError, match="chain_strength"):
            EmbeddingComposite(sa, device=small_device, chain_strength=-1.0)


class TestParallelTemperingComposite:
    def test_finds_ground_state_frustrated(self, small_device):
        m = random_ising(10, density=0.7, rng=21)
        ground = ExactSolver().ground_energy(m)
        pt = ParallelTemperingComposite(
            SimulatedAnnealingSampler(linear_schedule(32)), num_replicas=4, rounds=3
        )
        result = pt.sample(m, num_reads=30, rng=17)
        assert result.lowest_energy == pytest.approx(ground)
        assert result.num_reads == 30
        assert_sampleset_contract(result, m)

    def test_at_least_as_good_as_single_weak_anneal(self):
        """Same weak schedule, same total seed: PT's best <= bare SA's best."""
        m = random_ising(12, density=0.6, rng=33)
        weak = linear_schedule(16)
        bare = SimulatedAnnealingSampler(weak).sample(m, num_reads=30, rng=5)
        pt = ParallelTemperingComposite(
            SimulatedAnnealingSampler(weak), num_replicas=4, rounds=3
        )
        tempered = pt.sample(m, num_reads=30, rng=5)
        assert tempered.lowest_energy <= bare.lowest_energy + 1e-12

    def test_deterministic_given_seed(self, model):
        pt = ParallelTemperingComposite(SimulatedAnnealingSampler(), num_replicas=3)
        a = pt.sample(model, num_reads=8, rng=42)
        b = pt.sample(model, num_reads=8, rng=42)
        assert np.array_equal(a.samples, b.samples)
        assert np.array_equal(a.energies, b.energies)

    def test_child_without_schedule_support_rejected(self, model):
        pt = ParallelTemperingComposite(ExactSolver(), num_replicas=2, rounds=1)
        with pytest.raises(SamplerError, match="unexpected options"):
            pt.sample(model, num_reads=2, rng=0)

    def test_parameter_validation(self):
        sa = SimulatedAnnealingSampler()
        with pytest.raises(SamplerError, match="num_replicas"):
            ParallelTemperingComposite(sa, num_replicas=1)
        with pytest.raises(SamplerError, match="rounds"):
            ParallelTemperingComposite(sa, rounds=0)
        with pytest.raises(SamplerError, match="hot_factor"):
            ParallelTemperingComposite(sa, hot_factor=0.0)
        with pytest.raises(SamplerError, match="hot_factor"):
            ParallelTemperingComposite(sa, hot_factor=float("nan"))


class TestStacking:
    def test_three_deep_stack(self, model, small_device):
        """The acceptance-criteria stack: truncate(fix(embed(sa)))."""
        sa = SimulatedAnnealingSampler()
        stack = TruncateComposite(
            FixedVariableComposite(
                EmbeddingComposite(sa, device=small_device), fixed={0: 1}
            ),
            k=5,
        )
        result = stack.sample(model, num_reads=40, rng=7)
        assert result.num_rows <= 5
        assert np.all(result.samples[:, 0] == 1)
        assert_sampleset_contract(result, model)

    def test_stack_differential_vs_bare(self, model, small_device):
        """The stacked minimum matches brute force restricted to the fix."""
        sa = SimulatedAnnealingSampler()
        stack = TruncateComposite(
            FixedVariableComposite(
                EmbeddingComposite(sa, device=small_device), fixed={0: 1}
            ),
            k=5,
        )
        result = stack.sample(model, num_reads=60, rng=1)
        states, energies = brute_force_ising(model, num_best=1 << 4)
        restricted_min = energies[states[:, 0] == 1].min()
        assert result.lowest_energy == pytest.approx(restricted_min)

    def test_four_deep_with_pt(self, small_device):
        m = random_ising(6, density=0.8, rng=2)
        stack = TruncateComposite(
            FixedVariableComposite(
                ParallelTemperingComposite(
                    SimulatedAnnealingSampler(linear_schedule(24)),
                    num_replicas=3,
                    rounds=2,
                ),
                fixed={1: -1},
            ),
            k=3,
        )
        result = stack.sample(m, num_reads=20, rng=3)
        assert result.num_rows <= 3
        assert np.all(result.samples[:, 1] == -1)
        assert_sampleset_contract(result, m)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=7),
    k=st.integers(min_value=1, max_value=6),
    fix_var=st.integers(min_value=0, max_value=6),
    fix_spin=st.sampled_from((-1, 1)),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_stacking_order(n, k, fix_var, fix_spin, seed):
    """On random small models, truncation commutes with the stack below it:
    ``Truncate(FixedVar(exact), k)`` equals fixing then post-hoc truncating,
    and nested truncations collapse to the tighter one."""
    fix_var %= n
    m = random_ising(n, density=0.7, rng=seed)
    ex = ExactSolver()
    fixed = {fix_var: fix_spin}

    inner = FixedVariableComposite(ex, fixed)
    stacked = TruncateComposite(inner, k=k).sample(m, num_reads=6)
    posthoc = inner.sample(m, num_reads=6).truncated(min(k, 6))
    assert np.array_equal(stacked.samples, posthoc.samples)
    assert np.array_equal(stacked.energies, posthoc.energies)

    nested = TruncateComposite(TruncateComposite(inner, k=k), k=k + 2).sample(
        m, num_reads=6
    )
    flat = TruncateComposite(inner, k=min(k, k + 2)).sample(m, num_reads=6)
    assert np.array_equal(nested.energies, flat.energies)
