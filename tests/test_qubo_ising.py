"""Tests for repro.qubo.ising.IsingModel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.qubo import IsingModel


class TestConstruction:
    def test_basic(self):
        m = IsingModel([0.5, -0.5], {(0, 1): 1.0}, offset=2.0)
        assert m.num_spins == 2
        assert m.num_interactions == 1
        assert m.offset == 2.0

    def test_self_coupling_rejected(self):
        with pytest.raises(ValidationError, match="self-coupling"):
            IsingModel([0.0], {(0, 0): 1.0})

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError, match="out of range"):
            IsingModel([0.0, 0.0], {(0, 3): 1.0})

    def test_reversed_pairs_accumulate(self):
        m = IsingModel([0.0, 0.0], {(0, 1): 1.0, (1, 0): 0.5})
        assert m.coupling_dict() == {(0, 1): 1.5}

    def test_from_arrays(self):
        m = IsingModel.from_arrays(
            np.array([1.0, 2.0, 3.0]),
            np.array([0]),
            np.array([2]),
            np.array([-1.0]),
            offset=1.0,
        )
        assert m.coupling_dict() == {(0, 2): -1.0}
        assert m.offset == 1.0


class TestEnergy:
    def test_known_values(self):
        m = IsingModel([0.5, -0.5], {(0, 1): 1.0})
        assert m.energy([1, 1]) == pytest.approx(0.5 - 0.5 + 1.0)
        assert m.energy([-1, 1]) == pytest.approx(-0.5 - 0.5 - 1.0)
        assert m.energy([1, -1]) == pytest.approx(0.5 + 0.5 - 1.0)
        assert m.energy([-1, -1]) == pytest.approx(-0.5 + 0.5 + 1.0)

    def test_batch_matches_scalar(self, rng):
        m = IsingModel(rng.normal(size=6), {(0, 5): 1.0, (2, 3): -2.0}, offset=0.7)
        S = rng.integers(0, 2, size=(11, 6)) * 2 - 1
        batch = m.energies(S)
        for i in range(11):
            assert batch[i] == pytest.approx(m.energy(S[i]))

    def test_bad_batch_shape(self):
        with pytest.raises(ValidationError, match="batch"):
            IsingModel([0.0, 0.0]).energies(np.ones((2, 3)))


class TestExports:
    def test_dense_coupling_symmetric(self):
        m = IsingModel([0.0] * 3, {(0, 2): 1.5, (1, 2): -1.0})
        M = m.to_dense_coupling()
        assert M[0, 2] == M[2, 0] == 1.5
        assert M[1, 2] == M[2, 1] == -1.0
        assert np.all(np.diag(M) == 0.0)

    def test_adjacency_csr_matches_dense(self):
        m = IsingModel([0.0] * 4, {(0, 1): 2.0, (2, 3): -0.5})
        assert np.allclose(m.adjacency_csr().toarray(), m.to_dense_coupling())

    def test_energy_via_dense_quadratic_form(self, rng):
        m = IsingModel(rng.normal(size=5), {(0, 1): 1.0, (3, 4): 2.0})
        M = m.to_dense_coupling()
        s = rng.integers(0, 2, size=5) * 2.0 - 1.0
        expected = m.h @ s + 0.5 * s @ M @ s
        assert m.energy(s) == pytest.approx(expected)

    def test_graph_weights(self):
        g = IsingModel([0.0] * 3, {(1, 2): -4.0}).graph()
        assert g[1][2]["weight"] == -4.0

    def test_max_abs(self):
        m = IsingModel([1.0, -3.0], {(0, 1): 2.0})
        assert m.max_abs_h == 3.0
        assert m.max_abs_j == 2.0
        empty = IsingModel([])
        assert empty.max_abs_h == 0.0 and empty.max_abs_j == 0.0


class TestTransforms:
    def test_negated_flips_energies_up_to_offset(self, rng):
        m = IsingModel(rng.normal(size=4), {(0, 1): 1.0}, offset=0.0)
        neg = m.negated()
        s = rng.integers(0, 2, size=4) * 2 - 1
        assert neg.energy(s) == pytest.approx(-m.energy(s))

    def test_scaled(self):
        m = IsingModel([1.0], {}, offset=2.0).scaled(0.5)
        assert m.h[0] == 0.5 and m.offset == 1.0

    def test_relabeled_preserves_spectrum(self, rng):
        m = IsingModel(rng.normal(size=4), {(0, 1): 1.0, (2, 3): -1.0})
        perm = {0: 3, 1: 2, 2: 1, 3: 0}
        m2 = m.relabeled(perm)
        s = rng.integers(0, 2, size=4) * 2 - 1
        s2 = np.empty(4)
        for old, new in perm.items():
            s2[new] = s[old]
        assert m.energy(s) == pytest.approx(m2.energy(s2))

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(ValidationError, match="permutation"):
            IsingModel([0.0, 0.0]).relabeled({0: 0, 1: 0})

    def test_equality_and_hash(self):
        a = IsingModel([1.0], {}, offset=1.0)
        b = IsingModel([1.0], {}, offset=1.0)
        assert a == b and hash(a) == hash(b)
        assert a != IsingModel([1.0], {}, offset=2.0)
