"""Tests for repro.qubo.qubo.Qubo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.qubo import Qubo


class TestConstruction:
    def test_basic(self):
        q = Qubo([1.0, -2.0], {(0, 1): 3.0})
        assert q.num_variables == 2
        assert q.num_interactions == 1
        assert q.offset == 0.0

    def test_reversed_pairs_accumulate(self):
        q = Qubo([0.0, 0.0], {(0, 1): 1.0, (1, 0): 2.0})
        assert q.quadratic_dict() == {(0, 1): 3.0}

    def test_diagonal_pair_rejected(self):
        with pytest.raises(ValidationError, match="diagonal"):
            Qubo([0.0], {(0, 0): 1.0})

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ValidationError, match=">= n"):
            Qubo([0.0, 0.0], {(0, 5): 1.0})

    def test_negative_index_rejected(self):
        with pytest.raises(ValidationError):
            Qubo([0.0, 0.0], {(-1, 0): 1.0})

    def test_non_1d_linear_rejected(self):
        with pytest.raises(ValidationError, match="1-D"):
            Qubo(np.zeros((2, 2)))

    def test_empty(self):
        q = Qubo([])
        assert q.num_variables == 0
        assert q.energies(np.zeros((3, 0))).tolist() == [0.0, 0.0, 0.0]

    def test_from_dict_infers_size(self):
        q = Qubo.from_dict({(0, 0): 1.0, (2, 1): -1.0})
        assert q.num_variables == 3
        assert q.linear[0] == 1.0
        assert q.quadratic_dict() == {(1, 2): -1.0}

    def test_from_dict_explicit_size(self):
        q = Qubo.from_dict({(0, 0): 1.0}, num_variables=5)
        assert q.num_variables == 5

    def test_from_dict_size_too_small(self):
        with pytest.raises(ValidationError):
            Qubo.from_dict({(4, 4): 1.0}, num_variables=2)


class TestDense:
    def test_from_dense_folds_asymmetric(self):
        Q = np.array([[1.0, 2.0], [3.0, 4.0]])
        q = Qubo.from_dense(Q)
        assert q.linear.tolist() == [1.0, 4.0]
        assert q.quadratic_dict() == {(0, 1): 5.0}

    def test_from_dense_energy_identity(self, rng):
        Q = rng.normal(size=(6, 6))
        q = Qubo.from_dense(Q, offset=0.5)
        for _ in range(20):
            b = rng.integers(0, 2, size=6).astype(float)
            assert q.energy(b) == pytest.approx(b @ Q @ b + 0.5)

    def test_from_dense_requires_square(self):
        with pytest.raises(ValidationError, match="square"):
            Qubo.from_dense(np.zeros((2, 3)))

    def test_to_dense_roundtrip_symmetric(self, rng):
        q = Qubo(rng.normal(size=4), {(0, 1): 1.5, (2, 3): -2.0}, offset=1.0)
        for fold in ("symmetric", "upper"):
            Q = q.to_dense(fold)
            for _ in range(10):
                b = rng.integers(0, 2, size=4).astype(float)
                assert b @ Q @ b + q.offset == pytest.approx(q.energy(b))

    def test_to_dense_bad_fold(self):
        with pytest.raises(ValidationError):
            Qubo([0.0]).to_dense("lower")


class TestEnergy:
    def test_known_values(self):
        q = Qubo([1.0, -2.0], {(0, 1): 3.0}, offset=0.25)
        assert q.energy([0, 0]) == 0.25
        assert q.energy([1, 0]) == 1.25
        assert q.energy([0, 1]) == -1.75
        assert q.energy([1, 1]) == 2.25

    def test_batch_shape_checked(self):
        q = Qubo([1.0, 2.0])
        with pytest.raises(ValidationError, match="batch"):
            q.energies(np.zeros((3, 5)))

    def test_batch_matches_scalar(self, rng):
        q = Qubo(rng.normal(size=5), {(0, 4): 1.0, (1, 2): -3.0})
        B = rng.integers(0, 2, size=(17, 5))
        batch = q.energies(B)
        for i in range(17):
            assert batch[i] == pytest.approx(q.energy(B[i]))


class TestTransforms:
    def test_scaled(self):
        q = Qubo([1.0], {}, offset=2.0).scaled(3.0)
        assert q.linear[0] == 3.0 and q.offset == 6.0

    def test_relabeled_preserves_energy(self, rng):
        q = Qubo(rng.normal(size=4), {(0, 1): 1.0, (1, 3): -1.0})
        perm = {0: 2, 1: 0, 2: 3, 3: 1}
        q2 = q.relabeled(perm)
        for _ in range(10):
            b = rng.integers(0, 2, size=4)
            b2 = np.empty(4)
            for old, new in perm.items():
                b2[new] = b[old]
            assert q.energy(b) == pytest.approx(q2.energy(b2))

    def test_relabeled_rejects_non_permutation(self):
        with pytest.raises(ValidationError, match="permutation"):
            Qubo([0.0, 0.0]).relabeled({0: 1, 1: 1})

    def test_graph(self):
        g = Qubo([0.0] * 3, {(0, 2): 1.5}).graph()
        assert sorted(g.nodes()) == [0, 1, 2]
        assert g[0][2]["weight"] == 1.5

    def test_equality_and_hash(self):
        a = Qubo([1.0, 2.0], {(0, 1): 3.0}, offset=0.5)
        b = Qubo([1.0, 2.0], {(1, 0): 3.0}, offset=0.5)
        c = Qubo([1.0, 2.0], {(0, 1): 3.0}, offset=0.0)
        assert a == b and hash(a) == hash(b)
        assert a != c


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_property_dense_fold_is_lossless(n, seed):
    """b^T Q b == coefficient-form energy for every binary b."""
    gen = np.random.default_rng(seed)
    Q = gen.normal(size=(n, n))
    q = Qubo.from_dense(Q)
    for idx in range(1 << n):
        b = np.array([(idx >> i) & 1 for i in range(n)], dtype=float)
        assert q.energy(b) == pytest.approx(float(b @ Q @ b), abs=1e-9)
