"""Topology independence: 0/1/N workers, faults and all, same bytes.

The acceptance contract of the distributed subsystem — a study artifact
is a pure function of (spec, shard grid), so coordinator/worker runs of
any fleet size, with any scheduling strategy, through any injected fault
(worker death, transport failures, evaluation errors) must reproduce the
local ProcessPool run byte for byte.
"""

import threading

import pytest

pytestmark = [pytest.mark.distributed, pytest.mark.faults]

from repro.distributed import ShardCoordinator, ShardWorker, WorkerStats
from repro.exceptions import DistributedError
from repro.faults import (
    SITE_SHARD_EVAL,
    SITE_WORKER_DEATH,
    SITE_WORKER_PULL,
    SITE_WORKER_PUSH,
    FaultPlan,
    FaultRule,
)
from repro.studies import ScenarioSpec, run_study
from repro.studies.executor import RetryPolicy


SPEC = ScenarioSpec(
    name="topology",
    axes={
        "lps": list(range(1, 10)),
        "accuracy": [0.9, 0.99],
        "backend": ["closed_form", "des"],
    },
    mc_trials=4,
    seed=13,
)
SHARD_SIZE = 5  # 36 points -> 8 shards

#: No backoff sleeps in-process: retries should be instant in tests.
FAST = RetryPolicy(max_attempts=4, base_delay_s=0.0)

NO_FAULTS = FaultPlan([])


@pytest.fixture(scope="module")
def reference_bytes():
    return run_study(SPEC, workers=2, shard_size=SHARD_SIZE).artifact_bytes()


def run_distributed(num_workers, scheduler="static", worker_plans=None, spec=SPEC):
    """One coordinated run with ``num_workers`` in-process worker threads."""
    coord = ShardCoordinator(scheduler=scheduler, lease_ttl_s=0.2)
    sid = coord.register_study(spec, shard_size=SHARD_SIZE)
    if num_workers == 0:
        coord.drain_inline(sid, faults=NO_FAULTS)
        return coord.results(sid).artifact_bytes(), coord, []
    stop = threading.Event()
    workers = [
        ShardWorker(
            coord,
            worker_id=f"w{i}",
            faults=(worker_plans or {}).get(i, NO_FAULTS),
            retry=FAST,
            poll_s=0.005,
        )
        for i in range(num_workers)
    ]

    def loop(worker):
        try:
            worker.run(stop=stop)
        except DistributedError:
            pass  # a worker giving up is part of several scenarios

    threads = [threading.Thread(target=loop, args=(w,)) for w in workers]
    for t in threads:
        t.start()
    try:
        results = coord.wait(sid, timeout=60.0)
    finally:
        stop.set()
        for t in threads:
            t.join()
    return results.artifact_bytes(), coord, workers


class TestTopologyByteIdentity:
    @pytest.mark.parametrize("num_workers", [0, 1, 3])
    def test_worker_count_is_invisible_in_the_bytes(
        self, num_workers, reference_bytes
    ):
        artifact, _, _ = run_distributed(num_workers)
        assert artifact == reference_bytes

    @pytest.mark.parametrize("scheduler", ["work-stealing", "size-aware"])
    def test_dispatch_strategy_is_invisible_in_the_bytes(
        self, scheduler, reference_bytes
    ):
        artifact, _, _ = run_distributed(3, scheduler=scheduler)
        assert artifact == reference_bytes

    def test_scheduler_axis_changes_bytes_but_not_topology(self):
        # The axis is real data: different strategy, different sched
        # columns.  But each strategy's artifact is still topology-free.
        spec = ScenarioSpec(
            name="axis",
            axes={**{k: list(v) for k, v in SPEC.axes.items()},
                  "scheduler": ["work-stealing"]},
            mc_trials=4,
            seed=13,
        )
        local = run_study(spec, shard_size=SHARD_SIZE).artifact_bytes()
        assert local != run_study(SPEC, shard_size=SHARD_SIZE).artifact_bytes()
        artifact, _, _ = run_distributed(2, spec=spec)
        assert artifact == local

    def test_worker_attribution_covers_every_computed_shard(self):
        _, coord, workers = run_distributed(3)
        sid = next(iter(coord._studies))
        attribution = coord.worker_shards(sid)
        assert sum(attribution.values()) == 8
        assert set(attribution) <= {"w0", "w1", "w2"}
        assert sum(w.stats.shards_completed for w in workers) == 8


class TestFaultedTopologies:
    def test_worker_death_requeues_and_converges(self, reference_bytes):
        # w0 dies on its first shard; its lease expires and a survivor
        # (or w0's replacement pulls — here the surviving threads) land it.
        plans = {0: FaultPlan([FaultRule(site=SITE_WORKER_DEATH, times=1)])}
        artifact, coord, workers = run_distributed(3, worker_plans=plans)
        assert artifact == reference_bytes
        assert workers[0].stats.died
        assert coord.stats.requeues >= 1

    def test_transport_faults_are_absorbed_by_backoff(self, reference_bytes):
        plans = {
            0: FaultPlan(
                [
                    FaultRule(site=SITE_WORKER_PULL, times=2),
                    FaultRule(site=SITE_WORKER_PUSH, keys=(0, 3), times=1),
                ]
            )
        }
        artifact, _, workers = run_distributed(2, worker_plans=plans)
        assert artifact == reference_bytes
        assert workers[0].stats.pull_faults >= 2
        assert workers[0].stats.push_faults >= 1

    def test_eval_failure_reports_and_requeues(self, reference_bytes):
        plans = {
            0: FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(2,), times=1)]),
            1: FaultPlan([FaultRule(site=SITE_SHARD_EVAL, keys=(2,), times=1)]),
        }
        artifact, coord, workers = run_distributed(2, worker_plans=plans)
        assert artifact == reference_bytes
        # Attempt numbers are coordinator-owned: after the first failure
        # requeues shard 2 at attempt 1, a times=1 rule must NOT re-fire,
        # whichever worker pulls it next.
        assert coord.stats.worker_failures == 1
        assert sum(w.stats.eval_failures for w in workers) == 1

    def test_faulted_run_matches_fault_free_run(self, reference_bytes):
        # The distributed entry in the faults determinism suite: a pile of
        # faults across every new site, still the same bytes.
        plans = {
            0: FaultPlan(
                [
                    FaultRule(site=SITE_WORKER_PULL, times=1),
                    FaultRule(site=SITE_WORKER_DEATH, keys=(1,), times=1),
                ]
            ),
            1: FaultPlan(
                [
                    FaultRule(site=SITE_WORKER_PUSH, keys=(4,), times=2),
                    FaultRule(site=SITE_SHARD_EVAL, keys=(6,), times=1),
                ]
            ),
            2: FaultPlan([FaultRule(site=SITE_WORKER_DEATH, keys=(5,), times=1)]),
        }
        artifact, coord, _ = run_distributed(3, worker_plans=plans)
        assert artifact == reference_bytes
        health = coord.health()
        assert health["requeues"] >= 1          # the deaths cost time...
        assert health["studies_active"] == 0    # ...but never completion

    def test_probabilistic_seeded_plan_is_deterministic(self):
        # Same seeded plan, same bytes, run after run — the distributed
        # case of the faults-suite determinism property.
        plan = {
            "seed": 77,
            "rules": [
                {"site": SITE_WORKER_PULL, "probability": 0.3},
                {"site": SITE_WORKER_PUSH, "probability": 0.3},
            ],
        }
        runs = []
        for _ in range(2):
            plans = {i: FaultPlan.from_dict(plan) for i in range(2)}
            artifact, _, _ = run_distributed(2, worker_plans=plans)
            runs.append(artifact)
        assert runs[0] == runs[1]
        assert runs[0] == run_study(SPEC, shard_size=SHARD_SIZE).artifact_bytes()


class TestWorkerLoop:
    def test_max_shards_bounds_the_loop(self):
        coord = ShardCoordinator()
        coord.register_study(SPEC, shard_size=SHARD_SIZE)
        worker = ShardWorker(coord, worker_id="w0", faults=NO_FAULTS, poll_s=0.0)
        stats = worker.run(max_shards=3)
        assert isinstance(stats, WorkerStats)
        assert stats.shards_completed == 3

    def test_max_idle_ends_an_idle_worker(self):
        coord = ShardCoordinator()  # nothing registered
        worker = ShardWorker(
            coord, worker_id="w0", faults=NO_FAULTS, poll_s=0.001, max_idle_s=0.01
        )
        stats = worker.run()
        assert stats.shards_completed == 0
        assert stats.empty_pulls >= 1

    def test_dead_transport_exhausts_the_retry_budget(self):
        class DeadTransport:
            def lease(self, worker_id):
                raise DistributedError("connection refused")

        worker = ShardWorker(
            DeadTransport(), worker_id="w0", faults=NO_FAULTS, retry=FAST
        )
        with pytest.raises(DistributedError, match="after 4 attempts"):
            worker.run()
        assert worker.stats.pull_faults == FAST.max_attempts
